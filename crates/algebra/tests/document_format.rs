//! Integration tests for the textual task format at the crate boundary:
//! document-level structure, error reporting, and printer/parser agreement.

use mapcomp_algebra::{
    parse_constraint, parse_constraints, parse_document, parse_expr, AlgebraError, Constraint,
    Expr, OperatorSet, Pred, Signature,
};

#[test]
fn document_with_multiple_mappings_and_keys() {
    let text = r"
        // Three schemas, two mappings, keys on every relation.
        schema s1 { Orders/4 key(0); Lines/3 key(0,1); }
        schema s2 { Flat/5 key(0); }
        schema s3 { Totals/2 key(0); }
        mapping flatten : s1 -> s2 {
            project[0,1,2,3](Orders) <= project[0,1,2,3](Flat);
        }
        mapping report : s2 -> s3 {
            project[0,4](Flat) <= Totals;
        }
    ";
    let doc = parse_document(text).unwrap();
    assert_eq!(doc.schemas.len(), 3);
    assert_eq!(doc.mappings.len(), 2);
    assert_eq!(doc.schema("s1").unwrap().key("Lines"), Some(&[0usize, 1][..]));
    let task = doc.task("flatten", "report").unwrap();
    task.validate(&OperatorSet::new()).unwrap();
    assert_eq!(task.sigma2.names(), vec!["Flat".to_string()]);
}

#[test]
fn unknown_schema_or_mapping_is_an_error() {
    let doc = parse_document("schema a { R/1; } schema b { S/1; } mapping m : a -> b { R <= S; }")
        .unwrap();
    assert!(doc.mapping("m").is_ok());
    assert!(doc.mapping("nope").is_err());
    assert!(doc.task("m", "nope").is_err());
    let bad = parse_document("mapping m : missing -> alsomissing { }").unwrap();
    assert!(bad.mapping("m").is_err());
}

#[test]
fn task_with_mismatched_intermediate_arities_fails() {
    let doc = parse_document(
        r"
        schema a { R/1; }
        schema b { S/2; }
        schema b2 { S/3; }
        schema c { T/1; }
        mapping m12 : a -> b { R <= project[0](S); }
        mapping m23 : b2 -> c { project[0](S) <= T; }
        ",
    )
    .unwrap();
    assert!(matches!(doc.task("m12", "m23"), Err(AlgebraError::ArityMismatch { .. })));
}

#[test]
fn operator_precedence_matches_documentation() {
    // product > intersect > difference > union, all left-associative.
    assert_eq!(
        parse_expr("A + B - C & E * F").unwrap(),
        Expr::rel("A").union(
            Expr::rel("B")
                .difference(Expr::rel("C").intersect(Expr::rel("E").product(Expr::rel("F"))))
        )
    );
    assert_eq!(
        parse_expr("A - B - C").unwrap(),
        Expr::rel("A").difference(Expr::rel("B")).difference(Expr::rel("C"))
    );
    assert_eq!(
        parse_expr("A + B + C").unwrap(),
        Expr::rel("A").union(Expr::rel("B")).union(Expr::rel("C"))
    );
}

#[test]
fn predicates_support_all_comparison_operators() {
    for (text, holds) in [
        ("select[#0 = 3](R)", true),
        ("select[#0 != 4](R)", true),
        ("select[#0 < 4](R)", true),
        ("select[#0 <= 3](R)", true),
        ("select[#0 > 2](R)", true),
        ("select[#0 >= 4](R)", false),
        ("select[#0 = 3 and #0 < 2](R)", false),
        ("select[#0 = 9 or #0 = 3](R)", true),
        ("select[not (#0 = 9)](R)", true),
    ] {
        let expr = parse_expr(text).unwrap();
        let sig = Signature::from_arities([("R", 1)]);
        let mut instance = mapcomp_algebra::Instance::new();
        instance.insert("R", vec![mapcomp_algebra::Value::Int(3)]);
        let out = mapcomp_algebra::eval(&expr, &sig, &OperatorSet::new(), &instance).unwrap();
        assert_eq!(!out.is_empty(), holds, "{text}");
    }
}

#[test]
fn constraint_sets_print_and_reparse() {
    let set = parse_constraints(
        "R <= S + T; select[#0 = 'x'](S) = empty^2; project[1,0](T) <= D^2; tc(S) <= T",
    )
    .unwrap();
    let printed = set.to_string();
    let reparsed = parse_constraints(&printed).unwrap();
    assert_eq!(set, reparsed);
}

#[test]
fn skolem_syntax_round_trips_inside_constraints() {
    let constraint = parse_constraint("project[0,1](skolem:f_S_1[0](R)) <= S").unwrap();
    assert!(constraint.lhs.has_skolem());
    let printed = constraint.to_string();
    assert_eq!(parse_constraint(&printed).unwrap(), constraint);
}

#[test]
fn error_positions_point_at_the_offending_token() {
    let err = parse_document("schema s {\n  R/;\n}").unwrap_err();
    match err {
        AlgebraError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("unexpected error {other:?}"),
    }
    let err = parse_expr("select[#0 ~ 1](R)").unwrap_err();
    assert!(matches!(err, AlgebraError::Parse { .. }));
}

#[test]
fn constraints_validate_against_declared_arities() {
    let sig = Signature::from_arities([("R", 2), ("S", 3)]);
    let ops = OperatorSet::new();
    let good: Constraint = parse_constraint("project[0,1](S) <= R").unwrap();
    assert_eq!(good.validate(&sig, &ops).unwrap(), 2);
    let bad: Constraint = parse_constraint("S <= R").unwrap();
    assert!(bad.validate(&sig, &ops).is_err());
    let bad_pred: Constraint = parse_constraint("select[#5 = 1](R) <= R").unwrap();
    assert!(bad_pred.validate(&sig, &ops).is_err());
}

#[test]
fn expressions_with_user_operators_round_trip_and_type_check() {
    let expr = parse_expr("ljoin(project[0,1](R), S) - tc(S)").unwrap();
    let printed = expr.to_string();
    assert_eq!(parse_expr(&printed).unwrap(), expr);
    assert_eq!(
        expr.user_operators().into_iter().collect::<Vec<_>>(),
        vec!["ljoin".to_string(), "tc".to_string()]
    );
    // Typing fails without a registered operator set, succeeds with one.
    let sig = Signature::from_arities([("R", 3), ("S", 2)]);
    assert!(expr.arity(&sig, &OperatorSet::new()).is_err());
    let mut ops = OperatorSet::new();
    ops.register(mapcomp_algebra::OperatorDef::new("ljoin", 2, |a| match a {
        [l, r] if *l >= 1 && *r >= 1 => Some(l + r - 1),
        _ => None,
    }));
    ops.register(mapcomp_algebra::OperatorDef::new("tc", 1, |a| (a == [2]).then_some(2)));
    // ljoin(2-ary, 2-ary) = 3-ary, minus needs equal arities: 3 vs tc->2 mismatch.
    assert!(expr.arity(&sig, &ops).is_err());
    let balanced = parse_expr("ljoin(project[0,1](R), S)").unwrap();
    assert_eq!(balanced.arity(&sig, &ops).unwrap(), 3);
}

#[test]
fn pred_display_round_trips_through_select() {
    let pred = Pred::And(
        Box::new(Pred::Or(Box::new(Pred::eq_cols(0, 1)), Box::new(Pred::eq_const(1, -3)))),
        Box::new(Pred::Not(Box::new(Pred::eq_const(0, "five")))),
    );
    let expr = Expr::rel("R").select(pred);
    let reparsed = parse_expr(&expr.to_string()).unwrap();
    assert_eq!(reparsed, expr);
}
