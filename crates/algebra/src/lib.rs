//! # mapcomp-algebra
//!
//! Relational-algebra substrate for the mapping-composition system described
//! in *"Implementing Mapping Composition"* (Bernstein, Green, Melnik, Nash;
//! VLDB 2006).
//!
//! The crate provides everything below the composition algorithm itself:
//!
//! * [`value`] — concrete values and tuples;
//! * [`signature`] — schemas (relation symbols, arities, optional keys);
//! * [`pred`] — selection predicates over index-addressed attributes;
//! * [`expr`] — the index-based algebra of paper §2 (∪, ∩, ×, −, π, σ, the
//!   active-domain relation `D^r`, the empty relation `∅`, Skolem
//!   pseudo-operators, user-defined operators);
//! * [`ops`] — registration of user-defined operators (typing + evaluation);
//! * [`instance`] / [`mod@eval`] — database instances and set-semantics
//!   evaluation;
//! * [`constraint`] — containment / equality constraints and constraint sets;
//! * [`mapping`] — mappings `(σ_in, σ_out, Σ)` and composition tasks;
//! * [`parse`] — the plain-text task format of paper §4 (parser; the
//!   pretty-printer is the `Display` impls, and printing→parsing round-trips).
//!
//! The composition algorithm itself (view unfolding, left/right compose,
//! deskolemization, the best-effort `COMPOSE` driver) lives in the companion
//! crate `mapcomp-compose`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod constraint;
pub mod error;
pub mod eval;
pub mod expr;
pub mod instance;
pub mod mapping;
pub mod ops;
pub mod parse;
pub mod pred;
pub mod signature;
pub mod value;

pub use constraint::{Constraint, ConstraintKind, ConstraintSet};
pub use error::AlgebraError;
pub use eval::{eval, Evaluator};
pub use expr::{Expr, SkolemFn};
pub use instance::{DeltaInstance, Instance, Relation, RelationSource};
pub use mapping::{CompositionTask, Mapping};
pub use ops::{OperatorDef, OperatorSet, RowSink};
pub use parse::{parse_constraint, parse_constraints, parse_document, parse_expr, Document};
pub use pred::{CmpOp, Operand, Pred};
pub use signature::{RelInfo, Signature};
pub use value::{tuple, Tuple, Value};
