//! Set-semantics evaluation of expressions over instances.
//!
//! Evaluation implements the "standard set semantics" of paper §2 and is used
//! by constraint satisfaction, the bounded-model equivalence checker, and the
//! data-migration examples.

use std::cell::Cell;
use std::collections::BTreeSet;

use crate::error::AlgebraError;
use crate::expr::Expr;
use crate::instance::{Instance, Relation};
use crate::ops::OperatorSet;
use crate::signature::Signature;
use crate::value::{Tuple, Value};

/// Evaluation context: the instance plus the signature and operator set
/// needed to resolve arities and user-defined operators.
pub struct Evaluator<'a> {
    sig: &'a Signature,
    ops: &'a OperatorSet,
    instance: &'a Instance,
    active_domain: Vec<Value>,
    /// Optional cap on materialised tuples across the whole evaluation.
    budget: Option<usize>,
    used: Cell<usize>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator for one instance.
    pub fn new(sig: &'a Signature, ops: &'a OperatorSet, instance: &'a Instance) -> Self {
        let active_domain = instance.active_domain().into_iter().collect();
        Evaluator { sig, ops, instance, active_domain, budget: None, used: Cell::new(0) }
    }

    /// Create an evaluator that fails with
    /// [`AlgebraError::EvalBudgetExceeded`] once more than `budget` tuples
    /// have been materialised. Active-domain powers (`D^r`) and products grow
    /// combinatorially with the instance, so long-running callers (the chase
    /// engine, bulk verification) use this to bound work instead of
    /// exhausting memory.
    ///
    /// Caveat: built-in operators are charged *during* materialisation, but
    /// user-defined operators (`Expr::Apply`) expose only an opaque eval
    /// function, so their output is charged after it has been built. An
    /// expansive operator (e.g. transitive closure, up to quadratic in its
    /// input) can therefore overshoot the budget by its own output size
    /// before the overshoot is detected.
    pub fn with_budget(
        sig: &'a Signature,
        ops: &'a OperatorSet,
        instance: &'a Instance,
        budget: usize,
    ) -> Self {
        let mut evaluator = Evaluator::new(sig, ops, instance);
        evaluator.budget = Some(budget);
        evaluator
    }

    /// Tuples materialised so far (only tracked when a budget is set).
    pub fn tuples_used(&self) -> usize {
        self.used.get()
    }

    fn charge(&self, amount: usize) -> Result<(), AlgebraError> {
        if let Some(budget) = self.budget {
            let used = self.used.get().saturating_add(amount);
            self.used.set(used);
            if used > budget {
                return Err(AlgebraError::EvalBudgetExceeded { budget });
            }
        }
        Ok(())
    }

    /// The active domain used for `D^r`.
    pub fn active_domain(&self) -> &[Value] {
        &self.active_domain
    }

    /// Evaluate an expression to a relation.
    pub fn eval(&self, expr: &Expr) -> Result<Relation, AlgebraError> {
        match expr {
            Expr::Rel(name) => {
                // Unknown symbols are an error so that typos surface early.
                self.sig.arity(name)?;
                let relation = self.instance.get(name);
                self.charge(relation.len())?;
                Ok(relation)
            }
            Expr::Domain(r) => self.domain_power(*r),
            Expr::Empty(_) => Ok(Relation::new()),
            Expr::Union(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.union(&self.eval(b)?))
            }
            Expr::Intersect(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.intersect(&self.eval(b)?))
            }
            Expr::Difference(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.difference(&self.eval(b)?))
            }
            Expr::Product(a, b) => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                let mut out = Relation::new();
                for lt in left.iter() {
                    self.charge(right.len())?;
                    for rt in right.iter() {
                        let mut tuple = lt.clone();
                        tuple.extend(rt.iter().cloned());
                        out.insert(tuple);
                    }
                }
                Ok(out)
            }
            Expr::Project(cols, inner) => {
                let arity = inner.arity(self.sig, self.ops)?;
                for &c in cols {
                    if c >= arity {
                        return Err(AlgebraError::ColumnOutOfRange { column: c, arity });
                    }
                }
                let rel = self.eval(inner)?;
                let mut out = Relation::new();
                for t in rel.iter() {
                    out.insert(cols.iter().map(|&c| t[c].clone()).collect());
                }
                Ok(out)
            }
            Expr::Select(pred, inner) => {
                let rel = self.eval(inner)?;
                Ok(rel.iter().filter(|t| pred.eval(t)).cloned().collect())
            }
            Expr::Skolem(f, _) => Err(AlgebraError::SkolemNotEvaluable(f.name.clone())),
            Expr::Apply(name, args) => {
                let def = self
                    .ops
                    .get(name)
                    .ok_or_else(|| AlgebraError::UnknownOperator(name.clone()))?;
                let eval_fn = def
                    .eval
                    .clone()
                    .ok_or_else(|| AlgebraError::OperatorNotEvaluable(name.clone()))?;
                let arities = args
                    .iter()
                    .map(|arg| arg.arity(self.sig, self.ops))
                    .collect::<Result<Vec<_>, _>>()?;
                let rels = args.iter().map(|arg| self.eval(arg)).collect::<Result<Vec<_>, _>>()?;
                let out = eval_fn(&rels, &arities);
                self.charge(out.len())?;
                Ok(out)
            }
        }
    }

    fn check_equal_arity(&self, parent: &Expr, a: &Expr, b: &Expr) -> Result<(), AlgebraError> {
        let left = a.arity(self.sig, self.ops)?;
        let right = b.arity(self.sig, self.ops)?;
        if left != right {
            return Err(AlgebraError::BinaryArityMismatch {
                op: parent.operator_name(),
                left,
                right,
            });
        }
        Ok(())
    }

    fn domain_power(&self, r: usize) -> Result<Relation, AlgebraError> {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        tuples.insert(Vec::new());
        for _ in 0..r {
            let mut next = BTreeSet::new();
            self.charge(tuples.len().saturating_mul(self.active_domain.len()))?;
            for t in &tuples {
                for v in &self.active_domain {
                    let mut extended = t.clone();
                    extended.push(v.clone());
                    next.insert(extended);
                }
            }
            tuples = next;
        }
        if r > 0 && self.active_domain.is_empty() {
            return Ok(Relation::new());
        }
        Ok(tuples.into_iter().filter(|t| t.len() == r).collect())
    }
}

/// Convenience wrapper: evaluate one expression over an instance.
pub fn eval(
    expr: &Expr,
    sig: &Signature,
    ops: &OperatorSet,
    instance: &Instance,
) -> Result<Relation, AlgebraError> {
    Evaluator::new(sig, ops, instance).eval(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorDef;
    use crate::pred::Pred;
    use crate::value::tuple;

    fn setup() -> (Signature, OperatorSet, Instance) {
        let sig = Signature::from_arities([("R", 2), ("S", 2), ("U", 1)]);
        let ops = OperatorSet::new();
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64, 10]));
        inst.insert("R", tuple([2i64, 20]));
        inst.insert("S", tuple([2i64, 20]));
        inst.insert("S", tuple([3i64, 30]));
        inst.insert("U", tuple([1i64]));
        (sig, ops, inst)
    }

    #[test]
    fn basic_set_operators() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert_eq!(ev.eval(&Expr::rel("R").union(Expr::rel("S"))).unwrap().len(), 3);
        assert_eq!(ev.eval(&Expr::rel("R").intersect(Expr::rel("S"))).unwrap().len(), 1);
        assert_eq!(ev.eval(&Expr::rel("R").difference(Expr::rel("S"))).unwrap().len(), 1);
    }

    #[test]
    fn product_project_select() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let prod = ev.eval(&Expr::rel("R").product(Expr::rel("U"))).unwrap();
        assert_eq!(prod.len(), 2);
        assert!(prod.contains(&tuple([1i64, 10, 1])));

        let proj = ev.eval(&Expr::rel("R").project(vec![1])).unwrap();
        assert_eq!(proj.len(), 2);
        assert!(proj.contains(&tuple([10i64])));

        let dup = ev.eval(&Expr::rel("U").project(vec![0, 0])).unwrap();
        assert!(dup.contains(&tuple([1i64, 1])));

        let sel = ev.eval(&Expr::rel("R").select(Pred::eq_const(0, 2))).unwrap();
        assert_eq!(sel.len(), 1);
        assert!(sel.contains(&tuple([2i64, 20])));
    }

    #[test]
    fn domain_and_empty() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        // Active domain = {1,2,3,10,20,30}.
        assert_eq!(ev.eval(&Expr::domain(1)).unwrap().len(), 6);
        assert_eq!(ev.eval(&Expr::domain(2)).unwrap().len(), 36);
        assert!(ev.eval(&Expr::empty(3)).unwrap().is_empty());
    }

    #[test]
    fn domain_of_empty_instance_is_empty() {
        let sig = Signature::from_arities([("R", 1)]);
        let ops = OperatorSet::new();
        let inst = Instance::new();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert!(ev.eval(&Expr::domain(2)).unwrap().is_empty());
    }

    #[test]
    fn skolem_and_unknown_operator_fail() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let sk = Expr::rel("U").skolem(crate::expr::SkolemFn::new("f", vec![0]));
        assert!(matches!(ev.eval(&sk), Err(AlgebraError::SkolemNotEvaluable(_))));
        let unknown = Expr::apply("mystery", vec![Expr::rel("U")]);
        assert!(matches!(ev.eval(&unknown), Err(AlgebraError::UnknownOperator(_))));
    }

    #[test]
    fn user_operator_evaluation() {
        let (sig, mut ops, inst) = setup();
        // "swap": reverse the two columns of a binary relation.
        ops.register(OperatorDef::new("swap", 1, |a| (a == [2]).then_some(2)).with_eval(
            |rels, _| rels[0].iter().map(|t| vec![t[1].clone(), t[0].clone()]).collect(),
        ));
        let ev = Evaluator::new(&sig, &ops, &inst);
        let out = ev.eval(&Expr::apply("swap", vec![Expr::rel("R")])).unwrap();
        assert!(out.contains(&tuple([10i64, 1])));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_on_semantics() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let join = Expr::rel("R").join_on(Expr::rel("S"), &[(0, 0), (1, 1)], 2, 2);
        let out = ev.eval(&join).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple([2i64, 20])));
    }

    #[test]
    fn budget_stops_combinatorial_blowup() {
        let (sig, ops, inst) = setup();
        // D^3 over a 6-value active domain is 216 tuples; a budget of 50
        // must refuse it without materialising the power set.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 50);
        assert_eq!(ev.eval(&Expr::domain(3)), Err(AlgebraError::EvalBudgetExceeded { budget: 50 }));
        // Small evaluations under the same budget still succeed.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 50);
        assert_eq!(ev.eval(&Expr::rel("R")).unwrap().len(), 2);
        assert!(ev.tuples_used() >= 2);
        // Products are charged per output row.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 5);
        assert!(ev.eval(&Expr::rel("R").product(Expr::rel("S"))).is_err());
    }

    #[test]
    fn arity_errors_propagate() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert!(ev.eval(&Expr::rel("R").union(Expr::rel("U"))).is_err());
        assert!(ev.eval(&Expr::rel("R").project(vec![9])).is_err());
        assert!(ev.eval(&Expr::rel("Nope")).is_err());
    }
}
