//! Set-semantics evaluation of expressions over instances.
//!
//! Evaluation implements the "standard set semantics" of paper §2 and is used
//! by constraint satisfaction, the bounded-model equivalence checker, and the
//! data-migration examples.
//!
//! Two production concerns shape the implementation beyond the textbook
//! semantics:
//!
//! * **Tuple budgets** ([`Evaluator::with_budget`]): active-domain powers and
//!   products grow combinatorially, so long-running callers bound the number
//!   of materialised tuples. User-defined operators participate through the
//!   budgeted [`RowSink`] interface — they are charged per emitted row, so an
//!   expansive operator fails fast at the budget instead of after building
//!   its whole output.
//! * **Indexed joins**: a selection over a product tree whose predicate
//!   contains cross-factor column equalities (the shape conjunctive bodies
//!   compile to) is evaluated as a hash join instead of materialising the
//!   full product. The budget is still charged as if the product had been
//!   materialised, so budget-driven control flow (which rules the chase
//!   engine skips) is identical to the naive evaluator's — only the wall
//!   clock and the memory high-water mark improve.

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};

use crate::error::AlgebraError;
use crate::expr::Expr;
use crate::instance::{Instance, Relation, RelationSource};
use crate::ops::{OperatorSet, RowSink};
use crate::pred::{CmpOp, Operand, Pred};
use crate::signature::Signature;
use crate::value::{Tuple, Value};

/// Evaluation context: the instance (or layered view) plus the signature and
/// operator set needed to resolve arities and user-defined operators.
pub struct Evaluator<'a, S: RelationSource = Instance> {
    sig: &'a Signature,
    ops: &'a OperatorSet,
    instance: &'a S,
    active_domain: Vec<Value>,
    /// Optional cap on materialised tuples across the whole evaluation.
    budget: Option<usize>,
    used: Cell<usize>,
}

impl<'a, S: RelationSource> Evaluator<'a, S> {
    /// Create an evaluator for one instance.
    pub fn new(sig: &'a Signature, ops: &'a OperatorSet, instance: &'a S) -> Self {
        let active_domain = instance.domain_values().into_iter().collect();
        Evaluator { sig, ops, instance, active_domain, budget: None, used: Cell::new(0) }
    }

    /// Create an evaluator that fails with
    /// [`AlgebraError::EvalBudgetExceeded`] once more than `budget` tuples
    /// have been materialised. Active-domain powers (`D^r`) and products grow
    /// combinatorially with the instance, so long-running callers (the chase
    /// engine, bulk verification) use this to bound work instead of
    /// exhausting memory. User-defined operators are charged per row as they
    /// emit through their [`RowSink`].
    pub fn with_budget(
        sig: &'a Signature,
        ops: &'a OperatorSet,
        instance: &'a S,
        budget: usize,
    ) -> Self {
        let mut evaluator = Evaluator::new(sig, ops, instance);
        evaluator.budget = Some(budget);
        evaluator
    }

    /// Create an evaluator from a precomputed active domain. Callers that
    /// evaluate many expressions over an incrementally growing instance (the
    /// chase engine) maintain the domain themselves instead of rescanning
    /// every value on each construction.
    pub fn with_parts(
        sig: &'a Signature,
        ops: &'a OperatorSet,
        instance: &'a S,
        active_domain: Vec<Value>,
        budget: Option<usize>,
    ) -> Self {
        Evaluator { sig, ops, instance, active_domain, budget, used: Cell::new(0) }
    }

    /// Tuples materialised so far (only tracked when a budget is set).
    pub fn tuples_used(&self) -> usize {
        self.used.get()
    }

    fn charge(&self, amount: usize) -> Result<(), AlgebraError> {
        if let Some(budget) = self.budget {
            let used = self.used.get().saturating_add(amount);
            self.used.set(used);
            if used > budget {
                return Err(AlgebraError::EvalBudgetExceeded { budget });
            }
        }
        Ok(())
    }

    /// The active domain used for `D^r`.
    pub fn active_domain(&self) -> &[Value] {
        &self.active_domain
    }

    /// Evaluate an expression to a relation.
    pub fn eval(&self, expr: &Expr) -> Result<Relation, AlgebraError> {
        match expr {
            Expr::Rel(name) => {
                // Unknown symbols are an error so that typos surface early.
                self.sig.arity(name)?;
                let relation = self.instance.relation(name);
                self.charge(relation.len())?;
                Ok(relation)
            }
            Expr::Domain(r) => self.domain_power(*r),
            Expr::Empty(_) => Ok(Relation::new()),
            Expr::Union(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.union(&self.eval(b)?))
            }
            Expr::Intersect(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.intersect(&self.eval(b)?))
            }
            Expr::Difference(a, b) => {
                self.check_equal_arity(expr, a, b)?;
                Ok(self.eval(a)?.difference(&self.eval(b)?))
            }
            Expr::Product(a, b) => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                let mut out = Relation::new();
                for lt in left.iter() {
                    self.charge(right.len())?;
                    for rt in right.iter() {
                        let mut tuple = lt.clone();
                        tuple.extend(rt.iter().cloned());
                        out.insert(tuple);
                    }
                }
                Ok(out)
            }
            Expr::Project(cols, inner) => {
                let arity = inner.arity(self.sig, self.ops)?;
                for &c in cols {
                    if c >= arity {
                        return Err(AlgebraError::ColumnOutOfRange { column: c, arity });
                    }
                }
                let rel = self.eval(inner)?;
                let mut out = Relation::new();
                for t in rel.iter() {
                    out.insert(cols.iter().map(|&c| t[c].clone()).collect());
                }
                Ok(out)
            }
            Expr::Select(pred, inner) => {
                if let Some(joined) = self.try_indexed_join(pred, inner)? {
                    return Ok(joined);
                }
                let rel = self.eval(inner)?;
                Ok(rel.iter().filter(|t| pred.eval(t)).cloned().collect())
            }
            Expr::Skolem(f, _) => Err(AlgebraError::SkolemNotEvaluable(f.name.clone())),
            Expr::Apply(name, args) => {
                let def = self
                    .ops
                    .get(name)
                    .ok_or_else(|| AlgebraError::UnknownOperator(name.clone()))?;
                let eval_fn = def
                    .eval
                    .clone()
                    .ok_or_else(|| AlgebraError::OperatorNotEvaluable(name.clone()))?;
                let arities = args
                    .iter()
                    .map(|arg| arg.arity(self.sig, self.ops))
                    .collect::<Result<Vec<_>, _>>()?;
                let rels = args.iter().map(|arg| self.eval(arg)).collect::<Result<Vec<_>, _>>()?;
                let mut sink = match self.budget {
                    Some(budget) => RowSink::with_meter(&self.used, budget),
                    None => RowSink::unbudgeted(),
                };
                eval_fn(&rels, &arities, &mut sink)?;
                Ok(sink.into_relation())
            }
        }
    }

    /// Hash-join fast path for `σ_pred(E1 × E2 × … × Ek)` where `pred`
    /// contains at least one cross-factor column equality: evaluate the
    /// factors, then combine them left to right probing a hash index per
    /// factor instead of materialising the full product. Returns `Ok(None)`
    /// when the shape does not apply (the caller falls back to
    /// filter-after-materialise).
    ///
    /// The budget is charged exactly as the naive product evaluation would
    /// charge it (the running product of factor cardinalities), so which
    /// evaluations exceed a given budget is unchanged.
    fn try_indexed_join(
        &self,
        pred: &Pred,
        inner: &Expr,
    ) -> Result<Option<Relation>, AlgebraError> {
        let mut factors: Vec<&Expr> = Vec::new();
        flatten_product(inner, &mut factors);
        if factors.len() < 2 {
            return Ok(None);
        }
        let arities =
            factors.iter().map(|f| f.arity(self.sig, self.ops)).collect::<Result<Vec<_>, _>>()?;
        let mut offsets = Vec::with_capacity(arities.len());
        let mut width = 0usize;
        for arity in &arities {
            offsets.push(width);
            width += arity;
        }
        let conjuncts = pred.conjuncts();
        // Every conjunct must be in range, otherwise the naive path's
        // out-of-range-is-false semantics would be lost.
        if conjuncts.iter().any(|c| c.max_column().is_some_and(|col| col >= width)) {
            return Ok(None);
        }
        let factor_of = |col: usize| offsets.iter().rposition(|&offset| offset <= col).unwrap_or(0);
        // Cross-factor column equalities drive the join; everything else is
        // applied as a residual filter once its columns are available.
        let has_join_key = conjuncts.iter().any(|conjunct| {
            matches!(
                conjunct,
                Pred::Cmp(Operand::Col(l), CmpOp::Eq, Operand::Col(r))
                    if factor_of(*l) != factor_of(*r)
            )
        });
        if !has_join_key {
            return Ok(None);
        }

        let rels = factors.iter().map(|f| self.eval(f)).collect::<Result<Vec<_>, _>>()?;
        // Ragged rows (length ≠ declared arity) shift later factors' columns
        // in the concatenated product; only materialise-then-filter
        // reproduces that faithfully, so fall back for such degenerate data
        // (re-evaluating the factors; the duplicated leaf charge only
        // affects this out-of-contract shape).
        if rels.iter().zip(&arities).any(|(rel, &arity)| rel.iter().any(|t| t.len() != arity)) {
            return Ok(None);
        }
        // Charge exactly what evaluating the product tree naively would
        // charge: one |left|·|right| charge per Product node, whatever the
        // tree shape.
        self.charge_product_nodes(inner, &rels, &mut 0)?;

        let applicable = |conjunct: &Pred, upto: usize| match conjunct.max_column() {
            Some(col) => col < upto,
            None => true,
        };
        let mut applied = vec![false; conjuncts.len()];
        let mut rows: Vec<Tuple> = rels[0].iter().cloned().collect();
        let mut bound = arities[0];
        for (index, conjunct) in conjuncts.iter().enumerate() {
            if applicable(conjunct, bound) {
                applied[index] = true;
                rows.retain(|row| conjunct.eval(row));
            }
        }
        for (factor, rel) in rels.iter().enumerate().skip(1) {
            // Join keys: equalities between an already-bound column and a
            // column of this factor.
            let mut left_keys: Vec<usize> = Vec::new();
            let mut right_keys: Vec<usize> = Vec::new();
            for (index, conjunct) in conjuncts.iter().enumerate() {
                if applied[index] {
                    continue;
                }
                if let Pred::Cmp(Operand::Col(a), CmpOp::Eq, Operand::Col(b)) = conjunct {
                    let (lo, hi) = (*a.min(b), *a.max(b));
                    if hi >= offsets[factor] && hi < offsets[factor] + arities[factor] && lo < bound
                    {
                        applied[index] = true;
                        left_keys.push(lo);
                        right_keys.push(hi - offsets[factor]);
                    }
                }
            }
            let mut next: Vec<Tuple> = Vec::new();
            if left_keys.is_empty() {
                for row in &rows {
                    for tuple in rel.iter() {
                        let mut combined = row.clone();
                        combined.extend(tuple.iter().cloned());
                        next.push(combined);
                    }
                }
            } else {
                let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
                for tuple in rel.iter() {
                    let key: Vec<Value> = right_keys.iter().map(|&c| tuple[c].clone()).collect();
                    index.entry(key).or_default().push(tuple);
                }
                for row in &rows {
                    let key: Vec<Value> = left_keys.iter().map(|&c| row[c].clone()).collect();
                    // Join keys compare with `=`, whose null semantics reject
                    // null = null; a hash probe would accept it.
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = index.get(&key) {
                        for tuple in matches {
                            let mut combined = row.clone();
                            combined.extend(tuple.iter().cloned());
                            next.push(combined);
                        }
                    }
                }
            }
            bound += arities[factor];
            rows = next;
            for (index, conjunct) in conjuncts.iter().enumerate() {
                if !applied[index] && applicable(conjunct, bound) {
                    applied[index] = true;
                    rows.retain(|row| conjunct.eval(row));
                }
            }
            if rows.is_empty() {
                break;
            }
        }
        Ok(Some(rows.into_iter().collect()))
    }

    /// Walk a product tree charging each node's naive materialisation cost
    /// (`|left| · |right|`), reading leaf cardinalities from `rels` in
    /// flatten order. Returns the subtree's cardinality.
    fn charge_product_nodes(
        &self,
        expr: &Expr,
        rels: &[Relation],
        next: &mut usize,
    ) -> Result<usize, AlgebraError> {
        match expr {
            Expr::Product(a, b) => {
                let left = self.charge_product_nodes(a, rels, next)?;
                let right = self.charge_product_nodes(b, rels, next)?;
                let size = left.saturating_mul(right);
                self.charge(size)?;
                Ok(size)
            }
            _ => {
                let size = rels[*next].len();
                *next += 1;
                Ok(size)
            }
        }
    }

    fn check_equal_arity(&self, parent: &Expr, a: &Expr, b: &Expr) -> Result<(), AlgebraError> {
        let left = a.arity(self.sig, self.ops)?;
        let right = b.arity(self.sig, self.ops)?;
        if left != right {
            return Err(AlgebraError::BinaryArityMismatch {
                op: parent.operator_name(),
                left,
                right,
            });
        }
        Ok(())
    }

    fn domain_power(&self, r: usize) -> Result<Relation, AlgebraError> {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        tuples.insert(Vec::new());
        for _ in 0..r {
            let mut next = BTreeSet::new();
            self.charge(tuples.len().saturating_mul(self.active_domain.len()))?;
            for t in &tuples {
                for v in &self.active_domain {
                    let mut extended = t.clone();
                    extended.push(v.clone());
                    next.insert(extended);
                }
            }
            tuples = next;
        }
        if r > 0 && self.active_domain.is_empty() {
            return Ok(Relation::new());
        }
        Ok(tuples.into_iter().filter(|t| t.len() == r).collect())
    }
}

fn flatten_product<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Product(a, b) => {
            flatten_product(a, out);
            flatten_product(b, out);
        }
        other => out.push(other),
    }
}

/// Convenience wrapper: evaluate one expression over an instance.
pub fn eval(
    expr: &Expr,
    sig: &Signature,
    ops: &OperatorSet,
    instance: &Instance,
) -> Result<Relation, AlgebraError> {
    Evaluator::new(sig, ops, instance).eval(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::DeltaInstance;
    use crate::ops::OperatorDef;
    use crate::pred::Pred;
    use crate::value::tuple;

    fn setup() -> (Signature, OperatorSet, Instance) {
        let sig = Signature::from_arities([("R", 2), ("S", 2), ("U", 1)]);
        let ops = OperatorSet::new();
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64, 10]));
        inst.insert("R", tuple([2i64, 20]));
        inst.insert("S", tuple([2i64, 20]));
        inst.insert("S", tuple([3i64, 30]));
        inst.insert("U", tuple([1i64]));
        (sig, ops, inst)
    }

    #[test]
    fn basic_set_operators() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert_eq!(ev.eval(&Expr::rel("R").union(Expr::rel("S"))).unwrap().len(), 3);
        assert_eq!(ev.eval(&Expr::rel("R").intersect(Expr::rel("S"))).unwrap().len(), 1);
        assert_eq!(ev.eval(&Expr::rel("R").difference(Expr::rel("S"))).unwrap().len(), 1);
    }

    #[test]
    fn product_project_select() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let prod = ev.eval(&Expr::rel("R").product(Expr::rel("U"))).unwrap();
        assert_eq!(prod.len(), 2);
        assert!(prod.contains(&tuple([1i64, 10, 1])));

        let proj = ev.eval(&Expr::rel("R").project(vec![1])).unwrap();
        assert_eq!(proj.len(), 2);
        assert!(proj.contains(&tuple([10i64])));

        let dup = ev.eval(&Expr::rel("U").project(vec![0, 0])).unwrap();
        assert!(dup.contains(&tuple([1i64, 1])));

        let sel = ev.eval(&Expr::rel("R").select(Pred::eq_const(0, 2))).unwrap();
        assert_eq!(sel.len(), 1);
        assert!(sel.contains(&tuple([2i64, 20])));
    }

    #[test]
    fn domain_and_empty() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        // Active domain = {1,2,3,10,20,30}.
        assert_eq!(ev.eval(&Expr::domain(1)).unwrap().len(), 6);
        assert_eq!(ev.eval(&Expr::domain(2)).unwrap().len(), 36);
        assert!(ev.eval(&Expr::empty(3)).unwrap().is_empty());
    }

    #[test]
    fn domain_of_empty_instance_is_empty() {
        let sig = Signature::from_arities([("R", 1)]);
        let ops = OperatorSet::new();
        let inst = Instance::new();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert!(ev.eval(&Expr::domain(2)).unwrap().is_empty());
    }

    #[test]
    fn skolem_and_unknown_operator_fail() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let sk = Expr::rel("U").skolem(crate::expr::SkolemFn::new("f", vec![0]));
        assert!(matches!(ev.eval(&sk), Err(AlgebraError::SkolemNotEvaluable(_))));
        let unknown = Expr::apply("mystery", vec![Expr::rel("U")]);
        assert!(matches!(ev.eval(&unknown), Err(AlgebraError::UnknownOperator(_))));
    }

    #[test]
    fn user_operator_evaluation() {
        let (sig, mut ops, inst) = setup();
        // "swap": reverse the two columns of a binary relation.
        ops.register(OperatorDef::new("swap", 1, |a| (a == [2]).then_some(2)).with_eval(
            |rels, _, sink| {
                for t in rels[0].iter() {
                    sink.push(vec![t[1].clone(), t[0].clone()])?;
                }
                Ok(())
            },
        ));
        let ev = Evaluator::new(&sig, &ops, &inst);
        let out = ev.eval(&Expr::apply("swap", vec![Expr::rel("R")])).unwrap();
        assert!(out.contains(&tuple([10i64, 1])));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_on_semantics() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        let join = Expr::rel("R").join_on(Expr::rel("S"), &[(0, 0), (1, 1)], 2, 2);
        let out = ev.eval(&join).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple([2i64, 20])));
    }

    #[test]
    fn indexed_join_matches_naive_filtering() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        // Join R and S on the first column, with a residual constant filter;
        // the fast path must agree with filter-after-product semantics.
        let pred = Pred::eq_cols(0, 2).and(Pred::eq_const(1, 20));
        let fused = Expr::rel("R").product(Expr::rel("S")).select(pred.clone());
        let out = ev.eval(&fused).unwrap();
        let naive: Relation = {
            let prod = ev.eval(&Expr::rel("R").product(Expr::rel("S"))).unwrap();
            prod.iter().filter(|t| pred.eval(t)).cloned().collect()
        };
        assert_eq!(out, naive);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple([2i64, 20, 2, 20])));

        // Three-way join over a product tree.
        let three = Expr::rel("R")
            .product(Expr::rel("S"))
            .product(Expr::rel("U"))
            .select(Pred::eq_cols(0, 2).and(Pred::eq_cols(0, 4)));
        assert!(ev.eval(&three).unwrap().is_empty());
    }

    #[test]
    fn indexed_join_charges_like_the_naive_product() {
        let (sig, ops, inst) = setup();
        let joined = Expr::rel("R").product(Expr::rel("S")).select(Pred::eq_cols(0, 2));
        // Naive accounting: |R| + |S| + |R|·|S| = 8 tuples; a budget of 8
        // admits the join, 7 refuses it even though the output is 1 row.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 8);
        assert_eq!(ev.eval(&joined).unwrap().len(), 1);
        assert_eq!(ev.tuples_used(), 8);
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 7);
        assert_eq!(ev.eval(&joined), Err(AlgebraError::EvalBudgetExceeded { budget: 7 }));
    }

    #[test]
    fn indexed_join_charges_bushy_trees_like_the_naive_cascade() {
        // σ over a bushy product (R×S)×(R×S): naive charging is per Product
        // node — |R||S| + |R||S| + |RS||RS| = 4 + 4 + 16 = 24, plus the four
        // leaf evaluations (2 each) = 32 total. The fast path must agree.
        let (sig, ops, inst) = setup();
        let pair = || Expr::rel("R").product(Expr::rel("S"));
        let bushy = pair().product(pair()).select(Pred::eq_cols(0, 4));
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 1_000);
        let fast = ev.eval(&bushy).unwrap();
        assert_eq!(ev.tuples_used(), 32);
        // Same budget boundary as the naive cascade: 32 succeeds, 31 fails.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 31);
        assert_eq!(ev.eval(&bushy), Err(AlgebraError::EvalBudgetExceeded { budget: 31 }));
        // And the result matches filter-after-materialise.
        let ev = Evaluator::new(&sig, &ops, &inst);
        let naive: Relation = {
            let prod = ev.eval(&pair().product(pair())).unwrap();
            prod.iter().filter(|t| Pred::eq_cols(0, 4).eval(t)).cloned().collect()
        };
        assert_eq!(fast, naive);
    }

    #[test]
    fn ragged_rows_fall_back_without_panicking() {
        // A row shorter than the declared arity must not panic the indexed
        // join; the naive filter-after-product semantics apply instead.
        let (sig, ops, mut inst) = setup();
        inst.insert("R", tuple([99i64]));
        let ev = Evaluator::new(&sig, &ops, &inst);
        let joined = Expr::rel("R").product(Expr::rel("S")).select(Pred::eq_cols(1, 2));
        let fast = ev.eval(&joined).unwrap();
        let naive: Relation = {
            let prod = ev.eval(&Expr::rel("R").product(Expr::rel("S"))).unwrap();
            prod.iter().filter(|t| Pred::eq_cols(1, 2).eval(t)).cloned().collect()
        };
        assert_eq!(fast, naive);
    }

    #[test]
    fn layered_view_evaluates_like_the_merged_instance() {
        let (sig, ops, inst) = setup();
        let mut overlay = Instance::new();
        overlay.insert("S", tuple([1i64, 10]));
        let view = DeltaInstance::new(&inst, &overlay);
        let merged = inst.merge(&overlay);
        let expr = Expr::rel("R").product(Expr::rel("S")).select(Pred::eq_cols(0, 2));
        let from_view = Evaluator::new(&sig, &ops, &view).eval(&expr).unwrap();
        let from_merge = Evaluator::new(&sig, &ops, &merged).eval(&expr).unwrap();
        assert_eq!(from_view, from_merge);
        assert_eq!(from_view.len(), 2);
    }

    #[test]
    fn budget_stops_combinatorial_blowup() {
        let (sig, ops, inst) = setup();
        // D^3 over a 6-value active domain is 216 tuples; a budget of 50
        // must refuse it without materialising the power set.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 50);
        assert_eq!(ev.eval(&Expr::domain(3)), Err(AlgebraError::EvalBudgetExceeded { budget: 50 }));
        // Small evaluations under the same budget still succeed.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 50);
        assert_eq!(ev.eval(&Expr::rel("R")).unwrap().len(), 2);
        assert!(ev.tuples_used() >= 2);
        // Products are charged per output row.
        let ev = Evaluator::with_budget(&sig, &ops, &inst, 5);
        assert!(ev.eval(&Expr::rel("R").product(Expr::rel("S"))).is_err());
    }

    #[test]
    fn apply_budget_fails_fast_during_materialisation() {
        let (sig, mut ops, inst) = setup();
        // A deliberately expansive operator: the cross square of its input
        // (quadratic, like transitive closure on a dense graph).
        ops.register(OperatorDef::new("square", 1, |a| (a == [2]).then_some(2)).with_eval(
            |rels, _, sink| {
                for a in rels[0].iter() {
                    for b in rels[0].iter() {
                        sink.push(vec![a[0].clone(), b[1].clone()])?;
                    }
                }
                Ok(())
            },
        ));
        // Populate R with enough rows that the square (100 rows) dwarfs the
        // budget.
        let mut big = inst.clone();
        for i in 0..10i64 {
            big.insert("R", tuple([100 + i, 200 + i]));
        }
        let ev = Evaluator::with_budget(&sig, &ops, &big, 20);
        let expr = Expr::apply("square", vec![Expr::rel("R")]);
        assert!(matches!(ev.eval(&expr), Err(AlgebraError::EvalBudgetExceeded { budget: 20 })));
        // The regression: before the sink interface the operator materialised
        // its full output (≥ 144 rows) before the charge; now evaluation
        // stops within one row of the budget.
        assert!(
            ev.tuples_used() <= 21,
            "operator overshot the budget: {} tuples materialised",
            ev.tuples_used()
        );
    }

    #[test]
    fn arity_errors_propagate() {
        let (sig, ops, inst) = setup();
        let ev = Evaluator::new(&sig, &ops, &inst);
        assert!(ev.eval(&Expr::rel("R").union(Expr::rel("U"))).is_err());
        assert!(ev.eval(&Expr::rel("R").project(vec![9])).is_err());
        assert!(ev.eval(&Expr::rel("Nope")).is_err());
    }
}
