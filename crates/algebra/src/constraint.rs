//! Constraints: containments and equalities of relational expressions.
//!
//! Paper §2: "A containment constraint is a constraint of the form E1 ⊆ E2
//! ... An equality constraint is a constraint of the form E1 = E2."

use std::collections::BTreeSet;
use std::fmt;

use crate::error::AlgebraError;
use crate::eval::Evaluator;
use crate::expr::Expr;
use crate::instance::Instance;
use crate::ops::OperatorSet;
use crate::signature::Signature;

/// Kind of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintKind {
    /// `lhs ⊆ rhs`.
    Containment,
    /// `lhs = rhs`.
    Equality,
}

/// A single mapping constraint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Constraint {
    /// Left-hand expression.
    pub lhs: Expr,
    /// Right-hand expression.
    pub rhs: Expr,
    /// Containment or equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `lhs ⊆ rhs`.
    pub fn containment(lhs: Expr, rhs: Expr) -> Constraint {
        Constraint { lhs, rhs, kind: ConstraintKind::Containment }
    }

    /// `lhs = rhs`.
    pub fn equality(lhs: Expr, rhs: Expr) -> Constraint {
        Constraint { lhs, rhs, kind: ConstraintKind::Equality }
    }

    /// Is this an equality constraint?
    pub fn is_equality(&self) -> bool {
        self.kind == ConstraintKind::Equality
    }

    /// Both sides of the constraint.
    pub fn sides(&self) -> [&Expr; 2] {
        [&self.lhs, &self.rhs]
    }

    /// All relation symbols mentioned on either side.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = self.lhs.relations();
        out.extend(self.rhs.relations());
        out
    }

    /// Does either side mention `name`?
    pub fn mentions(&self, name: &str) -> bool {
        self.lhs.mentions(name) || self.rhs.mentions(name)
    }

    /// Total occurrences of `name` on both sides.
    pub fn occurrences(&self, name: &str) -> usize {
        self.lhs.occurrences(name) + self.rhs.occurrences(name)
    }

    /// Does either side contain a Skolem pseudo-operator?
    pub fn has_skolem(&self) -> bool {
        self.lhs.has_skolem() || self.rhs.has_skolem()
    }

    /// Names of all Skolem functions mentioned.
    pub fn skolem_names(&self) -> BTreeSet<String> {
        let mut out = self.lhs.skolem_names();
        out.extend(self.rhs.skolem_names());
        out
    }

    /// Size measure: total operator count of both sides (paper §4.2).
    pub fn op_count(&self) -> usize {
        self.lhs.op_count() + self.rhs.op_count()
    }

    /// Replace every occurrence of `name` with `replacement` on both sides.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Constraint {
        Constraint {
            lhs: self.lhs.substitute(name, replacement),
            rhs: self.rhs.substitute(name, replacement),
            kind: self.kind,
        }
    }

    /// Split an equality into its two containments; a containment yields
    /// itself (paper §3.1, step 2: "we convert every equality constraint
    /// E1 = E2 that contains S into two containment constraints").
    pub fn as_containments(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::Containment => vec![self.clone()],
            ConstraintKind::Equality => vec![
                Constraint::containment(self.lhs.clone(), self.rhs.clone()),
                Constraint::containment(self.rhs.clone(), self.lhs.clone()),
            ],
        }
    }

    /// Validate that both sides are well-typed and have equal arity.
    pub fn validate(&self, sig: &Signature, ops: &OperatorSet) -> Result<usize, AlgebraError> {
        let left = self.lhs.arity(sig, ops)?;
        let right = self.rhs.arity(sig, ops)?;
        if left != right {
            return Err(AlgebraError::BinaryArityMismatch {
                op: match self.kind {
                    ConstraintKind::Containment => "containment",
                    ConstraintKind::Equality => "equality",
                },
                left,
                right,
            });
        }
        Ok(left)
    }

    /// Does the instance satisfy the constraint (`A ⊨ ξ`, paper §2)?
    pub fn satisfied_by(
        &self,
        sig: &Signature,
        ops: &OperatorSet,
        instance: &Instance,
    ) -> Result<bool, AlgebraError> {
        let ev = Evaluator::new(sig, ops, instance);
        self.satisfied_with(&ev)
    }

    /// Like [`Constraint::satisfied_by`], but using a caller-supplied
    /// evaluator — typically one with a tuple budget
    /// ([`Evaluator::with_budget`]) so that constraints whose evaluation
    /// would blow up combinatorially report
    /// [`AlgebraError::EvalBudgetExceeded`] instead of exhausting memory.
    pub fn satisfied_with<S: crate::instance::RelationSource>(
        &self,
        ev: &Evaluator<'_, S>,
    ) -> Result<bool, AlgebraError> {
        let left = ev.eval(&self.lhs)?;
        let right = ev.eval(&self.rhs)?;
        Ok(match self.kind {
            ConstraintKind::Containment => left.is_subset(&right),
            ConstraintKind::Equality => left == right,
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sep = match self.kind {
            ConstraintKind::Containment => "<=",
            ConstraintKind::Equality => "=",
        };
        write!(f, "{} {} {}", self.lhs, sep, self.rhs)
    }
}

/// A finite set of constraints (Σ in the paper). Order is preserved because
/// the algorithm's output is easier to read when constraints stay where the
/// user wrote them; equality ignores order via the sorted view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Build from an iterator of constraints.
    pub fn from_constraints<I: IntoIterator<Item = Constraint>>(constraints: I) -> Self {
        ConstraintSet { constraints: constraints.into_iter().collect() }
    }

    /// Append a constraint.
    pub fn push(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Append all constraints of another set.
    pub fn extend(&mut self, other: &ConstraintSet) -> &mut Self {
        self.constraints.extend(other.constraints.iter().cloned());
        self
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterate over constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Constraints as a slice.
    pub fn as_slice(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Constraint> {
        self.constraints
    }

    /// All relation symbols mentioned by any constraint.
    pub fn relations(&self) -> BTreeSet<String> {
        self.constraints.iter().flat_map(Constraint::relations).collect()
    }

    /// Constraints mentioning the symbol `name`.
    pub fn mentioning(&self, name: &str) -> Vec<&Constraint> {
        self.constraints.iter().filter(|c| c.mentions(name)).collect()
    }

    /// Does any constraint mention `name`?
    pub fn mentions(&self, name: &str) -> bool {
        self.constraints.iter().any(|c| c.mentions(name))
    }

    /// Does any constraint contain a Skolem pseudo-operator?
    pub fn has_skolem(&self) -> bool {
        self.constraints.iter().any(Constraint::has_skolem)
    }

    /// Size measure: total operator count across all constraints.
    pub fn op_count(&self) -> usize {
        self.constraints.iter().map(Constraint::op_count).sum()
    }

    /// Remove exact duplicate constraints (keeping first occurrences) and
    /// trivially true constraints `E ⊆ E` / `E = E`.
    pub fn dedup(&mut self) -> &mut Self {
        let mut seen = BTreeSet::new();
        self.constraints.retain(|c| {
            if c.lhs == c.rhs {
                return false;
            }
            seen.insert(c.clone())
        });
        self
    }

    /// Validate every constraint.
    pub fn validate(&self, sig: &Signature, ops: &OperatorSet) -> Result<(), AlgebraError> {
        for constraint in &self.constraints {
            constraint.validate(sig, ops)?;
        }
        Ok(())
    }

    /// Does the instance satisfy every constraint (`A ⊨ Σ`)?
    pub fn satisfied_by(
        &self,
        sig: &Signature,
        ops: &OperatorSet,
        instance: &Instance,
    ) -> Result<bool, AlgebraError> {
        for constraint in &self.constraints {
            if !constraint.satisfied_by(sig, ops, instance)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        ConstraintSet::from_constraints(iter)
    }
}

impl IntoIterator for ConstraintSet {
    type Item = Constraint;
    type IntoIter = std::vec::IntoIter<Constraint>;
    fn into_iter(self) -> Self::IntoIter {
        self.constraints.into_iter()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for constraint in &self.constraints {
            writeln!(f, "{constraint};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Pred;
    use crate::value::tuple;

    fn sig() -> Signature {
        Signature::from_arities([("R", 1), ("S", 1), ("T", 1)])
    }

    #[test]
    fn example_3_satisfaction() {
        // Σ := {R ⊆ S, S ⊆ T} from the paper's Example 3.
        let ops = OperatorSet::new();
        let sigma = ConstraintSet::from_constraints([
            Constraint::containment(Expr::rel("R"), Expr::rel("S")),
            Constraint::containment(Expr::rel("S"), Expr::rel("T")),
        ]);
        let mut good = Instance::new();
        good.insert("R", tuple([1i64]));
        good.insert("S", tuple([1i64]));
        good.insert("S", tuple([2i64]));
        good.insert("T", tuple([1i64]));
        good.insert("T", tuple([2i64]));
        assert!(sigma.satisfied_by(&sig(), &ops, &good).unwrap());

        let mut bad = Instance::new();
        bad.insert("R", tuple([1i64]));
        assert!(!sigma.satisfied_by(&sig(), &ops, &bad).unwrap());
    }

    #[test]
    fn equality_is_both_containments() {
        let c = Constraint::equality(Expr::rel("R"), Expr::rel("S"));
        let parts = c.as_containments();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], Constraint::containment(Expr::rel("R"), Expr::rel("S")));
        assert_eq!(parts[1], Constraint::containment(Expr::rel("S"), Expr::rel("R")));
        let only = Constraint::containment(Expr::rel("R"), Expr::rel("S"));
        assert_eq!(only.as_containments(), vec![only.clone()]);
    }

    #[test]
    fn equality_satisfaction_checks_both_directions() {
        let ops = OperatorSet::new();
        let c = Constraint::equality(Expr::rel("R"), Expr::rel("S"));
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64]));
        inst.insert("S", tuple([1i64]));
        assert!(c.satisfied_by(&sig(), &ops, &inst).unwrap());
        inst.insert("S", tuple([2i64]));
        assert!(!c.satisfied_by(&sig(), &ops, &inst).unwrap());
    }

    #[test]
    fn key_constraint_encoding_example_2() {
        // Paper Example 2: the first attribute of binary S is a key,
        // expressed as  π_{1,3}(σ_{0=2}(S×S)) ⊆ σ_{0=1}(D²).
        let sig = Signature::from_arities([("S", 2)]);
        let ops = OperatorSet::new();
        let lhs =
            Expr::rel("S").product(Expr::rel("S")).select(Pred::eq_cols(0, 2)).project(vec![1, 3]);
        let rhs = Expr::domain(2).select(Pred::eq_cols(0, 1));
        let key = Constraint::containment(lhs, rhs);

        let mut keyed = Instance::new();
        keyed.insert("S", tuple([1i64, 10]));
        keyed.insert("S", tuple([2i64, 20]));
        assert!(key.satisfied_by(&sig, &ops, &keyed).unwrap());

        let mut violating = Instance::new();
        violating.insert("S", tuple([1i64, 10]));
        violating.insert("S", tuple([1i64, 11]));
        assert!(!key.satisfied_by(&sig, &ops, &violating).unwrap());
    }

    #[test]
    fn constraint_queries_and_substitution() {
        let c = Constraint::containment(
            Expr::rel("R").product(Expr::rel("S")),
            Expr::rel("T").product(Expr::rel("S")),
        );
        assert_eq!(c.occurrences("S"), 2);
        assert!(c.mentions("R"));
        assert_eq!(
            c.relations().into_iter().collect::<Vec<_>>(),
            vec!["R".to_string(), "S".to_string(), "T".to_string()]
        );
        let swapped = c.substitute("S", &Expr::rel("U"));
        assert_eq!(swapped.occurrences("S"), 0);
        assert_eq!(swapped.occurrences("U"), 2);
        assert_eq!(c.op_count(), 6);
    }

    #[test]
    fn constraint_set_dedup() {
        let mut set = ConstraintSet::from_constraints([
            Constraint::containment(Expr::rel("R"), Expr::rel("S")),
            Constraint::containment(Expr::rel("R"), Expr::rel("S")),
            Constraint::containment(Expr::rel("R"), Expr::rel("R")),
        ]);
        set.dedup();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn validation_rejects_mismatched_sides() {
        let sig = Signature::from_arities([("R", 1), ("S", 2)]);
        let ops = OperatorSet::new();
        let bad = Constraint::containment(Expr::rel("R"), Expr::rel("S"));
        assert!(bad.validate(&sig, &ops).is_err());
        let good = Constraint::containment(Expr::rel("S").project(vec![0]), Expr::rel("R"));
        assert_eq!(good.validate(&sig, &ops).unwrap(), 1);
    }

    #[test]
    fn display_shape() {
        let c = Constraint::containment(Expr::rel("R"), Expr::rel("S"));
        assert_eq!(c.to_string(), "R <= S");
        let e = Constraint::equality(Expr::rel("R"), Expr::rel("S"));
        assert_eq!(e.to_string(), "R = S");
    }
}
