//! Database instances.
//!
//! An instance assigns a finite relation (a set of tuples, set semantics as
//! in paper §2) to each relation symbol of a signature. Instances are used by
//! the evaluator, by constraint satisfaction (`A ⊨ ξ`), and by the
//! bounded-model equivalence checker in the composition crate.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::signature::Signature;
use crate::value::{Tuple, Value};

/// A finite relation: a set of same-arity tuples under set semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relation {
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Build a relation from tuples.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(tuples: I) -> Self {
        Relation { tuples: tuples.into_iter().collect() }
    }

    /// Insert a tuple; returns true if it was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        self.tuples.insert(tuple)
    }

    /// Remove a tuple; returns true if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Is every tuple of `self` also in `other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation { tuples: self.tuples.union(&other.tuples).cloned().collect() }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Relation) -> Relation {
        Relation { tuples: self.tuples.intersection(&other.tuples).cloned().collect() }
    }

    /// Set difference.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation { tuples: self.tuples.difference(&other.tuples).cloned().collect() }
    }

    /// All values appearing in any tuple.
    pub fn values(&self) -> BTreeSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().cloned()).collect()
    }
}

impl From<BTreeSet<Tuple>> for Relation {
    fn from(tuples: BTreeSet<Tuple>) -> Self {
        Relation { tuples }
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Relation::from_tuples(iter)
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, tuple) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, value) in tuple.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{value}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

/// A database instance: contents for each relation symbol.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Instance {
    relations: BTreeMap<String, Relation>,
}

impl Instance {
    /// The empty instance (every relation symbol maps to the empty relation).
    pub fn new() -> Self {
        Instance::default()
    }

    /// Replace the contents of one relation.
    pub fn set(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        self.relations.insert(name.into(), relation);
        self
    }

    /// Insert a single tuple into a relation.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> &mut Self {
        self.relations.entry(name.to_string()).or_default().insert(tuple);
        self
    }

    /// Remove a single tuple from a relation; returns true if it was
    /// present. An emptied relation stays set (its name remains visible).
    pub fn remove(&mut self, name: &str, tuple: &Tuple) -> bool {
        self.relations.get_mut(name).is_some_and(|relation| relation.remove(tuple))
    }

    /// Does the named relation contain this tuple?
    pub fn contains(&self, name: &str, tuple: &Tuple) -> bool {
        self.relations.get(name).is_some_and(|relation| relation.contains(tuple))
    }

    /// Contents of a relation (`S^A` in the paper); empty if unset.
    pub fn get(&self, name: &str) -> Relation {
        self.relations.get(name).cloned().unwrap_or_default()
    }

    /// Borrowed contents of a relation, if any tuples were set.
    pub fn get_ref(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Names of relations with explicitly set contents.
    pub fn names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// The active domain: the set of values appearing anywhere in the
    /// instance (paper §2).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations.values().flat_map(Relation::values).collect()
    }

    /// Restrict the instance to the symbols of a signature (used when
    /// checking the soundness half of constraint-set equivalence).
    pub fn restrict(&self, sig: &Signature) -> Instance {
        let mut out = Instance::new();
        for (name, rel) in &self.relations {
            if sig.contains(name) {
                out.set(name.clone(), rel.clone());
            }
        }
        out
    }

    /// Merge two instances over disjoint signatures (the `(A, B)` database of
    /// paper §2). Relations present in both keep the union of their tuples.
    pub fn merge(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for (name, rel) in &other.relations {
            let merged = out.get(name).union(rel);
            out.set(name.clone(), merged);
        }
        out
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

/// A read-only supplier of relation contents, abstracting over a plain
/// [`Instance`] and layered views such as [`DeltaInstance`].
///
/// The [`crate::eval::Evaluator`] is generic over this trait so long-running
/// callers (the chase engine) can evaluate over a stack of instances — e.g. an
/// immutable source plus a growing target — without materialising their union
/// with `Instance::merge` on every evaluation.
pub trait RelationSource {
    /// Contents of one relation (empty if unset), as an owned set.
    fn relation(&self, name: &str) -> Relation;

    /// The set of values appearing anywhere in the source (the active
    /// domain of paper §2).
    fn domain_values(&self) -> BTreeSet<Value>;
}

impl RelationSource for Instance {
    fn relation(&self, name: &str) -> Relation {
        self.get(name)
    }

    fn domain_values(&self) -> BTreeSet<Value> {
        self.active_domain()
    }
}

/// A layered, copy-free view over several instances: each relation is the
/// union of its contents across all layers.
///
/// This is the `(A, B)` database of paper §2 without the merge: the chase
/// engine keeps the source instance and the materialised target as separate
/// layers and evaluates premises and satisfaction checks over this view,
/// instead of cloning `source.merge(&target)` once per rule per round.
#[derive(Debug, Clone)]
pub struct DeltaInstance<'a> {
    layers: Vec<&'a Instance>,
}

impl<'a> DeltaInstance<'a> {
    /// View over a base instance and an overlay (base first).
    pub fn new(base: &'a Instance, overlay: &'a Instance) -> Self {
        DeltaInstance { layers: vec![base, overlay] }
    }

    /// View over an arbitrary stack of layers.
    pub fn from_layers(layers: Vec<&'a Instance>) -> Self {
        DeltaInstance { layers }
    }

    /// The layers, base first.
    pub fn layers(&self) -> &[&'a Instance] {
        &self.layers
    }
}

impl RelationSource for DeltaInstance<'_> {
    fn relation(&self, name: &str) -> Relation {
        let mut out = Relation::new();
        for layer in &self.layers {
            if let Some(rel) = layer.get_ref(name) {
                for tuple in rel.iter() {
                    out.insert(tuple.clone());
                }
            }
        }
        out
    }

    fn domain_values(&self) -> BTreeSet<Value> {
        self.layers.iter().flat_map(|layer| layer.active_domain()).collect()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, rel)) in self.relations.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name} = {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    #[test]
    fn relation_set_operations() {
        let a = Relation::from_tuples([tuple([1i64]), tuple([2i64])]);
        let b = Relation::from_tuples([tuple([2i64]), tuple([3i64])]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 1);
        assert!(a.intersect(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn duplicate_insertion_is_set_semantics() {
        let mut rel = Relation::new();
        assert!(rel.insert(tuple([1i64, 2])));
        assert!(!rel.insert(tuple([1i64, 2])));
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&tuple([1i64, 2])));
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64, 2]));
        inst.insert("S", tuple(["a"]));
        let dom = inst.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::Int(1)));
        assert!(dom.contains(&Value::str("a")));
    }

    #[test]
    fn restrict_and_merge() {
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64]));
        inst.insert("S", tuple([2i64]));
        let sig = Signature::from_arities([("R", 1)]);
        let restricted = inst.restrict(&sig);
        assert_eq!(restricted.names(), vec!["R".to_string()]);

        let mut other = Instance::new();
        other.insert("S", tuple([3i64]));
        other.insert("T", tuple([4i64]));
        let merged = inst.merge(&other);
        assert_eq!(merged.get("S").len(), 2);
        assert_eq!(merged.get("T").len(), 1);
        assert_eq!(merged.total_tuples(), 4);
    }

    #[test]
    fn delta_instance_unions_layers_without_copying_the_base() {
        let mut base = Instance::new();
        base.insert("R", tuple([1i64]));
        base.insert("R", tuple([2i64]));
        let mut overlay = Instance::new();
        overlay.insert("R", tuple([2i64]));
        overlay.insert("R", tuple([3i64]));
        overlay.insert("S", tuple(["x"]));
        let view = DeltaInstance::new(&base, &overlay);
        assert_eq!(view.relation("R").len(), 3);
        assert_eq!(view.relation("S").len(), 1);
        assert!(view.relation("T").is_empty());
        assert_eq!(view.domain_values(), base.merge(&overlay).active_domain());
        assert_eq!(view.layers().len(), 2);
    }

    #[test]
    fn display_is_deterministic() {
        let rel = Relation::from_tuples([tuple([2i64]), tuple([1i64])]);
        assert_eq!(rel.to_string(), "{(1), (2)}");
    }
}
