//! Mappings and composition tasks.
//!
//! A mapping (paper §2) is given by `(σ1, σ2, Σ12)`: an input signature, an
//! output signature, and a finite set of constraints over their union. A
//! composition task packages two mappings sharing an intermediate signature.

use std::collections::BTreeSet;
use std::fmt;

use crate::constraint::ConstraintSet;
use crate::error::AlgebraError;
use crate::instance::Instance;
use crate::ops::OperatorSet;
use crate::signature::Signature;

/// A mapping `(σ_in, σ_out, Σ)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mapping {
    /// Input (source) signature σ1.
    pub input: Signature,
    /// Output (target) signature σ2.
    pub output: Signature,
    /// Constraints over σ1 ∪ σ2.
    pub constraints: ConstraintSet,
}

impl Mapping {
    /// Create a mapping.
    pub fn new(input: Signature, output: Signature, constraints: ConstraintSet) -> Self {
        Mapping { input, output, constraints }
    }

    /// The combined signature σ_in ∪ σ_out.
    pub fn combined_signature(&self) -> Result<Signature, AlgebraError> {
        self.input.union(&self.output)
    }

    /// Validate: the two signatures must be disjoint (paper §2 assumes so),
    /// every constraint must type-check, and every relation symbol mentioned
    /// must be declared.
    pub fn validate(&self, ops: &OperatorSet) -> Result<(), AlgebraError> {
        let combined = self.combined_signature()?;
        self.constraints.validate(&combined, ops)?;
        for name in self.constraints.relations() {
            if !combined.contains(&name) {
                return Err(AlgebraError::UnknownRelation(name));
            }
        }
        Ok(())
    }

    /// Does the pair `(A, B)` of instances belong to the mapping, i.e. does
    /// the merged database satisfy Σ (paper §2)?
    pub fn relates(
        &self,
        ops: &OperatorSet,
        input_instance: &Instance,
        output_instance: &Instance,
    ) -> Result<bool, AlgebraError> {
        let combined_sig = self.combined_signature()?;
        let merged = input_instance.merge(output_instance);
        self.constraints.satisfied_by(&combined_sig, ops, &merged)
    }

    /// Relation symbols mentioned by the constraints but not declared in
    /// either signature (useful diagnostics for hand-written tasks).
    pub fn undeclared_symbols(&self) -> BTreeSet<String> {
        let declared: BTreeSet<String> =
            self.input.names().into_iter().chain(self.output.names()).collect();
        self.constraints.relations().into_iter().filter(|name| !declared.contains(name)).collect()
    }

    /// Size measure of the mapping (total operator count).
    pub fn op_count(&self) -> usize {
        self.constraints.op_count()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input  {}", self.input)?;
        writeln!(f, "output {}", self.output)?;
        write!(f, "{}", self.constraints)
    }
}

/// A composition task: mappings `m12 : σ1 → σ2` and `m23 : σ2 → σ3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionTask {
    /// Source signature σ1.
    pub sigma1: Signature,
    /// Intermediate signature σ2 (the symbols to eliminate).
    pub sigma2: Signature,
    /// Target signature σ3.
    pub sigma3: Signature,
    /// Constraints of the first mapping (over σ1 ∪ σ2).
    pub sigma12: ConstraintSet,
    /// Constraints of the second mapping (over σ2 ∪ σ3).
    pub sigma23: ConstraintSet,
}

impl CompositionTask {
    /// Create a composition task from its five components.
    pub fn new(
        sigma1: Signature,
        sigma2: Signature,
        sigma3: Signature,
        sigma12: ConstraintSet,
        sigma23: ConstraintSet,
    ) -> Self {
        CompositionTask { sigma1, sigma2, sigma3, sigma12, sigma23 }
    }

    /// Create a task from two mappings; the output signature of `m12` is
    /// taken as the intermediate signature and must equal the input
    /// signature of `m23`.
    pub fn from_mappings(m12: &Mapping, m23: &Mapping) -> Result<Self, AlgebraError> {
        // The intermediate signatures must agree on arity for shared symbols.
        let sigma2 = m12.output.union(&m23.input)?;
        Ok(CompositionTask {
            sigma1: m12.input.clone(),
            sigma2,
            sigma3: m23.output.clone(),
            sigma12: m12.constraints.clone(),
            sigma23: m23.constraints.clone(),
        })
    }

    /// The full signature σ1 ∪ σ2 ∪ σ3.
    pub fn full_signature(&self) -> Result<Signature, AlgebraError> {
        self.sigma1.union(&self.sigma2)?.union(&self.sigma3)
    }

    /// The combined constraint set Σ12 ∪ Σ23.
    pub fn combined_constraints(&self) -> ConstraintSet {
        let mut combined = self.sigma12.clone();
        combined.extend(&self.sigma23);
        combined
    }

    /// Symbols of σ2, in the (user-specified) deterministic order in which
    /// the composition algorithm will try to eliminate them.
    pub fn elimination_order(&self) -> Vec<String> {
        self.sigma2.names()
    }

    /// Validate both constraint sets against the full signature.
    pub fn validate(&self, ops: &OperatorSet) -> Result<(), AlgebraError> {
        let full = self.full_signature()?;
        self.sigma12.validate(&full, ops)?;
        self.sigma23.validate(&full, ops)?;
        Ok(())
    }
}

impl fmt::Display for CompositionTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sigma1 {}", self.sigma1)?;
        writeln!(f, "sigma2 {}", self.sigma2)?;
        writeln!(f, "sigma3 {}", self.sigma3)?;
        writeln!(f, "sigma12:")?;
        write!(f, "{}", self.sigma12)?;
        writeln!(f, "sigma23:")?;
        write!(f, "{}", self.sigma23)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::expr::Expr;
    use crate::value::tuple;

    fn movies_task() -> CompositionTask {
        // Paper Example 1 (simplified arities): Movies evolves to
        // FiveStarMovies, which is split into Names and Years.
        let sigma1 = Signature::from_arities([("Movies", 6)]);
        let sigma2 = Signature::from_arities([("FiveStarMovies", 3)]);
        let sigma3 = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let sigma12 = ConstraintSet::from_constraints([Constraint::containment(
            Expr::rel("Movies").select(crate::pred::Pred::eq_const(3, 5)).project(vec![0, 1, 2]),
            Expr::rel("FiveStarMovies"),
        )]);
        let sigma23 = ConstraintSet::from_constraints([Constraint::containment(
            Expr::rel("FiveStarMovies").project(vec![0, 1, 2]),
            Expr::rel("Names").join_on(Expr::rel("Years"), &[(0, 0)], 2, 2),
        )]);
        CompositionTask::new(sigma1, sigma2, sigma3, sigma12, sigma23)
    }

    #[test]
    fn task_signature_and_order() {
        let task = movies_task();
        let full = task.full_signature().unwrap();
        assert_eq!(full.len(), 4);
        assert_eq!(task.elimination_order(), vec!["FiveStarMovies".to_string()]);
        assert_eq!(task.combined_constraints().len(), 2);
        task.validate(&OperatorSet::new()).unwrap();
    }

    #[test]
    fn mapping_relates_instances() {
        let ops = OperatorSet::new();
        let input = Signature::from_arities([("R", 1)]);
        let output = Signature::from_arities([("V", 1)]);
        let constraints = ConstraintSet::from_constraints([Constraint::containment(
            Expr::rel("R"),
            Expr::rel("V"),
        )]);
        let mapping = Mapping::new(input, output, constraints);
        mapping.validate(&ops).unwrap();

        let mut a = Instance::new();
        a.insert("R", tuple([1i64]));
        let mut b = Instance::new();
        b.insert("V", tuple([1i64]));
        b.insert("V", tuple([2i64]));
        assert!(mapping.relates(&ops, &a, &b).unwrap());
        assert!(!mapping.relates(&ops, &a, &Instance::new()).unwrap());
    }

    #[test]
    fn undeclared_symbols_are_reported() {
        let mapping = Mapping::new(
            Signature::from_arities([("R", 1)]),
            Signature::new(),
            ConstraintSet::from_constraints([Constraint::containment(
                Expr::rel("R"),
                Expr::rel("Ghost"),
            )]),
        );
        let undeclared = mapping.undeclared_symbols();
        assert_eq!(undeclared.into_iter().collect::<Vec<_>>(), vec!["Ghost".to_string()]);
        assert!(mapping.validate(&OperatorSet::new()).is_err());
    }

    #[test]
    fn from_mappings_checks_intermediate_agreement() {
        let m12 = Mapping::new(
            Signature::from_arities([("R", 1)]),
            Signature::from_arities([("S", 2)]),
            ConstraintSet::new(),
        );
        let m23_ok = Mapping::new(
            Signature::from_arities([("S", 2)]),
            Signature::from_arities([("T", 1)]),
            ConstraintSet::new(),
        );
        let m23_bad = Mapping::new(
            Signature::from_arities([("S", 3)]),
            Signature::from_arities([("T", 1)]),
            ConstraintSet::new(),
        );
        assert!(CompositionTask::from_mappings(&m12, &m23_ok).is_ok());
        assert!(CompositionTask::from_mappings(&m12, &m23_bad).is_err());
    }
}
