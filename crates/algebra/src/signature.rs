//! Signatures (schemas).
//!
//! A signature maps relation symbols to arities (paper §2: "A signature is a
//! function from a set of relation symbols to positive integers which give
//! their arities"). The paper uses *signature* and *schema* synonymously; so
//! do we. Relations may additionally carry a key (a set of attribute
//! positions), which the right-normalization step uses to minimise the
//! argument list of introduced Skolem functions (§3.5.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::AlgebraError;

/// Metadata about one relation symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelInfo {
    /// Number of attributes (positions are `0..arity`).
    pub arity: usize,
    /// Optional key: positions that functionally determine the whole tuple.
    pub key: Option<Vec<usize>>,
}

impl RelInfo {
    /// A relation with the given arity and no key.
    pub fn new(arity: usize) -> Self {
        RelInfo { arity, key: None }
    }

    /// A relation with the given arity and key positions.
    pub fn with_key(arity: usize, key: Vec<usize>) -> Self {
        RelInfo { arity, key: Some(key) }
    }
}

/// A schema: relation symbols with arities and optional keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    relations: BTreeMap<String, RelInfo>,
}

impl Signature {
    /// The empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Build a signature from `(name, arity)` pairs.
    pub fn from_arities<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut sig = Signature::new();
        for (name, arity) in pairs {
            sig.add(name, RelInfo::new(arity));
        }
        sig
    }

    /// Add (or replace) a relation symbol.
    pub fn add(&mut self, name: impl Into<String>, info: RelInfo) -> &mut Self {
        self.relations.insert(name.into(), info);
        self
    }

    /// Add a relation with no key.
    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize) -> &mut Self {
        self.add(name, RelInfo::new(arity))
    }

    /// Add a relation with a key.
    pub fn add_keyed(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        key: Vec<usize>,
    ) -> &mut Self {
        self.add(name, RelInfo::with_key(arity, key))
    }

    /// Remove a relation symbol; returns its metadata if present.
    pub fn remove(&mut self, name: &str) -> Option<RelInfo> {
        self.relations.remove(name)
    }

    /// Does the signature contain this symbol?
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Metadata for a symbol.
    pub fn get(&self, name: &str) -> Option<&RelInfo> {
        self.relations.get(name)
    }

    /// Arity of a symbol, or an error naming the missing symbol.
    pub fn arity(&self, name: &str) -> Result<usize, AlgebraError> {
        self.relations
            .get(name)
            .map(|info| info.arity)
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Key of a symbol, if declared.
    pub fn key(&self, name: &str) -> Option<&[usize]> {
        self.relations.get(name).and_then(|info| info.key.as_deref())
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the signature has no symbols.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over `(name, info)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelInfo)> {
        self.relations.iter().map(|(name, info)| (name.as_str(), info))
    }

    /// Relation names in deterministic (sorted) order.
    pub fn names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Union of two signatures. Symbols present in both must agree on arity;
    /// keys from `self` win (the paper assumes input/output signatures are
    /// disjoint, so conflicts only arise from user error).
    pub fn union(&self, other: &Signature) -> Result<Signature, AlgebraError> {
        let mut out = self.clone();
        for (name, info) in other.iter() {
            match out.relations.get(name) {
                None => {
                    out.relations.insert(name.to_string(), info.clone());
                }
                Some(existing) if existing.arity == info.arity => {}
                Some(existing) => {
                    return Err(AlgebraError::ArityMismatch {
                        relation: name.to_string(),
                        expected: existing.arity,
                        found: info.arity,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Signature restricted to the symbols *not* in `names`.
    pub fn without(&self, names: &[String]) -> Signature {
        let mut out = self.clone();
        for name in names {
            out.relations.remove(name);
        }
        out
    }

    /// Do the two signatures share any symbol?
    pub fn overlaps(&self, other: &Signature) -> bool {
        self.relations.keys().any(|name| other.contains(name))
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, info)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{name}/{}", info.arity)?;
            if let Some(key) = &info.key {
                write!(f, " key(")?;
                for (j, pos) in key.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{pos}")?;
                }
                write!(f, ")")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_lookup_and_error() {
        let sig = Signature::from_arities([("R", 2), ("S", 3)]);
        assert_eq!(sig.arity("R").unwrap(), 2);
        assert_eq!(sig.arity("S").unwrap(), 3);
        assert!(matches!(
            sig.arity("T"),
            Err(AlgebraError::UnknownRelation(name)) if name == "T"
        ));
    }

    #[test]
    fn keys_are_recorded() {
        let mut sig = Signature::new();
        sig.add_keyed("Movies", 6, vec![0]);
        assert_eq!(sig.key("Movies"), Some(&[0usize][..]));
        assert_eq!(sig.key("Nope"), None);
    }

    #[test]
    fn union_detects_arity_mismatch() {
        let a = Signature::from_arities([("R", 2)]);
        let b = Signature::from_arities([("R", 3)]);
        assert!(a.union(&b).is_err());
        let c = Signature::from_arities([("S", 1)]);
        let u = a.union(&c).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains("R") && u.contains("S"));
    }

    #[test]
    fn without_removes_symbols() {
        let sig = Signature::from_arities([("R", 2), ("S", 3), ("T", 1)]);
        let rest = sig.without(&["S".to_string()]);
        assert!(rest.contains("R"));
        assert!(!rest.contains("S"));
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn display_is_stable() {
        let mut sig = Signature::new();
        sig.add_relation("B", 1);
        sig.add_keyed("A", 2, vec![0, 1]);
        assert_eq!(sig.to_string(), "{A/2 key(0,1); B/1}");
    }

    #[test]
    fn overlap_detection() {
        let a = Signature::from_arities([("R", 2)]);
        let b = Signature::from_arities([("R", 2), ("S", 1)]);
        let c = Signature::from_arities([("T", 1)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }
}
