//! User-defined operator support.
//!
//! Paper §2: "We also allow for user-defined operators to appear in
//! expressions. The basic operators should therefore be considered as those
//! which have 'built-in' support, but they are not the only operators
//! supported."
//!
//! The algebra crate records only what is needed to *type* and *evaluate* an
//! operator; composition-specific knowledge (monotonicity tables,
//! normalization and simplification rules, §3.3–§3.5) is layered on top by
//! the `mapcomp-compose` crate, keyed by operator name.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::AlgebraError;
use crate::instance::Relation;
use crate::value::Tuple;

/// Computes the output arity of an operator from its argument arities, or
/// `None` if the argument arities are invalid for the operator.
pub type ArityFn = Arc<dyn Fn(&[usize]) -> Option<usize> + Send + Sync>;

/// A budgeted output sink for operator evaluators.
///
/// Operators emit rows through [`RowSink::push`] instead of returning a
/// materialised relation, so the evaluator's tuple budget is charged *as rows
/// are produced*: an expansive operator (transitive closure is quadratic in
/// its input) fails at the budget boundary rather than after materialising
/// its whole output. Iterative operators may read back what they have emitted
/// so far via [`RowSink::relation`].
pub struct RowSink<'a> {
    out: Relation,
    /// Shared materialisation counter and budget of the driving evaluator
    /// (absent for unbudgeted evaluation).
    meter: Option<(&'a Cell<usize>, usize)>,
}

impl<'a> RowSink<'a> {
    /// A sink with no budget (used by direct operator invocation in tests
    /// and by unbudgeted evaluators).
    pub fn unbudgeted() -> RowSink<'static> {
        RowSink { out: Relation::new(), meter: None }
    }

    /// A sink charging each newly inserted row against a shared counter;
    /// `push` fails once the counter exceeds `budget`.
    pub fn with_meter(used: &'a Cell<usize>, budget: usize) -> Self {
        RowSink { out: Relation::new(), meter: Some((used, budget)) }
    }

    /// Emit one output row. Returns whether the row was new (set semantics),
    /// or [`AlgebraError::EvalBudgetExceeded`] if this row pushed the
    /// evaluation over its tuple budget.
    pub fn push(&mut self, tuple: Tuple) -> Result<bool, AlgebraError> {
        if !self.out.insert(tuple) {
            return Ok(false);
        }
        if let Some((used, budget)) = self.meter {
            let total = used.get().saturating_add(1);
            used.set(total);
            if total > budget {
                return Err(AlgebraError::EvalBudgetExceeded { budget });
            }
        }
        Ok(true)
    }

    /// The rows emitted so far (for iterative operators such as `tc`).
    pub fn relation(&self) -> &Relation {
        &self.out
    }

    /// Consume the sink, yielding the emitted relation.
    pub fn into_relation(self) -> Relation {
        self.out
    }
}

/// Evaluates an operator over already-evaluated argument relations, emitting
/// output rows through a budgeted [`RowSink`]. Receives the argument
/// relations together with their arities.
pub type EvalFn =
    Arc<dyn Fn(&[Relation], &[usize], &mut RowSink<'_>) -> Result<(), AlgebraError> + Send + Sync>;

/// Definition of one user-defined operator.
#[derive(Clone)]
pub struct OperatorDef {
    /// Operator name as used in expressions and the textual format.
    pub name: String,
    /// Number of expression arguments the operator takes.
    pub param_count: usize,
    /// Output arity as a function of argument arities.
    pub arity: ArityFn,
    /// Optional evaluator; operators without one can still flow through the
    /// composition algorithm (which tolerates unknown operators) but cannot
    /// be evaluated on instances.
    pub eval: Option<EvalFn>,
}

impl fmt::Debug for OperatorDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperatorDef")
            .field("name", &self.name)
            .field("param_count", &self.param_count)
            .field("has_eval", &self.eval.is_some())
            .finish()
    }
}

impl OperatorDef {
    /// Create an operator definition with the given arity function.
    pub fn new(
        name: impl Into<String>,
        param_count: usize,
        arity: impl Fn(&[usize]) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        OperatorDef { name: name.into(), param_count, arity: Arc::new(arity), eval: None }
    }

    /// Attach an evaluator that emits rows through a budgeted [`RowSink`].
    pub fn with_eval(
        mut self,
        eval: impl Fn(&[Relation], &[usize], &mut RowSink<'_>) -> Result<(), AlgebraError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.eval = Some(Arc::new(eval));
        self
    }

    /// Attach an evaluator given as a plain `relations -> relation` function.
    /// The output is routed through the sink after the fact, so budget
    /// overshoot is only detected post-materialisation — prefer
    /// [`OperatorDef::with_eval`] for operators whose output can be large.
    pub fn with_simple_eval(
        self,
        eval: impl Fn(&[Relation], &[usize]) -> Relation + Send + Sync + 'static,
    ) -> Self {
        self.with_eval(move |rels, arities, sink| {
            for tuple in eval(rels, arities) {
                sink.push(tuple)?;
            }
            Ok(())
        })
    }
}

/// A set of user-defined operators, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct OperatorSet {
    ops: BTreeMap<String, OperatorDef>,
}

impl OperatorSet {
    /// The empty operator set (only the six basic operators are available).
    pub fn new() -> Self {
        OperatorSet::default()
    }

    /// Register an operator. Replaces any previous definition of the same
    /// name.
    pub fn register(&mut self, def: OperatorDef) -> &mut Self {
        self.ops.insert(def.name.clone(), def);
        self
    }

    /// Look up an operator definition.
    pub fn get(&self, name: &str) -> Option<&OperatorDef> {
        self.ops.get(name)
    }

    /// Is the operator registered?
    pub fn contains(&self, name: &str) -> bool {
        self.ops.contains_key(name)
    }

    /// Names of all registered operators, sorted.
    pub fn names(&self) -> Vec<String> {
        self.ops.keys().cloned().collect()
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Output arity of `name` for the given argument arities.
    pub fn arity(&self, name: &str, args: &[usize]) -> Result<usize, AlgebraError> {
        let def =
            self.ops.get(name).ok_or_else(|| AlgebraError::UnknownOperator(name.to_string()))?;
        if def.param_count != args.len() {
            return Err(AlgebraError::OperatorArity { op: name.to_string(), args: args.to_vec() });
        }
        (def.arity)(args).ok_or_else(|| AlgebraError::OperatorArity {
            op: name.to_string(),
            args: args.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;
    use std::collections::BTreeSet;

    #[test]
    fn register_and_type_operator() {
        let mut ops = OperatorSet::new();
        ops.register(OperatorDef::new("tc", 1, |args| (args == [2]).then_some(2)));
        assert!(ops.contains("tc"));
        assert_eq!(ops.arity("tc", &[2]).unwrap(), 2);
        assert!(ops.arity("tc", &[3]).is_err());
        assert!(ops.arity("tc", &[2, 2]).is_err());
        assert!(ops.arity("nope", &[2]).is_err());
    }

    #[test]
    fn operator_with_eval() {
        let mut ops = OperatorSet::new();
        ops.register(
            OperatorDef::new("first", 2, |args| args.first().copied())
                .with_simple_eval(|rels, _| rels.first().cloned().unwrap_or_default()),
        );
        let def = ops.get("first").unwrap();
        let rel: Relation = [tuple([1i64])].into_iter().collect::<BTreeSet<_>>().into();
        let mut sink = RowSink::unbudgeted();
        (def.eval.as_ref().unwrap())(&[rel.clone(), Relation::default()], &[1, 1], &mut sink)
            .unwrap();
        assert_eq!(sink.into_relation(), rel);
        assert_eq!(ops.names(), vec!["first".to_string()]);
        assert_eq!(ops.len(), 1);
        assert!(!ops.is_empty());
    }

    #[test]
    fn sink_charges_only_new_rows_and_stops_at_the_budget() {
        let used = Cell::new(0usize);
        let mut sink = RowSink::with_meter(&used, 2);
        assert!(sink.push(tuple([1i64])).unwrap());
        assert!(!sink.push(tuple([1i64])).unwrap(), "duplicate rows are free");
        assert!(sink.push(tuple([2i64])).unwrap());
        assert_eq!(used.get(), 2);
        assert!(matches!(
            sink.push(tuple([3i64])),
            Err(AlgebraError::EvalBudgetExceeded { budget: 2 })
        ));
        assert_eq!(sink.relation().len(), 3, "the overflowing row is still visible to the caller");
    }
}
