//! Relational-algebra expressions (unnamed perspective).
//!
//! Paper §2 defines expressions over the six basic operators ∪, ∩, ×, −, π,
//! σ, plus two special relations: the active domain `D` and the empty
//! relation `∅`, the Skolem pseudo-operator used internally by
//! right-normalization, and user-defined operators. Attributes are referenced
//! by 0-based index.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::AlgebraError;
use crate::ops::OperatorSet;
use crate::pred::Pred;
use crate::signature::Signature;

/// A Skolem function symbol: a name plus the positions of the operand that
/// the function depends on (paper §2 and §3.5.3: `f_I(E)` has arity
/// `arity(E) + 1`, the extra column being `f` applied to the columns in `I`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SkolemFn {
    /// Function name (unique per introduction site).
    pub name: String,
    /// Operand positions the function depends on.
    pub deps: Vec<usize>,
}

impl SkolemFn {
    /// Create a Skolem function symbol.
    pub fn new(name: impl Into<String>, deps: Vec<usize>) -> Self {
        SkolemFn { name: name.into(), deps }
    }
}

impl fmt::Display for SkolemFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.name)?;
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// A relational-algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A base relation symbol.
    Rel(String),
    /// `D^r`: the r-fold cross product of the active domain (paper §2). The
    /// arity `r` is at least 1.
    Domain(usize),
    /// `∅` of the given arity.
    Empty(usize),
    /// Set union `E1 ∪ E2` (operands must have equal arity).
    Union(Box<Expr>, Box<Expr>),
    /// Set intersection `E1 ∩ E2`.
    Intersect(Box<Expr>, Box<Expr>),
    /// Cross product `E1 × E2` (arity is the sum of operand arities).
    Product(Box<Expr>, Box<Expr>),
    /// Set difference `E1 − E2`.
    Difference(Box<Expr>, Box<Expr>),
    /// Projection `π_I(E)` onto the listed positions (duplicates allowed, so
    /// projection subsumes column permutation and duplication).
    Project(Vec<usize>, Box<Expr>),
    /// Selection `σ_c(E)`.
    Select(Pred, Box<Expr>),
    /// Skolem pseudo-operator `f_I(E)`: appends one column holding
    /// `f(columns I of E)`. Only valid between right-normalization and
    /// deskolemization.
    Skolem(SkolemFn, Box<Expr>),
    /// A user-defined operator applied to argument expressions.
    Apply(String, Vec<Expr>),
}

impl Expr {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Base relation reference.
    pub fn rel(name: impl Into<String>) -> Expr {
        Expr::Rel(name.into())
    }

    /// `D^r`.
    pub fn domain(arity: usize) -> Expr {
        Expr::Domain(arity)
    }

    /// `∅` of the given arity.
    pub fn empty(arity: usize) -> Expr {
        Expr::Empty(arity)
    }

    /// `self ∪ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self × other`.
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference(Box::new(self), Box::new(other))
    }

    /// `π_I(self)`.
    pub fn project(self, positions: Vec<usize>) -> Expr {
        Expr::Project(positions, Box::new(self))
    }

    /// `σ_c(self)`.
    pub fn select(self, pred: Pred) -> Expr {
        Expr::Select(pred, Box::new(self))
    }

    /// `f_I(self)`.
    pub fn skolem(self, f: SkolemFn) -> Expr {
        Expr::Skolem(f, Box::new(self))
    }

    /// User-defined operator application.
    pub fn apply(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Apply(name.into(), args)
    }

    /// Natural-join style equi-join, derived from ×, σ and π as the paper
    /// suggests (§2 views ⋈ as a derived operator). `on` pairs `(l, r)` equate
    /// column `l` of `self` with column `r` of `other`; the right-hand join
    /// columns are projected away.
    pub fn join_on(
        self,
        other: Expr,
        on: &[(usize, usize)],
        left_arity: usize,
        right_arity: usize,
    ) -> Expr {
        let pred = Pred::and_all(on.iter().map(|(l, r)| Pred::eq_cols(*l, left_arity + *r)));
        let dropped: BTreeSet<usize> = on.iter().map(|(_, r)| left_arity + *r).collect();
        let keep: Vec<usize> =
            (0..left_arity + right_arity).filter(|i| !dropped.contains(i)).collect();
        self.product(other).select(pred).project(keep)
    }

    // ------------------------------------------------------------------
    // Typing
    // ------------------------------------------------------------------

    /// Compute (and validate) the arity of the expression against a
    /// signature and operator set.
    pub fn arity(&self, sig: &Signature, ops: &OperatorSet) -> Result<usize, AlgebraError> {
        match self {
            Expr::Rel(name) => sig.arity(name),
            Expr::Domain(r) | Expr::Empty(r) => Ok(*r),
            Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Difference(a, b) => {
                let left = a.arity(sig, ops)?;
                let right = b.arity(sig, ops)?;
                if left != right {
                    return Err(AlgebraError::BinaryArityMismatch {
                        op: self.operator_name(),
                        left,
                        right,
                    });
                }
                Ok(left)
            }
            Expr::Product(a, b) => Ok(a.arity(sig, ops)? + b.arity(sig, ops)?),
            Expr::Project(cols, inner) => {
                let arity = inner.arity(sig, ops)?;
                for &c in cols {
                    if c >= arity {
                        return Err(AlgebraError::ColumnOutOfRange { column: c, arity });
                    }
                }
                Ok(cols.len())
            }
            Expr::Select(pred, inner) => {
                let arity = inner.arity(sig, ops)?;
                if let Some(max) = pred.max_column() {
                    if max >= arity {
                        return Err(AlgebraError::ColumnOutOfRange { column: max, arity });
                    }
                }
                Ok(arity)
            }
            Expr::Skolem(f, inner) => {
                let arity = inner.arity(sig, ops)?;
                for &d in &f.deps {
                    if d >= arity {
                        return Err(AlgebraError::ColumnOutOfRange { column: d, arity });
                    }
                }
                Ok(arity + 1)
            }
            Expr::Apply(name, args) => {
                let arities =
                    args.iter().map(|arg| arg.arity(sig, ops)).collect::<Result<Vec<_>, _>>()?;
                ops.arity(name, &arities)
            }
        }
    }

    /// Short operator name used in error messages.
    pub fn operator_name(&self) -> &'static str {
        match self {
            Expr::Rel(_) => "relation",
            Expr::Domain(_) => "domain",
            Expr::Empty(_) => "empty",
            Expr::Union(..) => "union",
            Expr::Intersect(..) => "intersect",
            Expr::Product(..) => "product",
            Expr::Difference(..) => "difference",
            Expr::Project(..) => "project",
            Expr::Select(..) => "select",
            Expr::Skolem(..) => "skolem",
            Expr::Apply(..) => "apply",
        }
    }

    // ------------------------------------------------------------------
    // Structural queries
    // ------------------------------------------------------------------

    /// Immediate sub-expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => vec![],
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Product(a, b)
            | Expr::Difference(a, b) => vec![a, b],
            Expr::Project(_, inner) | Expr::Select(_, inner) | Expr::Skolem(_, inner) => {
                vec![inner]
            }
            Expr::Apply(_, args) => args.iter().collect(),
        }
    }

    /// All base relation symbols mentioned.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        if let Expr::Rel(name) = self {
            out.insert(name.clone());
        }
        for child in self.children() {
            child.collect_relations(out);
        }
    }

    /// Does the expression mention the relation symbol `name`?
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Expr::Rel(r) => r == name,
            _ => self.children().iter().any(|c| c.mentions(name)),
        }
    }

    /// Number of occurrences of the relation symbol `name`.
    pub fn occurrences(&self, name: &str) -> usize {
        match self {
            Expr::Rel(r) => usize::from(r == name),
            _ => self.children().iter().map(|c| c.occurrences(name)).sum(),
        }
    }

    /// Does the expression contain any Skolem pseudo-operator?
    pub fn has_skolem(&self) -> bool {
        matches!(self, Expr::Skolem(..)) || self.children().iter().any(|c| c.has_skolem())
    }

    /// Names of all Skolem functions appearing in the expression.
    pub fn skolem_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_skolems(&mut out);
        out
    }

    fn collect_skolems(&self, out: &mut BTreeSet<String>) {
        if let Expr::Skolem(f, _) = self {
            out.insert(f.name.clone());
        }
        for child in self.children() {
            child.collect_skolems(out);
        }
    }

    /// Does the expression mention the active-domain relation `D`?
    pub fn mentions_domain(&self) -> bool {
        matches!(self, Expr::Domain(_)) || self.children().iter().any(|c| c.mentions_domain())
    }

    /// Does the expression mention the empty relation `∅`?
    pub fn mentions_empty(&self) -> bool {
        matches!(self, Expr::Empty(_)) || self.children().iter().any(|c| c.mentions_empty())
    }

    /// Does the expression mention any user-defined operator?
    pub fn user_operators(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_user_ops(&mut out);
        out
    }

    fn collect_user_ops(&self, out: &mut BTreeSet<String>) {
        if let Expr::Apply(name, _) = self {
            out.insert(name.clone());
        }
        for child in self.children() {
            child.collect_user_ops(out);
        }
    }

    /// Number of operator nodes in the expression. This is the size measure
    /// used by the paper's blow-up abort and mapping-size statistics (§4.2:
    /// "The size of mappings is measured as the total number of operators
    /// across all constraints"). Base relation references count 1; selection
    /// predicates contribute their comparison atoms.
    pub fn op_count(&self) -> usize {
        let own = match self {
            Expr::Select(pred, _) => 1 + pred.atom_count(),
            _ => 1,
        };
        own + self.children().iter().map(|c| c.op_count()).sum::<usize>()
    }

    /// Nesting depth of the expression tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Substitution
    // ------------------------------------------------------------------

    /// Replace every occurrence of the relation symbol `name` with
    /// `replacement` (view unfolding and the left/right compose substitution
    /// step).
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Rel(r) if r == name => replacement.clone(),
            Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => self.clone(),
            Expr::Union(a, b) => Expr::Union(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Intersect(a, b) => Expr::Intersect(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Product(a, b) => Expr::Product(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Difference(a, b) => Expr::Difference(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Project(cols, inner) => {
                Expr::Project(cols.clone(), Box::new(inner.substitute(name, replacement)))
            }
            Expr::Select(pred, inner) => {
                Expr::Select(pred.clone(), Box::new(inner.substitute(name, replacement)))
            }
            Expr::Skolem(f, inner) => {
                Expr::Skolem(f.clone(), Box::new(inner.substitute(name, replacement)))
            }
            Expr::Apply(op, args) => Expr::Apply(
                op.clone(),
                args.iter().map(|arg| arg.substitute(name, replacement)).collect(),
            ),
        }
    }

    /// Rename a base relation symbol throughout the expression.
    pub fn rename(&self, from: &str, to: &str) -> Expr {
        self.substitute(from, &Expr::rel(to))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Rel(name) => write!(f, "{name}"),
            Expr::Domain(r) => write!(f, "D^{r}"),
            Expr::Empty(r) => write!(f, "empty^{r}"),
            Expr::Union(a, b) => write!(f, "union({a}, {b})"),
            Expr::Intersect(a, b) => write!(f, "intersect({a}, {b})"),
            Expr::Product(a, b) => write!(f, "product({a}, {b})"),
            Expr::Difference(a, b) => write!(f, "diff({a}, {b})"),
            Expr::Project(cols, inner) => {
                write!(f, "project[")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({inner})")
            }
            Expr::Select(pred, inner) => write!(f, "select[{pred}]({inner})"),
            Expr::Skolem(fun, inner) => write!(f, "skolem:{fun}({inner})"),
            Expr::Apply(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        Signature::from_arities([("R", 2), ("S", 2), ("T", 3)])
    }

    #[test]
    fn arity_of_basic_operators() {
        let ops = OperatorSet::new();
        let s = sig();
        assert_eq!(Expr::rel("R").arity(&s, &ops).unwrap(), 2);
        assert_eq!(Expr::rel("R").union(Expr::rel("S")).arity(&s, &ops).unwrap(), 2);
        assert_eq!(Expr::rel("R").product(Expr::rel("T")).arity(&s, &ops).unwrap(), 5);
        assert_eq!(Expr::rel("T").project(vec![0, 2]).arity(&s, &ops).unwrap(), 2);
        assert_eq!(Expr::rel("T").select(Pred::eq_cols(0, 2)).arity(&s, &ops).unwrap(), 3);
        assert_eq!(Expr::domain(4).arity(&s, &ops).unwrap(), 4);
        assert_eq!(Expr::empty(2).arity(&s, &ops).unwrap(), 2);
        assert_eq!(Expr::rel("R").skolem(SkolemFn::new("f", vec![0])).arity(&s, &ops).unwrap(), 3);
    }

    #[test]
    fn arity_errors() {
        let ops = OperatorSet::new();
        let s = sig();
        assert!(Expr::rel("R").union(Expr::rel("T")).arity(&s, &ops).is_err());
        assert!(Expr::rel("R").project(vec![5]).arity(&s, &ops).is_err());
        assert!(Expr::rel("R").select(Pred::eq_cols(0, 7)).arity(&s, &ops).is_err());
        assert!(Expr::rel("Missing").arity(&s, &ops).is_err());
        assert!(Expr::rel("R").skolem(SkolemFn::new("f", vec![9])).arity(&s, &ops).is_err());
        assert!(Expr::apply("unknown", vec![Expr::rel("R")]).arity(&s, &ops).is_err());
    }

    #[test]
    fn join_on_builds_product_select_project() {
        let ops = OperatorSet::new();
        let s = sig();
        // R(a,b) join S(a,c) on first columns.
        let join = Expr::rel("R").join_on(Expr::rel("S"), &[(0, 0)], 2, 2);
        assert_eq!(join.arity(&s, &ops).unwrap(), 3);
        assert!(matches!(join, Expr::Project(..)));
    }

    #[test]
    fn structural_queries() {
        let e =
            Expr::rel("R").difference(Expr::rel("S")).select(Pred::eq_const(0, 5)).project(vec![0]);
        assert_eq!(e.relations().into_iter().collect::<Vec<_>>(), vec!["R", "S"]);
        assert!(e.mentions("R"));
        assert!(!e.mentions("T"));
        assert_eq!(e.occurrences("R"), 1);
        assert_eq!(e.op_count(), 1 + 1 + 1 + 1 + 1 + 1); // project, select+atom, diff, R, S
        assert_eq!(e.depth(), 4);
        assert!(!e.has_skolem());
        assert!(e.user_operators().is_empty());
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let e = Expr::rel("S").union(Expr::rel("S").product(Expr::rel("R")));
        let replaced = e.substitute("S", &Expr::rel("T").project(vec![0, 1]));
        assert_eq!(replaced.occurrences("S"), 0);
        assert_eq!(replaced.occurrences("T"), 2);
        assert_eq!(replaced.occurrences("R"), 1);
    }

    #[test]
    fn skolem_queries() {
        let e = Expr::rel("R").skolem(SkolemFn::new("f", vec![0, 1])).project(vec![0, 2]);
        assert!(e.has_skolem());
        assert_eq!(e.skolem_names().into_iter().collect::<Vec<_>>(), vec!["f"]);
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::rel("R").select(Pred::eq_const(1, 5)).project(vec![0]);
        assert_eq!(e.to_string(), "project[0](select[#1 = 5](R))");
        let d = Expr::domain(2).intersect(Expr::empty(2));
        assert_eq!(d.to_string(), "intersect(D^2, empty^2)");
        let sk = Expr::rel("R").skolem(SkolemFn::new("f", vec![0]));
        assert_eq!(sk.to_string(), "skolem:f[0](R)");
    }

    #[test]
    fn mentions_domain_and_empty() {
        let e = Expr::rel("R").union(Expr::domain(2));
        assert!(e.mentions_domain());
        assert!(!e.mentions_empty());
        let e2 = Expr::empty(2).difference(Expr::rel("R"));
        assert!(e2.mentions_empty());
    }
}
