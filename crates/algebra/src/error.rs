//! Error types shared by the algebra substrate.

use std::fmt;

/// Errors arising while building, typing, or evaluating algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A relation symbol was referenced that is not in the signature.
    UnknownRelation(String),
    /// A user-defined operator was referenced that is not registered.
    UnknownOperator(String),
    /// Two occurrences of a relation disagree on arity.
    ArityMismatch {
        /// Relation (or operator) name.
        relation: String,
        /// Arity expected from the signature or from the other operand.
        expected: usize,
        /// Arity actually found.
        found: usize,
    },
    /// A projection, selection, or Skolem function referenced a column index
    /// outside the arity of its operand.
    ColumnOutOfRange {
        /// Offending column index.
        column: usize,
        /// Arity of the operand expression.
        arity: usize,
    },
    /// Binary set operators (∪, ∩, −) require both operands to have the same
    /// arity.
    BinaryArityMismatch {
        /// Operator symbol for the message.
        op: &'static str,
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A user-defined operator rejected its argument arities.
    OperatorArity {
        /// Operator name.
        op: String,
        /// Argument arities supplied.
        args: Vec<usize>,
    },
    /// An expression containing a Skolem function was evaluated. Skolem
    /// functions are a purely syntactic device (paper §2) and have no
    /// first-order semantics of their own.
    SkolemNotEvaluable(String),
    /// A user-defined operator without an evaluator was evaluated.
    OperatorNotEvaluable(String),
    /// An evaluation exceeded its tuple budget (see `Evaluator::with_budget`).
    /// Active-domain powers and products can be combinatorially large; the
    /// budget lets callers such as the chase engine skip such work instead of
    /// exhausting memory.
    EvalBudgetExceeded {
        /// The budget that was exceeded, in materialised tuples.
        budget: usize,
    },
    /// Parse error in the textual task format.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownRelation(name) => write!(f, "unknown relation symbol `{name}`"),
            AlgebraError::UnknownOperator(name) => write!(f, "unknown operator `{name}`"),
            AlgebraError::ArityMismatch { relation, expected, found } => {
                write!(f, "arity mismatch for `{relation}`: expected {expected}, found {found}")
            }
            AlgebraError::ColumnOutOfRange { column, arity } => {
                write!(f, "column index {column} out of range for arity {arity}")
            }
            AlgebraError::BinaryArityMismatch { op, left, right } => {
                write!(f, "operands of `{op}` must have equal arity, got {left} and {right}")
            }
            AlgebraError::OperatorArity { op, args } => {
                write!(f, "operator `{op}` cannot be applied to arities {args:?}")
            }
            AlgebraError::SkolemNotEvaluable(name) => {
                write!(f, "expression contains Skolem function `{name}` and cannot be evaluated")
            }
            AlgebraError::OperatorNotEvaluable(name) => {
                write!(f, "operator `{name}` has no evaluator")
            }
            AlgebraError::EvalBudgetExceeded { budget } => {
                write!(f, "evaluation exceeded the budget of {budget} tuples")
            }
            AlgebraError::Parse { line, column, message } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_payload() {
        let err = AlgebraError::UnknownRelation("R".into());
        assert!(err.to_string().contains("`R`"));
        let err = AlgebraError::BinaryArityMismatch { op: "union", left: 2, right: 3 };
        assert!(err.to_string().contains("union"));
        assert!(err.to_string().contains('2'));
        let err = AlgebraError::Parse { line: 3, column: 7, message: "expected `;`".into() };
        assert!(err.to_string().contains("3:7"));
    }
}
