//! Values and tuples.
//!
//! The paper works with abstract relational instances; for evaluation and
//! model-based checking we need concrete values. Values are either integers
//! or strings (constants in selection predicates and in the `D` (add default)
//! schema-evolution primitive are drawn from a small constant pool), plus an
//! explicit `Null` used when exercising the paper's remark that the algorithm
//! "can handle nulls ... in many cases".

use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// Ordering is total (`Null < Int < Str`) so that relations can be stored in
/// ordered sets and all algorithm output is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL-style null marker. Only produced by user-defined operators such as
    /// the left outer join registered by the composition crate.
    Null,
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True if this value is the null marker.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order values of different variants.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A tuple is a fixed-arity sequence of values.
pub type Tuple = Vec<Value>;

/// Build a tuple from anything convertible to values.
///
/// ```
/// use mapcomp_algebra::value::{tuple, Value};
/// assert_eq!(tuple([1, 2]), vec![Value::Int(1), Value::Int(2)]);
/// ```
pub fn tuple<I, V>(items: I) -> Tuple
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    items.into_iter().map(Into::into).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_by_rank() {
        assert!(Value::Null < Value::Int(-5));
        assert!(Value::Int(100) < Value::Str(String::new()));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn display_round_trips_shape() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("movie").to_string(), "'movie'");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn tuple_builder_converts() {
        let t = tuple(["a", "b"]);
        assert_eq!(t, vec![Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from("x".to_string()), Value::str("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }
}
