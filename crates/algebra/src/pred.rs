//! Selection predicates.
//!
//! Paper §2: the selection operator `σ_c(E)` takes "an arbitrary boolean
//! formula on attributes (identified by index) and constants". Predicates are
//! boolean combinations of comparisons between columns and constants.

use std::collections::BTreeSet;
use std::fmt;

use crate::value::{Tuple, Value};

/// One side of a comparison: a column (by index) or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// Attribute at the given 0-based position.
    Col(usize),
    /// Constant value.
    Const(Value),
}

impl Operand {
    fn eval<'a>(&'a self, tuple: &'a Tuple) -> Option<&'a Value> {
        match self {
            Operand::Col(i) => tuple.get(*i),
            Operand::Const(v) => Some(v),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(i) => write!(f, "#{i}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators usable in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison. Any comparison involving `Null` is false,
    /// mirroring SQL three-valued logic collapsed to two values.
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// Symbol used by the textual format.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Boolean selection formula over one tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison between two operands.
    Cmp(Operand, CmpOp, Operand),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `#left = #right`.
    pub fn eq_cols(left: usize, right: usize) -> Pred {
        Pred::Cmp(Operand::Col(left), CmpOp::Eq, Operand::Col(right))
    }

    /// `#col = constant`.
    pub fn eq_const(col: usize, value: impl Into<Value>) -> Pred {
        Pred::Cmp(Operand::Col(col), CmpOp::Eq, Operand::Const(value.into()))
    }

    /// Generic comparison.
    pub fn cmp(left: Operand, op: CmpOp, right: Operand) -> Pred {
        Pred::Cmp(left, op, right)
    }

    /// Conjunction of an iterator of predicates (`True` if empty).
    pub fn and_all<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        let mut iter = preds.into_iter();
        let first = match iter.next() {
            None => return Pred::True,
            Some(p) => p,
        };
        iter.fold(first, |acc, p| Pred::And(Box::new(acc), Box::new(p)))
    }

    /// Conjoin with another predicate, simplifying `True` away.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluate the predicate on a tuple. Out-of-range columns make the
    /// comparison false (the arity checker reports those statically).
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(left, op, right) => match (left.eval(tuple), right.eval(tuple)) {
                (Some(l), Some(r)) => op.apply(l, r),
                _ => false,
            },
            Pred::And(a, b) => a.eval(tuple) && b.eval(tuple),
            Pred::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            Pred::Not(a) => !a.eval(tuple),
        }
    }

    /// Largest column index referenced, if any.
    pub fn max_column(&self) -> Option<usize> {
        self.columns().into_iter().max()
    }

    /// All column indexes referenced.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut cols = BTreeSet::new();
        self.collect_columns(&mut cols);
        cols
    }

    fn collect_columns(&self, cols: &mut BTreeSet<usize>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(left, _, right) => {
                if let Operand::Col(i) = left {
                    cols.insert(*i);
                }
                if let Operand::Col(i) = right {
                    cols.insert(*i);
                }
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_columns(cols);
                b.collect_columns(cols);
            }
            Pred::Not(a) => a.collect_columns(cols),
        }
    }

    /// Rewrite every column index through `f` (used when an expression is
    /// re-based onto a wider cross product, e.g. during normalization and
    /// deskolemization).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Pred {
        let map_operand = |operand: &Operand| match operand {
            Operand::Col(i) => Operand::Col(f(*i)),
            Operand::Const(v) => Operand::Const(v.clone()),
        };
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(left, op, right) => Pred::Cmp(map_operand(left), *op, map_operand(right)),
            Pred::And(a, b) => Pred::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Pred::Or(a, b) => Pred::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Pred::Not(a) => Pred::Not(Box::new(a.map_columns(f))),
        }
    }

    /// Shift every column index by `offset`.
    pub fn shift_columns(&self, offset: usize) -> Pred {
        self.map_columns(&|i| i + offset)
    }

    /// Flatten a conjunction into its conjuncts (a single non-`And` predicate
    /// yields itself). Used by the conjunctive-form converter.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Pred>) {
        match self {
            Pred::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Number of atomic comparisons (used for expression-size accounting,
    /// paper §4.2 measures mapping size as total number of operators).
    pub fn atom_count(&self) -> usize {
        match self {
            Pred::True | Pred::False => 0,
            Pred::Cmp(..) => 1,
            Pred::And(a, b) | Pred::Or(a, b) => a.atom_count() + b.atom_count(),
            Pred::Not(a) => a.atom_count(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Cmp(left, op, right) => write!(f, "{left} {op} {right}"),
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(a) => write!(f, "not ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    #[test]
    fn comparisons_behave() {
        let t = tuple([1i64, 5, 5]);
        assert!(Pred::eq_cols(1, 2).eval(&t));
        assert!(!Pred::eq_cols(0, 1).eval(&t));
        assert!(Pred::eq_const(1, 5).eval(&t));
        assert!(Pred::cmp(Operand::Col(0), CmpOp::Lt, Operand::Col(1)).eval(&t));
        assert!(Pred::cmp(Operand::Col(1), CmpOp::Ge, Operand::Col(2)).eval(&t));
        assert!(!Pred::cmp(Operand::Col(1), CmpOp::Ne, Operand::Col(2)).eval(&t));
    }

    #[test]
    fn null_comparisons_are_false() {
        let t = vec![Value::Null, Value::Int(1)];
        assert!(!Pred::eq_cols(0, 0).eval(&t));
        assert!(!Pred::cmp(Operand::Col(0), CmpOp::Ne, Operand::Col(1)).eval(&t));
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple([1i64, 2]);
        let p = Pred::And(
            Box::new(Pred::eq_const(0, 1)),
            Box::new(Pred::Not(Box::new(Pred::eq_const(1, 3)))),
        );
        assert!(p.eval(&t));
        let q = Pred::Or(Box::new(Pred::False), Box::new(Pred::eq_const(1, 2)));
        assert!(q.eval(&t));
    }

    #[test]
    fn out_of_range_column_is_false() {
        let t = tuple([1i64]);
        assert!(!Pred::eq_cols(0, 5).eval(&t));
    }

    #[test]
    fn columns_and_shift() {
        let p = Pred::And(Box::new(Pred::eq_cols(0, 2)), Box::new(Pred::eq_const(4, 7)));
        assert_eq!(p.columns().into_iter().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(p.max_column(), Some(4));
        let shifted = p.shift_columns(3);
        assert_eq!(shifted.columns().into_iter().collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    fn and_all_and_simplifying_and() {
        assert_eq!(Pred::and_all([]), Pred::True);
        let p = Pred::True.and(Pred::eq_cols(0, 1));
        assert_eq!(p, Pred::eq_cols(0, 1));
        assert_eq!(Pred::False.and(Pred::eq_cols(0, 1)), Pred::False);
        let combined = Pred::and_all([Pred::eq_cols(0, 1), Pred::eq_cols(1, 2)]);
        assert_eq!(combined.conjuncts().len(), 2);
        assert_eq!(combined.atom_count(), 2);
    }

    #[test]
    fn display_shape() {
        let p = Pred::And(Box::new(Pred::eq_cols(0, 1)), Box::new(Pred::eq_const(2, 5)));
        assert_eq!(p.to_string(), "(#0 = #1 and #2 = 5)");
    }
}
