//! Plain-text syntax for composition tasks.
//!
//! Paper §4: "We designed a plain-text syntax for specifying mapping
//! composition tasks. Mapping constraints are encoded according to the
//! index-based algebraic notation introduced in Section 2. We built a parser
//! that takes as input a textual specification of a composition problem and
//! converts it into an internal algebraic representation."
//!
//! # Grammar
//!
//! ```text
//! document   := (schema | mapping)*
//! schema     := "schema" IDENT "{" (IDENT "/" INT [ "key" "(" ints ")" ] ";")* "}"
//! mapping    := "mapping" IDENT ":" IDENT "->" IDENT "{" (constraint ";")* "}"
//! constraint := expr ("<=" | "=") expr
//! expr       := diff  ( "+" diff )*            -- union (lowest precedence)
//! diff       := inter ( "-" inter )*           -- set difference
//! inter      := prod  ( "&" prod )*            -- intersection
//! prod       := primary ( "*" primary )*       -- cross product
//! primary    := "(" expr ")"
//!             | "project" "[" ints "]" "(" expr ")"
//!             | "select" "[" pred "]" "(" expr ")"
//!             | "skolem" ":" IDENT "[" ints "]" "(" expr ")"
//!             | "union" | "intersect" | "product" | "diff" -- functional forms
//!             | "D" [ "^" INT ]  |  "empty" "^" INT
//!             | IDENT "(" expr { "," expr } ")"            -- user operator
//!             | IDENT                                      -- base relation
//! pred       := conj ( "or" conj )*
//! conj       := atomp ( "and" atomp )*
//! atomp      := "not" atomp | "(" pred ")" | "true" | "false"
//!             | operand ("="|"!="|"<"|"<="|">"|">=") operand
//! operand    := "#" INT | INT | "-" INT | "'" chars "'"
//! ```
//!
//! `//` starts a line comment. The pretty-printer (`Display` on `Expr`,
//! `Constraint`, `ConstraintSet`) emits the functional forms, which this
//! parser accepts, so printing and re-parsing round-trips.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::{Constraint, ConstraintSet};
use crate::error::AlgebraError;
use crate::expr::{Expr, SkolemFn};
use crate::mapping::{CompositionTask, Mapping};
use crate::pred::{CmpOp, Operand, Pred};
use crate::signature::{RelInfo, Signature};
use crate::value::Value;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Slash,
    Caret,
    Hash,
    Plus,
    Minus,
    Star,
    Amp,
    Arrow,
    Eq,
    Ne,
    Le,
    Lt,
    Ge,
    Gt,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Hash => write!(f, "`#`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, AlgebraError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut column = 1usize;

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            out.push(Spanned { tok: $tok, line: $line, column: $col })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_line = line;
        let start_col = column;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '/' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            column = 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash, start_line, start_col);
                }
            }
            '\'' => {
                chars.next();
                column += 1;
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    column += 1;
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                        column = 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(AlgebraError::Parse {
                        line: start_line,
                        column: start_col,
                        message: "unterminated string literal".into(),
                    });
                }
                push!(Tok::Str(s), start_line, start_col);
            }
            c if c.is_ascii_digit() => {
                let mut value = 0i64;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        value = value * 10 + i64::from(digit);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(value), start_line, start_col);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(ident), start_line, start_col);
            }
            _ => {
                chars.next();
                column += 1;
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    ':' => Tok::Colon,
                    '^' => Tok::Caret,
                    '#' => Tok::Hash,
                    '+' => Tok::Plus,
                    '*' => Tok::Star,
                    '&' => Tok::Amp,
                    '=' => Tok::Eq,
                    '-' => {
                        if chars.peek() == Some(&'>') {
                            chars.next();
                            column += 1;
                            Tok::Arrow
                        } else {
                            Tok::Minus
                        }
                    }
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            column += 1;
                            Tok::Ne
                        } else {
                            return Err(AlgebraError::Parse {
                                line: start_line,
                                column: start_col,
                                message: "expected `!=`".into(),
                            });
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            column += 1;
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            column += 1;
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    other => {
                        return Err(AlgebraError::Parse {
                            line: start_line,
                            column: start_col,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                };
                push!(tok, start_line, start_col);
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line, column });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed document: named schemas and named mappings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Declared schemas by name.
    pub schemas: BTreeMap<String, Signature>,
    /// Declared mappings by name: (input schema name, output schema name, constraints).
    pub mappings: BTreeMap<String, (String, String, ConstraintSet)>,
}

impl Document {
    /// Look up a schema by name.
    pub fn schema(&self, name: &str) -> Result<&Signature, AlgebraError> {
        self.schemas.get(name).ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Materialize a named mapping.
    pub fn mapping(&self, name: &str) -> Result<Mapping, AlgebraError> {
        let (input, output, constraints) = self
            .mappings
            .get(name)
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))?;
        Ok(Mapping::new(
            self.schema(input)?.clone(),
            self.schema(output)?.clone(),
            constraints.clone(),
        ))
    }

    /// Build a composition task from two named mappings `m12` and `m23`.
    pub fn task(&self, m12: &str, m23: &str) -> Result<CompositionTask, AlgebraError> {
        let first = self.mapping(m12)?;
        let second = self.mapping(m23)?;
        CompositionTask::from_mappings(&first, &second)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Spanned {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, AlgebraError> {
        let here = self.peek();
        Err(AlgebraError::Parse { line: here.line, column: here.column, message: message.into() })
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), AlgebraError> {
        if &self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            self.error(format!("expected {tok}, found {}", self.peek().tok))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.next();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, AlgebraError> {
        match self.peek().tok.clone() {
            Tok::Ident(name) => {
                self.next();
                Ok(name)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    fn integer(&mut self) -> Result<i64, AlgebraError> {
        match self.peek().tok.clone() {
            Tok::Int(value) => {
                self.next();
                Ok(value)
            }
            other => self.error(format!("expected integer, found {other}")),
        }
    }

    fn usize_list(&mut self) -> Result<Vec<usize>, AlgebraError> {
        let mut out = Vec::new();
        if matches!(self.peek().tok, Tok::RBracket | Tok::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.integer()? as usize);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // -- documents ---------------------------------------------------------

    fn document(&mut self) -> Result<Document, AlgebraError> {
        let mut doc = Document::default();
        loop {
            match self.peek().tok.clone() {
                Tok::Eof => break,
                Tok::Ident(word) if word == "schema" => {
                    self.next();
                    let name = self.ident()?;
                    let sig = self.schema_body()?;
                    doc.schemas.insert(name, sig);
                }
                Tok::Ident(word) if word == "mapping" => {
                    self.next();
                    let name = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let input = self.ident()?;
                    self.expect(&Tok::Arrow)?;
                    let output = self.ident()?;
                    let constraints = self.constraint_block()?;
                    doc.mappings.insert(name, (input, output, constraints));
                }
                other => {
                    return self.error(format!("expected `schema` or `mapping`, found {other}"))
                }
            }
        }
        Ok(doc)
    }

    fn schema_body(&mut self) -> Result<Signature, AlgebraError> {
        self.expect(&Tok::LBrace)?;
        let mut sig = Signature::new();
        while !self.eat(&Tok::RBrace) {
            let name = self.ident()?;
            self.expect(&Tok::Slash)?;
            let arity = self.integer()? as usize;
            let mut info = RelInfo::new(arity);
            if let Tok::Ident(word) = self.peek().tok.clone() {
                if word == "key" {
                    self.next();
                    self.expect(&Tok::LParen)?;
                    let key = self.usize_list()?;
                    self.expect(&Tok::RParen)?;
                    info = RelInfo::with_key(arity, key);
                }
            }
            self.expect(&Tok::Semi)?;
            sig.add(name, info);
        }
        Ok(sig)
    }

    fn constraint_block(&mut self) -> Result<ConstraintSet, AlgebraError> {
        self.expect(&Tok::LBrace)?;
        let mut constraints = ConstraintSet::new();
        while !self.eat(&Tok::RBrace) {
            constraints.push(self.constraint()?);
            self.expect(&Tok::Semi)?;
        }
        Ok(constraints)
    }

    // -- constraints and expressions ----------------------------------------

    fn constraint(&mut self) -> Result<Constraint, AlgebraError> {
        let lhs = self.expr()?;
        match self.peek().tok.clone() {
            Tok::Le => {
                self.next();
                Ok(Constraint::containment(lhs, self.expr()?))
            }
            Tok::Eq => {
                self.next();
                Ok(Constraint::equality(lhs, self.expr()?))
            }
            other => self.error(format!("expected `<=` or `=`, found {other}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, AlgebraError> {
        let mut left = self.diff_expr()?;
        while self.eat(&Tok::Plus) {
            left = left.union(self.diff_expr()?);
        }
        Ok(left)
    }

    fn diff_expr(&mut self) -> Result<Expr, AlgebraError> {
        let mut left = self.intersect_expr()?;
        while self.eat(&Tok::Minus) {
            left = left.difference(self.intersect_expr()?);
        }
        Ok(left)
    }

    fn intersect_expr(&mut self) -> Result<Expr, AlgebraError> {
        let mut left = self.product_expr()?;
        while self.eat(&Tok::Amp) {
            left = left.intersect(self.product_expr()?);
        }
        Ok(left)
    }

    fn product_expr(&mut self) -> Result<Expr, AlgebraError> {
        let mut left = self.primary()?;
        while self.eat(&Tok::Star) {
            left = left.product(self.primary()?);
        }
        Ok(left)
    }

    fn two_args(&mut self) -> Result<(Expr, Expr), AlgebraError> {
        self.expect(&Tok::LParen)?;
        let a = self.expr()?;
        self.expect(&Tok::Comma)?;
        let b = self.expr()?;
        self.expect(&Tok::RParen)?;
        Ok((a, b))
    }

    fn primary(&mut self) -> Result<Expr, AlgebraError> {
        match self.peek().tok.clone() {
            Tok::LParen => {
                self.next();
                let inner = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(word) => {
                self.next();
                match word.as_str() {
                    "project" => {
                        self.expect(&Tok::LBracket)?;
                        let cols = self.usize_list()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::LParen)?;
                        let inner = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(inner.project(cols))
                    }
                    "select" => {
                        self.expect(&Tok::LBracket)?;
                        let pred = self.pred()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::LParen)?;
                        let inner = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(inner.select(pred))
                    }
                    "skolem" => {
                        self.expect(&Tok::Colon)?;
                        let name = self.ident()?;
                        self.expect(&Tok::LBracket)?;
                        let deps = self.usize_list()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::LParen)?;
                        let inner = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(inner.skolem(SkolemFn::new(name, deps)))
                    }
                    "union" if self.peek().tok == Tok::LParen => {
                        let (a, b) = self.two_args()?;
                        Ok(a.union(b))
                    }
                    "intersect" if self.peek().tok == Tok::LParen => {
                        let (a, b) = self.two_args()?;
                        Ok(a.intersect(b))
                    }
                    "product" if self.peek().tok == Tok::LParen => {
                        let (a, b) = self.two_args()?;
                        Ok(a.product(b))
                    }
                    "diff" if self.peek().tok == Tok::LParen => {
                        let (a, b) = self.two_args()?;
                        Ok(a.difference(b))
                    }
                    "D" => {
                        if self.eat(&Tok::Caret) {
                            Ok(Expr::domain(self.integer()? as usize))
                        } else {
                            Ok(Expr::domain(1))
                        }
                    }
                    "empty" => {
                        self.expect(&Tok::Caret)?;
                        Ok(Expr::empty(self.integer()? as usize))
                    }
                    _ => {
                        if self.peek().tok == Tok::LParen {
                            // User-defined operator application.
                            self.next();
                            let mut args = vec![self.expr()?];
                            while self.eat(&Tok::Comma) {
                                args.push(self.expr()?);
                            }
                            self.expect(&Tok::RParen)?;
                            Ok(Expr::apply(word, args))
                        } else {
                            Ok(Expr::rel(word))
                        }
                    }
                }
            }
            other => self.error(format!("expected expression, found {other}")),
        }
    }

    // -- predicates ----------------------------------------------------------

    fn pred(&mut self) -> Result<Pred, AlgebraError> {
        let mut left = self.conj()?;
        loop {
            match self.peek().tok.clone() {
                Tok::Ident(word) if word == "or" => {
                    self.next();
                    left = Pred::Or(Box::new(left), Box::new(self.conj()?));
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn conj(&mut self) -> Result<Pred, AlgebraError> {
        let mut left = self.atom_pred()?;
        loop {
            match self.peek().tok.clone() {
                Tok::Ident(word) if word == "and" => {
                    self.next();
                    left = Pred::And(Box::new(left), Box::new(self.atom_pred()?));
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn atom_pred(&mut self) -> Result<Pred, AlgebraError> {
        match self.peek().tok.clone() {
            Tok::Ident(word) if word == "not" => {
                self.next();
                Ok(Pred::Not(Box::new(self.atom_pred()?)))
            }
            Tok::Ident(word) if word == "true" => {
                self.next();
                Ok(Pred::True)
            }
            Tok::Ident(word) if word == "false" => {
                self.next();
                Ok(Pred::False)
            }
            Tok::LParen => {
                self.next();
                let inner = self.pred()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            _ => {
                let left = self.operand()?;
                let op = match self.next().tok {
                    Tok::Eq => CmpOp::Eq,
                    Tok::Ne => CmpOp::Ne,
                    Tok::Lt => CmpOp::Lt,
                    Tok::Le => CmpOp::Le,
                    Tok::Gt => CmpOp::Gt,
                    Tok::Ge => CmpOp::Ge,
                    other => {
                        return self.error(format!("expected comparison operator, found {other}"))
                    }
                };
                let right = self.operand()?;
                Ok(Pred::Cmp(left, op, right))
            }
        }
    }

    fn operand(&mut self) -> Result<Operand, AlgebraError> {
        match self.peek().tok.clone() {
            Tok::Hash => {
                self.next();
                Ok(Operand::Col(self.integer()? as usize))
            }
            Tok::Int(value) => {
                self.next();
                Ok(Operand::Const(Value::Int(value)))
            }
            Tok::Minus => {
                self.next();
                Ok(Operand::Const(Value::Int(-self.integer()?)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Operand::Const(Value::Str(s)))
            }
            Tok::Ident(word) if word == "null" => {
                self.next();
                Ok(Operand::Const(Value::Null))
            }
            other => self.error(format!("expected operand, found {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Parse a full document (schemas and mappings).
pub fn parse_document(input: &str) -> Result<Document, AlgebraError> {
    let mut parser = Parser::new(lex(input)?);
    let doc = parser.document()?;
    Ok(doc)
}

/// Parse a single expression.
pub fn parse_expr(input: &str) -> Result<Expr, AlgebraError> {
    let mut parser = Parser::new(lex(input)?);
    let expr = parser.expr()?;
    if parser.peek().tok != Tok::Eof {
        return parser.error(format!("unexpected trailing {}", parser.peek().tok));
    }
    Ok(expr)
}

/// Parse a single constraint (`E1 <= E2` or `E1 = E2`).
pub fn parse_constraint(input: &str) -> Result<Constraint, AlgebraError> {
    let mut parser = Parser::new(lex(input)?);
    let constraint = parser.constraint()?;
    if parser.peek().tok != Tok::Eof {
        return parser.error(format!("unexpected trailing {}", parser.peek().tok));
    }
    Ok(constraint)
}

/// Parse a semicolon-separated list of constraints.
pub fn parse_constraints(input: &str) -> Result<ConstraintSet, AlgebraError> {
    let mut parser = Parser::new(lex(input)?);
    let mut out = ConstraintSet::new();
    while parser.peek().tok != Tok::Eof {
        out.push(parser.constraint()?);
        if parser.peek().tok == Tok::Eof {
            break;
        }
        parser.expect(&Tok::Semi)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_expressions() {
        assert_eq!(parse_expr("R").unwrap(), Expr::rel("R"));
        assert_eq!(parse_expr("R + S").unwrap(), Expr::rel("R").union(Expr::rel("S")));
        assert_eq!(parse_expr("R - S").unwrap(), Expr::rel("R").difference(Expr::rel("S")));
        assert_eq!(parse_expr("R & S").unwrap(), Expr::rel("R").intersect(Expr::rel("S")));
        assert_eq!(parse_expr("R * S").unwrap(), Expr::rel("R").product(Expr::rel("S")));
        assert_eq!(parse_expr("D^3").unwrap(), Expr::domain(3));
        assert_eq!(parse_expr("D").unwrap(), Expr::domain(1));
        assert_eq!(parse_expr("empty^2").unwrap(), Expr::empty(2));
    }

    #[test]
    fn precedence_product_binds_tighter_than_union() {
        let parsed = parse_expr("R + S * T").unwrap();
        assert_eq!(parsed, Expr::rel("R").union(Expr::rel("S").product(Expr::rel("T"))));
        let parsed = parse_expr("(R + S) * T").unwrap();
        assert_eq!(parsed, Expr::rel("R").union(Expr::rel("S")).product(Expr::rel("T")));
        // difference binds tighter than union, looser than intersection
        let parsed = parse_expr("R - S & T").unwrap();
        assert_eq!(parsed, Expr::rel("R").difference(Expr::rel("S").intersect(Expr::rel("T"))));
    }

    #[test]
    fn parse_project_select_skolem() {
        let parsed = parse_expr("project[0,2](select[#1 = 5 and #0 != 'x'](R * S))").unwrap();
        match &parsed {
            Expr::Project(cols, inner) => {
                assert_eq!(cols, &vec![0, 2]);
                assert!(matches!(**inner, Expr::Select(..)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let parsed = parse_expr("skolem:f[0,1](R)").unwrap();
        assert_eq!(parsed, Expr::rel("R").skolem(SkolemFn::new("f", vec![0, 1])));
    }

    #[test]
    fn parse_functional_forms_and_user_ops() {
        assert_eq!(parse_expr("union(R, S)").unwrap(), Expr::rel("R").union(Expr::rel("S")));
        assert_eq!(
            parse_expr("diff(R, intersect(S, T))").unwrap(),
            Expr::rel("R").difference(Expr::rel("S").intersect(Expr::rel("T")))
        );
        assert_eq!(parse_expr("tc(S)").unwrap(), Expr::apply("tc", vec![Expr::rel("S")]));
        assert_eq!(
            parse_expr("ljoin(R, S)").unwrap(),
            Expr::apply("ljoin", vec![Expr::rel("R"), Expr::rel("S")])
        );
    }

    #[test]
    fn parse_constraints_list() {
        let set = parse_constraints("R <= S; S = T * U").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.as_slice()[0], Constraint::containment(Expr::rel("R"), Expr::rel("S")));
        assert!(set.as_slice()[1].is_equality());
    }

    #[test]
    fn display_parse_round_trip() {
        let sources = [
            "project[0,1](select[#3 = 5](Movies))",
            "union(R, intersect(S, T))",
            "diff(project[0](R), D^2)",
            "skolem:f[0](R)",
            "select[#0 = 'abc' or not (#1 < 3)](R)",
            "tc(union(R, S))",
        ];
        for source in sources {
            let parsed = parse_expr(source).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {source}: printed {printed}");
        }
    }

    #[test]
    fn parse_document_with_schemas_and_mappings() {
        let text = r"
            // Example 1 from the paper.
            schema sigma1 { Movies/6 key(0); }
            schema sigma2 { FiveStarMovies/3; }
            schema sigma3 { Names/2; Years/2; }
            mapping m12 : sigma1 -> sigma2 {
                project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
            }
            mapping m23 : sigma2 -> sigma3 {
                project[0,1](FiveStarMovies) <= Names;
                project[0,2](FiveStarMovies) <= Years;
            }
        ";
        let doc = parse_document(text).unwrap();
        assert_eq!(doc.schemas.len(), 3);
        assert_eq!(doc.mappings.len(), 2);
        assert_eq!(doc.schema("sigma1").unwrap().arity("Movies").unwrap(), 6);
        assert_eq!(doc.schema("sigma1").unwrap().key("Movies"), Some(&[0usize][..]));

        let m12 = doc.mapping("m12").unwrap();
        assert_eq!(m12.constraints.len(), 1);
        let task = doc.task("m12", "m23").unwrap();
        assert_eq!(task.elimination_order(), vec!["FiveStarMovies".to_string()]);
        assert_eq!(task.sigma3.len(), 2);
    }

    #[test]
    fn parse_errors_carry_location() {
        let err = parse_expr("project[0(R)").unwrap_err();
        assert!(matches!(err, AlgebraError::Parse { .. }));
        let err = parse_document("schema s { R/2 }").unwrap_err();
        match err {
            AlgebraError::Parse { message, .. } => assert!(message.contains("`;`")),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_expr("R +").is_err());
        assert!(parse_expr("select[#0 =](R)").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_constraint("R ! S").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_expr("R S").is_err());
        assert!(parse_constraint("R <= S extra").is_err());
    }

    #[test]
    fn negative_and_string_constants() {
        let parsed = parse_expr("select[#0 = -7 and #1 = 'five stars'](R)").unwrap();
        match parsed {
            Expr::Select(pred, _) => {
                let atoms = pred.conjuncts().len();
                assert_eq!(atoms, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
