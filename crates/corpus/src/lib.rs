//! # mapcomp-corpus
//!
//! The literature test corpus of *"Implementing Mapping Composition"*
//! (VLDB 2006), §4: "The first [data set] contains 22 composition problems
//! drawn from the recent literature [5, 7, 8], which illustrate subtle
//! composition issues. ... this data set serves as a test suite that can be
//! used for verifying implementations of composition."
//!
//! The authors' original downloadable problem files are no longer available,
//! so the 22 problems are re-encoded here, in this implementation's plain
//! text syntax, from the examples printed in the paper itself and in its
//! references (Fagin–Kolaitis–Popa–Tan \[5\], Melnik et al. \[7\], Nash et
//! al. \[8\]). Each problem records its provenance, the expected outcome, and a
//! note explaining what aspect of the algorithm it exercises.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mapcomp_algebra::{parse_document, AlgebraError, CompositionTask};
use mapcomp_compose::{compose, ComposeConfig, ComposeResult, Registry};

/// Expected outcome of composing one corpus problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// Every intermediate (σ2) symbol should be eliminated.
    Complete,
    /// Exactly the listed σ2 symbols should remain.
    Remaining(&'static [&'static str]),
    /// At least this many σ2 symbols should be eliminated (used where the
    /// outcome legitimately depends on heuristics such as deskolemization).
    AtLeast(usize),
}

/// One composition problem of the corpus.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Stable identifier (used by the benchmark harness).
    pub id: &'static str,
    /// Where the problem comes from.
    pub source: &'static str,
    /// What the problem exercises.
    pub notes: &'static str,
    /// The problem in the textual task format (schemas + mappings `m12`,
    /// `m23`).
    pub text: &'static str,
    /// Expected outcome.
    pub expectation: Expectation,
}

impl Problem {
    /// Parse the problem into a composition task.
    pub fn task(&self) -> Result<CompositionTask, AlgebraError> {
        parse_document(self.text)?.task("m12", "m23")
    }

    /// Compose the problem with the given registry and configuration.
    pub fn compose(
        &self,
        registry: &Registry,
        config: &ComposeConfig,
    ) -> Result<ComposeResult, AlgebraError> {
        compose(&self.task()?, registry, config)
    }

    /// Does a composition result meet the expectation?
    pub fn check(&self, result: &ComposeResult) -> bool {
        match &self.expectation {
            Expectation::Complete => result.is_complete(),
            Expectation::Remaining(symbols) => {
                let mut expected: Vec<&str> = symbols.to_vec();
                expected.sort_unstable();
                let mut actual: Vec<&str> = result.remaining.iter().map(String::as_str).collect();
                actual.sort_unstable();
                expected == actual
            }
            Expectation::AtLeast(count) => result.eliminated.len() >= *count,
        }
    }
}

/// The full corpus, in a stable order.
pub fn problems() -> Vec<Problem> {
    vec![
        Problem {
            id: "example1_movies",
            source: "VLDB'06 paper, Example 1",
            notes: "schema-editing motivation: select-project view split into two relations",
            text: r"
                schema sigma1 { Movies/6; }
                schema sigma2 { FiveStarMovies/3; }
                schema sigma3 { Names/2; Years/2; }
                mapping m12 : sigma1 -> sigma2 {
                    project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
                }
                mapping m23 : sigma2 -> sigma3 {
                    project[0,1](FiveStarMovies) <= Names;
                    project[0,2](FiveStarMovies) <= Years;
                }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example3_containment_chain",
            source: "VLDB'06 paper, Example 3",
            notes: "simplest non-trivial composition: R ⊆ S, S ⊆ T ≡ R ⊆ T",
            text: r"
                schema sigma1 { R/1; }
                schema sigma2 { S/1; }
                schema sigma3 { T/1; }
                mapping m12 : sigma1 -> sigma2 { R <= S; }
                mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example5_view_unfolding",
            source: "VLDB'06 paper, Example 5",
            notes: "defining equality with non-monotone downstream occurrences: only view unfolding applies",
            text: r"
                schema sigma1 { R1/1; R2/1; R3/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T1/1; T2/2; T3/2; }
                mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
                mapping m23 : sigma2 -> sigma3 {
                    project[0](R3 - S) <= T1;
                    T2 <= T3 - select[#0 = 1](S);
                }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example7_left_compose",
            source: "VLDB'06 paper, Examples 7 and 10",
            notes: "left compose succeeds where right compose is blocked by an anti-monotone lhs",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; U/2; }
                mapping m12 : sigma1 -> sigma2 { R - S <= T; }
                mapping m23 : sigma2 -> sigma3 { project[0,1](S) <= U; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example8_intersection_left",
            source: "VLDB'06 paper, Example 8",
            notes: "no left rule for ∩; the symbol is only bounded from above, so the empty lower bound applies",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; U/2; }
                mapping m12 : sigma1 -> sigma2 { R & S <= T; }
                mapping m23 : sigma2 -> sigma3 { project[0,1](S) <= U; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example9_trivial_bound",
            source: "VLDB'06 paper, Examples 9, 11 and 12",
            notes: "trivial upper bound S ⊆ D^r followed by domain elimination deletes every constraint",
            text: r"
                schema sigma1 { R/2; T/2; }
                schema sigma2 { S/2; }
                schema sigma3 { U/2; }
                mapping m12 : sigma1 -> sigma2 { R & T <= S; }
                mapping m23 : sigma2 -> sigma3 { U <= project[0,1](S); }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example13_right_compose",
            source: "VLDB'06 paper, Examples 13 and 15",
            notes: "right normalization splitting σ and ×, no Skolem functions needed",
            text: r"
                schema sigma1 { T/2; R/2; }
                schema sigma2 { S/1; }
                schema sigma3 { U/3; }
                mapping m12 : sigma1 -> sigma2 { T <= select[#0 = 5](S) * project[0](R); }
                mapping m23 : sigma2 -> sigma3 { S * T <= U; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example14_skolem_projection",
            source: "VLDB'06 paper, Examples 14 and 16",
            notes: "right normalization introduces a Skolem function that deskolemization must remove",
            text: r"
                schema sigma1 { R/1; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; U/2; }
                mapping m12 : sigma1 -> sigma2 { R <= project[0](S * (T & U)); }
                mapping m23 : sigma2 -> sigma3 { S <= select[#0 = #1](T); }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "example17_not_fo_expressible",
            source: "Fagin, Kolaitis, Popa, Tan (PODS'04), via VLDB'06 Example 17",
            notes: "F is eliminable but C is provably not eliminable by any means; deskolemization fails on the repeated function symbol",
            text: r"
                schema sigma1 { E/2; }
                schema sigma2 { F/2; C/2; }
                schema sigma3 { Dout/2; }
                mapping m12 : sigma1 -> sigma2 {
                    E <= F;
                    project[0](E) <= project[0](C);
                    project[1](E) <= project[0](C);
                }
                mapping m23 : sigma2 -> sigma3 {
                    project[3,5](select[#0 = #2 and #1 = #4](F * C * C)) <= Dout;
                }
            ",
            expectation: Expectation::Remaining(&["C"]),
        },
        Problem {
            id: "transitive_closure",
            source: "VLDB'06 paper, §1.3 (Theorem 1 of Nash et al. PODS'05)",
            notes: "recursively constrained symbol: S = tc(S) blocks every elimination step",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 { R <= S; S = tc(S); }
                mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
            expectation: Expectation::Remaining(&["S"]),
        },
        Problem {
            id: "order_dependent_pair",
            source: "VLDB'06 paper, §3.1 footnote",
            notes: "interdependent intermediate symbols: which ones go depends on the elimination order",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S1/2; S2/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 { R <= S1; S1 <= S2; S2 <= S1; }
                mapping m23 : sigma2 -> sigma3 { S1 <= T; }
            ",
            expectation: Expectation::AtLeast(1),
        },
        Problem {
            id: "fagin_emp_mgr",
            source: "Fagin, Kolaitis, Popa, Tan (PODS'04), employee/manager example",
            notes: "composition not expressible by finitely many s-t tgds; the algebraic output uses a conditional upper bound instead",
            text: r"
                schema sigma1 { Emp/1; }
                schema sigma2 { Mgr1/2; }
                schema sigma3 { Mgr/2; SelfMgr/1; }
                mapping m12 : sigma1 -> sigma2 { Emp <= project[0](Mgr1); }
                mapping m23 : sigma2 -> sigma3 {
                    Mgr1 <= Mgr;
                    project[0](select[#0 = #1](Mgr1)) <= SelfMgr;
                }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "nash_key_constraint",
            source: "Nash, Bernstein, Melnik (PODS'05), key-constraint example",
            notes: "key constraint written with the active-domain encoding of Example 2",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 {
                    R <= S;
                    project[1,3](select[#0 = #2](S * S)) <= select[#0 = #1](D^2);
                }
                mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "copy_chain_equalities",
            source: "Melnik, Bernstein, Halevy, Rahm (SIGMOD'05), copy mappings",
            notes: "chain of copy views composes by repeated view unfolding",
            text: r"
                schema sigma1 { R/3; }
                schema sigma2 { S/3; }
                schema sigma3 { T/3; }
                mapping m12 : sigma1 -> sigma2 { S = R; }
                mapping m23 : sigma2 -> sigma3 { T = S; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "glav_projection_chain",
            source: "Melnik et al. (SIGMOD'05), GLAV assertions",
            notes: "sound GLAV composition through an intermediate view with projections on both sides",
            text: r"
                schema sigma1 { R1/3; }
                schema sigma2 { S/2; }
                schema sigma3 { T1/3; }
                mapping m12 : sigma1 -> sigma2 { project[0,1](R1) <= S; }
                mapping m23 : sigma2 -> sigma3 { S <= project[0,2](T1); }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "union_of_sources",
            source: "Nash et al. (PODS'05), union view",
            notes: "union on the left of the intermediate symbol's defining constraint",
            text: r"
                schema sigma1 { R1/2; R2/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 { R1 + R2 <= S; }
                mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "outer_join_view",
            source: "Melnik et al. (SIGMOD'05), executable mappings with outer joins",
            notes: "left outer join as a user-defined operator; view unfolding handles it without monotonicity knowledge",
            text: r"
                schema sigma1 { R1/2; R2/2; }
                schema sigma2 { S/3; }
                schema sigma3 { T/3; }
                mapping m12 : sigma1 -> sigma2 { S = ljoin(R1, R2); }
                mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "antijoin_difference_view",
            source: "VLDB'06 paper, §1.3 (anti-semijoin coverage)",
            notes: "anti-semijoin and set difference exercising monotonicity in the first argument only",
            text: r"
                schema sigma1 { R1/2; R2/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; U/2; }
                mapping m12 : sigma1 -> sigma2 { S = antijoin(R1, R2); }
                mapping m23 : sigma2 -> sigma3 { project[0,1](S) <= T; S - U <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "horizontal_merge",
            source: "VLDB'06 paper, §4.1 (horizontal partitioning primitive)",
            notes: "backward horizontal partitioning: the intermediate symbol is a union of the sources",
            text: r"
                schema sigma1 { R1/2; R2/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 { S = R1 + R2; }
                mapping m23 : sigma2 -> sigma3 { select[#0 = 3](S) <= T; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "vertical_split_join",
            source: "VLDB'06 paper, §4.1 (vertical partitioning primitive)",
            notes: "the intermediate symbol is split into two projections downstream",
            text: r"
                schema sigma1 { R/3; }
                schema sigma2 { S/3; }
                schema sigma3 { P1/2; P2/2; }
                mapping m12 : sigma1 -> sigma2 { R <= S; }
                mapping m23 : sigma2 -> sigma3 {
                    project[0,1](S) <= P1;
                    project[0,2](S) <= P2;
                }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "self_product_view",
            source: "Nash et al. (PODS'05), self-join view",
            notes: "the intermediate symbol bounds a self cross product; substitution duplicates the bound",
            text: r"
                schema sigma1 { R/1; }
                schema sigma2 { S/2; }
                schema sigma3 { T/2; }
                mapping m12 : sigma1 -> sigma2 { S <= R * R; }
                mapping m23 : sigma2 -> sigma3 { T <= S; }
            ",
            expectation: Expectation::Complete,
        },
        Problem {
            id: "outer_join_downstream",
            source: "VLDB'06 paper, §1.3 (monotone operator coverage)",
            notes: "the intermediate symbol occurs as the monotone first argument of a left outer join downstream",
            text: r"
                schema sigma1 { R/2; }
                schema sigma2 { S/2; }
                schema sigma3 { T/3; U/2; }
                mapping m12 : sigma1 -> sigma2 { R <= S; }
                mapping m23 : sigma2 -> sigma3 { ljoin(S, U) <= T; }
            ",
            expectation: Expectation::Complete,
        },
    ]
}

/// Look up one problem by id.
pub fn problem(id: &str) -> Option<Problem> {
    problems().into_iter().find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_twenty_two_problems() {
        assert_eq!(problems().len(), 22);
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let all = problems();
        let mut ids: Vec<&str> = all.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert!(problem("example1_movies").is_some());
        assert!(problem("no_such_problem").is_none());
    }

    #[test]
    fn every_problem_parses_and_validates() {
        let registry = Registry::standard();
        for problem in problems() {
            let task = problem
                .task()
                .unwrap_or_else(|e| panic!("problem {} fails to parse: {e}", problem.id));
            task.validate(registry.operators())
                .unwrap_or_else(|e| panic!("problem {} fails to validate: {e}", problem.id));
            assert!(!task.sigma2.is_empty(), "problem {} has no symbols to eliminate", problem.id);
        }
    }

    #[test]
    fn every_problem_meets_its_expectation() {
        let registry = Registry::standard();
        let config = ComposeConfig::default();
        for problem in problems() {
            let result = problem.compose(&registry, &config).expect("composes");
            assert!(
                problem.check(&result),
                "problem {} expectation {:?} not met: eliminated {:?}, remaining {:?}\noutput:\n{}",
                problem.id,
                problem.expectation,
                result.eliminated,
                result.remaining,
                result.constraints
            );
            // The output must never mention an eliminated symbol.
            for constraint in result.constraints.iter() {
                for symbol in &result.eliminated {
                    assert!(!constraint.mentions(symbol));
                }
            }
        }
    }

    #[test]
    fn expectations_are_tight_for_complete_problems() {
        // For problems marked Complete, disabling all steps must make the
        // composition fail, proving the expectation is not vacuous.
        let registry = Registry::standard();
        let disabled = ComposeConfig {
            enable_view_unfolding: false,
            enable_left_compose: false,
            enable_right_compose: false,
            ..ComposeConfig::default()
        };
        for problem in problems() {
            if problem.expectation != Expectation::Complete {
                continue;
            }
            let result = problem.compose(&registry, &disabled).expect("composes");
            assert!(
                !result.is_complete(),
                "problem {} should need at least one elimination step",
                problem.id
            );
        }
    }
}
