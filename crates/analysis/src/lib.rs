//! # mapcomp-analysis
//!
//! Static analysis over conjunctive mappings and constraints: chase
//! termination proofs and a rule-level linter.
//!
//! The chase engine (`mapcomp_compose::exchange`) guards against
//! non-termination with runtime limits — a per-evaluation tuple budget, a
//! null cap, a round cap. Those are blunt: they reject legitimate long runs
//! and let pathological mappings burn the whole budget before failing. The
//! data-exchange literature solves the problem statically instead: build the
//! *position dependency graph* over `(relation, argument-position)` nodes,
//! classify edges as **regular** (a universally quantified value is copied
//! from a premise position into a conclusion position) or **existential**
//! (a premise value forces the invention of a labelled null at a conclusion
//! position), and check **weak acyclicity** — no cycle through an
//! existential edge. A weakly acyclic rule set chases to a fixpoint in time
//! polynomial in the source instance, so a proof licenses a concrete, safe
//! evaluation budget in place of the hardcoded default.
//!
//! * [`analyze_exchange`] — analyze the exact rule set the chase would run
//!   for `(constraints, full signature, target signature)`. Rule extraction
//!   mirrors `exchange()` constraint-for-constraint, so the verdict speaks
//!   about the rules that will actually fire.
//! * [`analyze_mapping`] — convenience wrapper for a catalog
//!   [`Mapping`] (target = output signature).
//! * [`Termination::Proven`] carries a [`PolynomialBound`] from which
//!   [`PolynomialBound::eval_budget`] derives a safe per-evaluation budget
//!   for a given source domain size; [`Termination::Unknown`] carries the
//!   offending existential cycle rendered as a diagnostic.
//! * [`lint`] — stable diagnostic codes (styled after the wire error-code
//!   table) for rule-level smells: unbound head variables, unused premise
//!   variables, cartesian-product joins, duplicate/shadowed rules, arity
//!   mismatches across composed signatures.
//!
//! All output is deterministic: diagnostics are sorted by
//! `(rule index, code, position)` and every collection is ordered, so
//! repeated runs render byte-identical text (asserted by
//! `tests/docs_examples.rs` against `docs/ANALYSIS.md`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bound;
pub mod graph;
pub mod lint;
pub mod rules;

use mapcomp_algebra::{Constraint, Instance, Mapping, Signature};
use mapcomp_compose::exchange::TerminationVerdict;
use mapcomp_compose::ExchangeConfig;

pub use bound::PolynomialBound;
pub use graph::{CycleWitness, DepGraph, Position};
pub use lint::{Diagnostic, LintCode};
pub use rules::{extract_rules, AnalyzedRule, RuleSet};

/// The termination verdict of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// The rule set is weakly acyclic: the chase terminates on every source
    /// instance, within the carried polynomial bound.
    Proven {
        /// The bound parameters, from which concrete budgets are derived.
        bound: PolynomialBound,
    },
    /// Termination could not be proven.
    Unknown {
        /// The offending cycle through an existential edge, when the
        /// analysis ran and found one (`None` when the rule set could not
        /// be analyzed at all, e.g. conflicting signatures).
        cycle_witness: Option<CycleWitness>,
        /// Human-readable reason.
        reason: String,
    },
}

impl Termination {
    /// One-line, byte-stable rendering of the verdict (the "verdict
    /// grammar" of `docs/ANALYSIS.md`).
    pub fn summary(&self) -> String {
        match self {
            Termination::Proven { bound } => bound.summary(),
            Termination::Unknown { cycle_witness: Some(cycle), .. } => {
                format!("unknown cycle: {cycle}")
            }
            Termination::Unknown { cycle_witness: None, reason } => {
                format!("unknown reason: {reason}")
            }
        }
    }
}

/// The full output of one analysis run: verdict, sorted diagnostics, and the
/// constraints the chase would skip (with the chase's own reasons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Chase-termination verdict.
    pub termination: Termination,
    /// Lint diagnostics, sorted by `(rule index, code, position)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of chase rules analyzed.
    pub rules: usize,
    /// Constraints the chase would skip, with the reason — exactly the
    /// `skipped` entries `exchange()` would report before round one.
    pub skipped: Vec<(Constraint, String)>,
}

impl AnalysisReport {
    /// Is termination proven?
    pub fn proven(&self) -> bool {
        matches!(self.termination, Termination::Proven { .. })
    }

    /// Multi-line, byte-stable rendering: the verdict line, one line per
    /// diagnostic, one line per chase-skipped constraint.
    pub fn render(&self) -> String {
        let mut out = format!("termination: {}\n", self.termination.summary());
        for diagnostic in &self.diagnostics {
            out.push_str(&format!("{diagnostic}\n"));
        }
        for (constraint, reason) in &self.skipped {
            out.push_str(&format!("skip: {constraint}: {reason}\n"));
        }
        out
    }

    /// Derive a chase configuration from `base`: when termination is proven,
    /// the per-evaluation budget becomes the analysis-derived bound for a
    /// source instance of `domain` distinct values and the verdict is
    /// recorded as [`TerminationVerdict::Proven`]; otherwise the budget is
    /// left alone and the verdict is [`TerminationVerdict::Unknown`].
    pub fn exchange_config(&self, domain: usize, base: &ExchangeConfig) -> ExchangeConfig {
        let mut config = base.clone();
        match &self.termination {
            Termination::Proven { bound } => {
                config.eval_budget = bound.eval_budget(domain);
                config.verdict = TerminationVerdict::Proven { eval_budget: config.eval_budget };
            }
            Termination::Unknown { .. } => {
                config.verdict = TerminationVerdict::Unknown;
            }
        }
        config
    }
}

/// The number of distinct values in a source instance — the `domain`
/// parameter of [`PolynomialBound`]'s budget functions.
pub fn domain_size(source: &Instance) -> usize {
    source.active_domain().len()
}

/// Analyze the exact rule set `exchange()` would run for these constraints:
/// weak-acyclicity verdict plus lint diagnostics.
pub fn analyze_exchange(
    constraints: &[Constraint],
    full_sig: &Signature,
    target_sig: &Signature,
) -> AnalysisReport {
    let rule_set = extract_rules(constraints, full_sig, target_sig);
    let dep_graph = graph::build(&rule_set, full_sig, target_sig);
    // Weak acyclicity bounds the chase only when every firing *satisfies*
    // the containment for the tuple it fired on. `fire()` cannot guarantee
    // that when the conclusion constrains columns beyond plain distinct
    // variables — it then refires on the same tuple with fresh nulls every
    // round (corpus examples 13 and 14 diverge exactly this way), so such a
    // rule set is honestly `Unknown` regardless of the dependency graph.
    let divergent = rule_set
        .rules
        .iter()
        .enumerate()
        .find_map(|(index, rule)| firing_satisfies(rule, target_sig).err().map(|r| (index, r)));
    let termination = if let Some((index, reason)) = divergent {
        Termination::Unknown { cycle_witness: None, reason: format!("rule {index} {reason}") }
    } else {
        match dep_graph.weak_acyclicity() {
            Ok(rank) => Termination::Proven {
                bound: bound::PolynomialBound::derive(&rule_set, &dep_graph, full_sig, rank),
            },
            Err(cycle) => Termination::Unknown {
                reason: "existential cycle in the position dependency graph".to_string(),
                cycle_witness: Some(cycle),
            },
        }
    };
    let mut diagnostics = lint::lint_rules(&rule_set);
    lint::sort(&mut diagnostics);
    record_metrics(&termination, &diagnostics);
    AnalysisReport {
        termination,
        diagnostics,
        rules: rule_set.rules.len(),
        skipped: rule_set.skipped.clone(),
    }
}

/// Does firing this rule on an arbitrary premise tuple always satisfy the
/// containment for that tuple? `fire()` copies the premise tuple into head
/// variables positionally and invents nulls for the rest, so satisfaction is
/// guaranteed exactly when the conclusion head is a sequence of *distinct,
/// unconstrained* variables and every conclusion atom lands in a relation
/// the chase may populate. Anything else — a repeated head variable (column
/// equality), a head column fixed to a constant, an atom over a source
/// relation — can leave the fired tuple unsatisfied forever.
fn firing_satisfies(rule: &AnalyzedRule, target_sig: &Signature) -> Result<(), String> {
    for atom in &rule.conclusion.atoms {
        if !target_sig.contains(&atom.rel) {
            return Err(format!("concludes into `{}`, which the chase cannot populate", atom.rel));
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for term in &rule.conclusion.head {
        match term {
            mapcomp_compose::cq::Term::Var(var) => {
                if !seen.insert(*var) {
                    return Err(
                        "equates conclusion columns; firing cannot satisfy premise tuples that \
                         differ there"
                            .to_string(),
                    );
                }
                if rule.conclusion.const_of.contains_key(var) {
                    return Err(
                        "fixes a conclusion column to a constant; firing cannot satisfy premise \
                         tuples that differ there"
                            .to_string(),
                    );
                }
            }
            _ => {
                return Err(
                    "has a non-variable conclusion column; firing cannot satisfy arbitrary \
                     premise tuples"
                        .to_string(),
                )
            }
        }
    }
    Ok(())
}

/// Analyze a catalog mapping: the chase rules that would populate its output
/// signature. Signature conflicts between input and output (the same
/// relation declared with two arities) surface as `arity-mismatch`
/// diagnostics with an [`Termination::Unknown`] verdict.
pub fn analyze_mapping(mapping: &Mapping) -> AnalysisReport {
    match mapping.combined_signature() {
        Ok(full) => analyze_exchange(mapping.constraints.as_slice(), &full, &mapping.output),
        Err(error) => {
            let diagnostics = vec![lint::signature_conflict(&error.to_string())];
            let termination = Termination::Unknown {
                cycle_witness: None,
                reason: format!("signatures do not combine: {error}"),
            };
            record_metrics(&termination, &diagnostics);
            AnalysisReport { termination, diagnostics, rules: 0, skipped: Vec::new() }
        }
    }
}

/// Bump the analysis counters in the global metrics registry: one verdict
/// counter per run, one lint counter per diagnostic code hit.
fn record_metrics(termination: &Termination, diagnostics: &[Diagnostic]) {
    let registry = mapcomp_telemetry::metrics::global();
    let verdict = match termination {
        Termination::Proven { .. } => "proven",
        Termination::Unknown { .. } => "unknown",
    };
    registry
        .counter(
            "analysis_verdicts_total",
            "Static termination analysis runs by verdict.",
            &[("verdict", verdict)],
        )
        .incr();
    for diagnostic in diagnostics {
        registry
            .counter(
                "analysis_lints_total",
                "Lint diagnostics emitted by the static analyzer, by code.",
                &[("code", diagnostic.code.as_str())],
            )
            .incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    fn mapping(input: &[(&str, usize)], output: &[(&str, usize)], text: &str) -> Mapping {
        Mapping {
            input: Signature::from_arities(input.iter().map(|&(n, a)| (n.to_string(), a))),
            output: Signature::from_arities(output.iter().map(|&(n, a)| (n.to_string(), a))),
            constraints: parse_constraints(text).unwrap(),
        }
    }

    #[test]
    fn copy_mapping_is_proven_with_rank_zero() {
        let report = analyze_mapping(&mapping(&[("R", 1)], &[("S", 1)], "R <= S"));
        let Termination::Proven { bound } = &report.termination else {
            panic!("expected proven, got {:?}", report.termination);
        };
        assert_eq!(bound.rank, 0);
        assert!(report.diagnostics.is_empty());
        assert!(report.skipped.is_empty());
        assert_eq!(report.rules, 1);
    }

    #[test]
    fn existential_self_feed_is_unknown_with_witness() {
        // For every (x, y) in S there must be (y, z) in S: each null feeds
        // the premise again — the textbook non-weakly-acyclic rule.
        let report =
            analyze_mapping(&mapping(&[("R", 1)], &[("S", 2)], "project[1](S) <= project[0](S)"));
        let Termination::Unknown { cycle_witness: Some(cycle), .. } = &report.termination else {
            panic!("expected unknown with witness, got {:?}", report.termination);
        };
        let rendered = cycle.to_string();
        assert!(rendered.contains("->*"), "cycle must show an existential edge: {rendered}");
        assert!(rendered.contains("S.1"), "cycle runs through S.1: {rendered}");
    }

    #[test]
    fn existential_without_feedback_is_proven_with_rank_one() {
        let report = analyze_mapping(&mapping(&[("R", 1)], &[("S", 2)], "R <= project[0](S)"));
        let Termination::Proven { bound } = &report.termination else {
            panic!("expected proven, got {:?}", report.termination);
        };
        assert_eq!(bound.rank, 1);
        assert!(bound.null_bound(4) >= 4, "each R value may force one null");
    }

    #[test]
    fn signature_conflicts_are_arity_mismatch_diagnostics() {
        let report = analyze_mapping(&mapping(&[("R", 1)], &[("R", 2)], "R <= R"));
        assert!(!report.proven());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, LintCode::ArityMismatch);
    }

    #[test]
    fn skolem_conclusions_are_reported_as_chase_skips() {
        // Mirror the chase: a conclusion with a Skolem head never becomes a
        // rule, so it must not affect the verdict — only the skip list.
        let report =
            analyze_mapping(&mapping(&[("R", 1)], &[("S", 1)], "R <= project[1](skolem:f[0](S))"));
        assert!(report.proven(), "no rules at all is trivially terminating");
        assert_eq!(report.rules, 0);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn render_is_deterministic() {
        let mapping = mapping(
            &[("R", 2), ("T", 1)],
            &[("S", 2)],
            "project[0,1](R * T) <= S; project[0,1](R * T) <= S",
        );
        let a = analyze_mapping(&mapping).render();
        let b = analyze_mapping(&mapping).render();
        assert_eq!(a, b);
        assert!(a.starts_with("termination: "), "render starts with the verdict: {a}");
    }

    #[test]
    fn proven_config_swaps_budget_and_verdict() {
        let report = analyze_mapping(&mapping(&[("R", 1)], &[("S", 1)], "R <= S"));
        let config = report.exchange_config(10, &ExchangeConfig::default());
        let TerminationVerdict::Proven { eval_budget } = config.verdict else {
            panic!("expected proven verdict");
        };
        assert_eq!(config.eval_budget, eval_budget);
        assert!(eval_budget > 0);
    }
}
