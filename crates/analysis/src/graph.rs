//! The position dependency graph and the weak-acyclicity decision.
//!
//! Nodes are `(relation, argument-position)` pairs. For every chase rule and
//! every universally quantified value the rule copies from its premise into
//! its conclusion, the graph gets a **regular** edge from each premise
//! position holding the value to each conclusion position receiving it; and
//! for every existential variable of the rule (a conclusion variable that
//! `mapcomp_compose::exchange` fills with a fresh labelled null),
//! a **existential** edge from each of those premise positions to each
//! position the null lands in. A rule set is *weakly acyclic* when no cycle
//! of the graph contains an existential edge — the classical sufficient
//! condition for chase termination, here adapted to the engine's algebraic
//! rules:
//!
//! * premises outside the conjunctive fragment contribute conservative
//!   edges from **every** position of every relation they read;
//! * a premise column fed by the active domain `D` (an unconstrained head
//!   variable) contributes edges from every position of every relation in
//!   the full signature — the active domain grows with every invented null,
//!   so such a rule can re-feed its own existentials and the conservative
//!   edges make that loop visible instead of unsound.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use mapcomp_algebra::Signature;
use mapcomp_compose::cq::Term;

use crate::rules::RuleSet;

/// A node of the dependency graph: one argument position of one relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Relation symbol.
    pub rel: String,
    /// 0-based column.
    pub col: usize,
}

impl Position {
    fn new(rel: &str, col: usize) -> Position {
        Position { rel: rel.to_string(), col }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rel, self.col)
    }
}

/// Labels of one edge of the graph (parallel regular/existential edges
/// between the same pair of positions are merged into one record).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Does a regular (value-copying) edge connect the pair?
    pub regular: bool,
    /// Does an existential (null-inventing) edge connect the pair?
    pub existential: bool,
    /// Rules contributing any edge between the pair.
    pub rules: BTreeSet<usize>,
}

/// The position dependency graph of one rule set.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    nodes: Vec<Position>,
    edges: BTreeMap<(usize, usize), EdgeInfo>,
}

/// A cycle through at least one existential edge: the witness rendered into
/// [`crate::Termination::Unknown`] diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The cycle's positions in order (the first position is not repeated).
    pub positions: Vec<Position>,
    /// Edge kinds around the cycle: `existential[i]` labels the edge from
    /// `positions[i]` to `positions[(i + 1) % len]`.
    pub existential: Vec<bool>,
    /// Rules contributing the cycle's edges, ascending.
    pub rules: Vec<usize>,
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, position) in self.positions.iter().enumerate() {
            let arrow = if self.existential[i] { "->*" } else { "->" };
            write!(f, "{position} {arrow} ")?;
        }
        // Close the cycle back at its first position.
        write!(f, "{}", self.positions[0])?;
        write!(f, " (rules")?;
        for rule in &self.rules {
            write!(f, " {rule}")?;
        }
        write!(f, ")")
    }
}

/// Where one premise column draws its values from.
enum Sources {
    /// A fixed constant: no dependency edges.
    None,
    /// Specific premise positions.
    Positions(Vec<Position>),
    /// The whole active domain (an unconstrained `D` column, or a premise
    /// outside the fragment that mentions `D`).
    Domain,
}

/// Build the dependency graph for a rule set.
pub fn build(rule_set: &RuleSet, full_sig: &Signature, target_sig: &Signature) -> DepGraph {
    let mut nodes: BTreeSet<Position> = BTreeSet::new();
    let mut edges: BTreeMap<(Position, Position), EdgeInfo> = BTreeMap::new();
    let all_positions = |sig: &Signature, rels: Option<&[String]>| -> Vec<Position> {
        sig.iter()
            .filter(|(name, _)| rels.is_none_or(|rels| rels.iter().any(|r| r == name)))
            .flat_map(|(name, info)| (0..info.arity).map(move |col| Position::new(name, col)))
            .collect()
    };

    for (index, rule) in rule_set.rules.iter().enumerate() {
        // Every position of every relation the rule touches is a node, so
        // the bound's `positions` parameter counts the live part of the
        // schema even where no edge lands.
        nodes.extend(all_positions(full_sig, Some(&rule.premise_relations)));
        let conclusion_rels: Vec<String> =
            rule.conclusion.atoms.iter().map(|atom| atom.rel.clone()).collect();
        nodes.extend(all_positions(full_sig, Some(&conclusion_rels)));

        // Positions a conclusion variable's value lands in: target-relation
        // atoms only, matching `fire()` (source atoms are never populated).
        let targets_of = |var: usize| -> Vec<Position> {
            rule.conclusion
                .atoms
                .iter()
                .filter(|atom| target_sig.contains(&atom.rel))
                .flat_map(|atom| {
                    atom.args
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &arg)| arg == var)
                        .map(move |(col, _)| Position::new(&atom.rel, col))
                })
                .collect()
        };

        // Per head column: where the premise value comes from.
        let sources_of = |col: usize| -> Sources {
            match &rule.premise {
                Some(premise) => match premise.head.get(col) {
                    Some(Term::Const(_)) | None => Sources::None,
                    Some(term) => {
                        let vars = term.vars();
                        let mut positions = Vec::new();
                        for var in &vars {
                            if premise.const_of.contains_key(var) {
                                continue;
                            }
                            let mut occurrences = premise_positions(premise, *var);
                            if occurrences.is_empty() {
                                // An unconstrained variable: fed by `D`.
                                return Sources::Domain;
                            }
                            positions.append(&mut occurrences);
                        }
                        if positions.is_empty() {
                            Sources::None
                        } else {
                            positions.sort();
                            positions.dedup();
                            Sources::Positions(positions)
                        }
                    }
                },
                None => {
                    if premise_mentions_domain(&rule.constraint.lhs) {
                        Sources::Domain
                    } else {
                        Sources::Positions(all_positions(full_sig, Some(&rule.premise_relations)))
                    }
                }
            }
        };

        let mut add_edge = |from: &Position, to: &Position, existential: bool| {
            nodes.insert(from.clone());
            nodes.insert(to.clone());
            let info = edges.entry((from.clone(), to.clone())).or_default();
            if existential {
                info.existential = true;
            } else {
                info.regular = true;
            }
            info.rules.insert(index);
        };

        // Regular edges: premise positions of each head column into the
        // positions its conclusion variable lands in.
        let mut all_sources: Vec<Position> = Vec::new();
        let mut domain_fed = false;
        for (col, term) in rule.conclusion.head.iter().enumerate() {
            let Term::Var(var) = term else { continue };
            if rule.conclusion.const_of.contains_key(var) {
                continue;
            }
            let sources = sources_of(col);
            let targets = targets_of(*var);
            match &sources {
                Sources::None => {}
                Sources::Positions(positions) => {
                    for from in positions {
                        for to in &targets {
                            add_edge(from, to, false);
                        }
                    }
                    all_sources.extend(positions.iter().cloned());
                }
                Sources::Domain => {
                    domain_fed = true;
                    for from in all_positions(full_sig, None) {
                        for to in &targets {
                            add_edge(&from, to, false);
                        }
                    }
                }
            }
        }

        // Existential edges: every premise position feeding the rule into
        // every position a fresh null lands in.
        let existential_positions: Vec<Position> = {
            let mut out: Vec<Position> =
                rule.existential_vars().into_iter().flat_map(&targets_of).collect();
            out.sort();
            out.dedup();
            out
        };
        if !existential_positions.is_empty() {
            let froms: Vec<Position> = if domain_fed {
                all_positions(full_sig, None)
            } else {
                let mut froms = all_sources;
                froms.sort();
                froms.dedup();
                froms
            };
            for from in &froms {
                for to in &existential_positions {
                    add_edge(from, to, true);
                }
            }
        }
    }

    let nodes: Vec<Position> = nodes.into_iter().collect();
    let index_of: BTreeMap<&Position, usize> =
        nodes.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let edges = edges
        .into_iter()
        .map(|((from, to), info)| ((index_of[&from], index_of[&to]), info))
        .collect();
    DepGraph { nodes, edges }
}

/// The positions a variable occupies in a premise's atoms.
fn premise_positions(premise: &mapcomp_compose::cq::Conjunctive, var: usize) -> Vec<Position> {
    premise
        .atoms
        .iter()
        .flat_map(|atom| {
            atom.args
                .iter()
                .enumerate()
                .filter(move |&(_, &arg)| arg == var)
                .map(move |(col, _)| Position::new(&atom.rel, col))
        })
        .collect()
}

/// Does an opaque premise expression read the active domain anywhere?
fn premise_mentions_domain(expr: &mapcomp_algebra::Expr) -> bool {
    use mapcomp_algebra::Expr;
    match expr {
        Expr::Domain(_) => true,
        Expr::Rel(_) | Expr::Empty(_) => false,
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Product(a, b)
        | Expr::Difference(a, b) => premise_mentions_domain(a) || premise_mentions_domain(b),
        Expr::Project(_, e) | Expr::Select(_, e) | Expr::Skolem(_, e) => premise_mentions_domain(e),
        Expr::Apply(_, args) => args.iter().any(premise_mentions_domain),
    }
}

impl DepGraph {
    /// The graph's nodes, sorted.
    pub fn positions(&self) -> &[Position] {
        &self.nodes
    }

    /// Number of position nodes.
    pub fn position_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Decide weak acyclicity. `Ok(rank)` proves it, where `rank` is the
    /// maximum number of existential edges on any path of the graph (0 when
    /// the rule set invents no nulls at all); `Err(witness)` carries a cycle
    /// through an existential edge.
    pub fn weak_acyclicity(&self) -> Result<usize, CycleWitness> {
        let component = self.strongly_connected_components();
        // A violation is an existential edge inside one component.
        for (&(from, to), info) in &self.edges {
            if info.existential && component[from] == component[to] {
                return Err(self.witness(from, to, &component));
            }
        }
        Ok(self.max_rank(&component))
    }

    /// Iterative Tarjan: component id per node, ids in completion order
    /// (every successor component of a node's component has a smaller id).
    fn strongly_connected_components(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let adjacency = self.adjacency();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut components = 0usize;

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            // Explicit DFS frame: (node, next neighbour offset).
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (node, ref mut offset)) = frames.last_mut() {
                if *offset == 0 {
                    index[node] = next_index;
                    low[node] = next_index;
                    next_index += 1;
                    stack.push(node);
                    on_stack[node] = true;
                }
                if let Some(&next) = adjacency[node].get(*offset) {
                    *offset += 1;
                    if index[next] == usize::MAX {
                        frames.push((next, 0));
                    } else if on_stack[next] {
                        low[node] = low[node].min(index[next]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[node]);
                    }
                    if low[node] == index[node] {
                        loop {
                            let member = stack.pop().expect("tarjan stack underflow");
                            on_stack[member] = false;
                            component[member] = components;
                            if member == node {
                                break;
                            }
                        }
                        components += 1;
                    }
                }
            }
        }
        component
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for &(from, to) in self.edges.keys() {
            adjacency[from].push(to);
        }
        adjacency
    }

    /// Maximum number of existential edges on any path, given the component
    /// assignment of an (existential-)acyclic graph. Computed on the
    /// condensation in topological order (descending component id — Tarjan
    /// completes successors first).
    fn max_rank(&self, component: &[usize]) -> usize {
        let components = component.iter().copied().max().map_or(0, |max| max + 1);
        let mut rank = vec![0usize; components];
        // Condensation edges, deduped with the strongest label.
        let mut cond: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        for (&(from, to), info) in &self.edges {
            let (cf, ct) = (component[from], component[to]);
            if cf == ct {
                continue; // regular-only internal edges don't raise the rank
            }
            let existential = cond.entry((cf, ct)).or_default();
            *existential |= info.existential;
        }
        let mut order: Vec<(usize, usize, bool)> =
            cond.into_iter().map(|((f, t), e)| (f, t, e)).collect();
        // Topological: sources have larger ids, so process descending.
        order.sort_by_key(|&(from, _, _)| std::cmp::Reverse(from));
        for (from, to, existential) in order {
            let candidate = rank[from] + usize::from(existential);
            if candidate > rank[to] {
                rank[to] = candidate;
            }
        }
        rank.into_iter().max().unwrap_or(0)
    }

    /// Build the witness for an existential edge `from -> to` inside one
    /// component: the edge itself plus the shortest path `to -> from` within
    /// the component (BFS in node order, so the witness is deterministic).
    fn witness(&self, from: usize, to: usize, component: &[usize]) -> CycleWitness {
        let adjacency = self.adjacency();
        let mut previous = vec![usize::MAX; self.nodes.len()];
        let mut queue = VecDeque::from([to]);
        let mut seen = vec![false; self.nodes.len()];
        seen[to] = true;
        while let Some(node) = queue.pop_front() {
            if node == from {
                break;
            }
            for &next in &adjacency[node] {
                if component[next] == component[to] && !seen[next] {
                    seen[next] = true;
                    previous[next] = node;
                    queue.push_back(next);
                }
            }
        }
        // Reconstruct to -> ... -> from, then prepend the witness edge.
        let mut path = vec![from];
        let mut node = from;
        while node != to {
            node = previous[node];
            path.push(node);
        }
        path.reverse(); // now: to, ..., from
        let mut positions = vec![self.nodes[from].clone()];
        positions.extend(path.iter().take(path.len() - 1).map(|&n| self.nodes[n].clone()));
        // Edge kinds around the cycle and the contributing rules.
        let mut existential = Vec::with_capacity(positions.len());
        let mut rules: BTreeSet<usize> = BTreeSet::new();
        let mut cycle_nodes: Vec<usize> = vec![from];
        cycle_nodes.extend(path.iter().take(path.len() - 1).copied());
        for i in 0..cycle_nodes.len() {
            let a = cycle_nodes[i];
            let b = cycle_nodes[(i + 1) % cycle_nodes.len()];
            let info = &self.edges[&(a, b)];
            // The witness edge is existential by construction; later edges
            // render as regular whenever a regular edge exists.
            existential.push(if i == 0 { true } else { !info.regular });
            rules.extend(info.rules.iter().copied());
        }
        CycleWitness { positions, existential, rules: rules.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::extract_rules;
    use mapcomp_algebra::parse_constraints;

    fn sig(pairs: &[(&str, usize)]) -> Signature {
        Signature::from_arities(pairs.iter().map(|&(n, a)| (n.to_string(), a)))
    }

    fn graph(text: &str, full: &[(&str, usize)], target: &[(&str, usize)]) -> DepGraph {
        let constraints = parse_constraints(text).unwrap();
        let full = sig(full);
        let target = sig(target);
        build(&extract_rules(constraints.as_slice(), &full, &target), &full, &target)
    }

    #[test]
    fn copy_rule_edges_are_regular() {
        let g = graph("R <= S", &[("R", 1), ("S", 1)], &[("S", 1)]);
        assert_eq!(g.position_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weak_acyclicity(), Ok(0));
    }

    #[test]
    fn existential_chain_has_rank_one() {
        let g = graph("R <= project[0](S)", &[("R", 1), ("S", 2)], &[("S", 2)]);
        assert_eq!(g.weak_acyclicity(), Ok(1));
    }

    #[test]
    fn stacked_existentials_raise_the_rank() {
        // R -> S invents a null; S's null column -> T invents another.
        let g = graph(
            "R <= project[0](S); project[1](S) <= project[0](T)",
            &[("R", 1), ("S", 2), ("T", 2)],
            &[("S", 2), ("T", 2)],
        );
        assert_eq!(g.weak_acyclicity(), Ok(2));
    }

    #[test]
    fn self_feeding_existential_is_a_cycle() {
        let g = graph("project[1](S) <= project[0](S)", &[("S", 2)], &[("S", 2)]);
        let witness = g.weak_acyclicity().unwrap_err();
        assert!(witness.existential.iter().any(|&e| e));
        let rendered = witness.to_string();
        assert!(rendered.contains("->*"), "witness renders the existential edge: {rendered}");
        assert!(rendered.contains("(rules 0)"), "witness names the rule: {rendered}");
    }

    #[test]
    fn regular_cycles_are_weakly_acyclic() {
        // S <= T and T <= S: a cycle, but purely regular — terminates.
        let g = graph("S <= T; T <= S", &[("S", 1), ("T", 1)], &[("S", 1), ("T", 1)]);
        assert_eq!(g.weak_acyclicity(), Ok(0));
    }

    #[test]
    fn domain_fed_existential_rule_is_flagged() {
        // Every domain value forces a null, the null joins the domain: loop.
        let g = graph("D^1 <= project[0](S)", &[("S", 2)], &[("S", 2)]);
        assert!(g.weak_acyclicity().is_err());
    }

    #[test]
    fn witness_is_deterministic() {
        let text = "project[1](S) <= project[0](S); project[1](T) <= project[0](T)";
        let full = &[("S", 2), ("T", 2)];
        let a = graph(text, full, full).weak_acyclicity().unwrap_err();
        let b = graph(text, full, full).weak_acyclicity().unwrap_err();
        assert_eq!(a, b);
    }
}
