//! Polynomial chase bounds derived from a weak-acyclicity proof.
//!
//! When the position dependency graph has no cycle through an existential
//! edge, the chase terminates in time polynomial in the source instance.
//! [`PolynomialBound`] records the parameters of that polynomial — the
//! graph's existential rank, the rule-set shape, the schema arities — and
//! turns them into concrete numbers for a given source domain size:
//! how many labelled nulls the chase can invent ([`null_bound`]), how many
//! tuples the instance can ever hold ([`tuple_bound`]), and a safe
//! per-evaluation tuple budget ([`eval_budget`]) that replaces the engine's
//! hardcoded default.
//!
//! Every arithmetic step saturates (in `u128`, clamped to `usize` at the
//! edge). Saturation is sound here: a budget only exists to cut off a chase
//! that would not terminate, and the proof says this one does — an
//! over-large budget merely declines to interfere.
//!
//! [`null_bound`]: PolynomialBound::null_bound
//! [`tuple_bound`]: PolynomialBound::tuple_bound
//! [`eval_budget`]: PolynomialBound::eval_budget

use mapcomp_algebra::Signature;

use crate::graph::DepGraph;
use crate::rules::RuleSet;

/// The parameters of a proven chase-termination bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialBound {
    /// Maximum number of existential edges on any path of the dependency
    /// graph: the degree driver of the polynomial. Rank 0 means the rule set
    /// invents no nulls at all.
    pub rank: usize,
    /// Number of `(relation, position)` nodes in the dependency graph.
    pub positions: usize,
    /// Number of chase rules analyzed.
    pub rules: usize,
    /// Maximum number of distinct premise bindings any one rule ranges over,
    /// as an exponent: the widest rule's premise variable count (or, for
    /// premises outside the conjunctive fragment, the summed arity of the
    /// relations it reads).
    pub max_premise_width: usize,
    /// Maximum number of fresh nulls a single rule firing can invent.
    pub max_existentials: usize,
    /// Maximum number of atoms in any conjunctive premise (at least 1 when
    /// there are rules): the join depth a premise evaluation can reach.
    pub max_premise_atoms: usize,
    /// Distinct constants mentioned by the rules; they join the domain.
    pub constants: usize,
    /// Arity of every relation in the full signature, sorted by name.
    pub relation_arities: Vec<usize>,
}

/// `base^exp`, saturating.
fn pow_sat(base: u128, exp: usize) -> u128 {
    let mut out: u128 = 1;
    for _ in 0..exp {
        out = out.saturating_mul(base);
    }
    out
}

fn clamp(value: u128) -> usize {
    usize::try_from(value).unwrap_or(usize::MAX)
}

impl PolynomialBound {
    /// Derive the bound parameters from an analyzed rule set and its
    /// dependency graph, given the proven rank.
    pub fn derive(
        rule_set: &RuleSet,
        dep_graph: &DepGraph,
        full_sig: &Signature,
        rank: usize,
    ) -> PolynomialBound {
        let mut max_premise_width = 0usize;
        let mut max_existentials = 0usize;
        let mut max_premise_atoms = 0usize;
        let mut constants = std::collections::BTreeSet::new();
        for rule in &rule_set.rules {
            let width = match &rule.premise {
                Some(premise) => premise.body_vars().len().max(premise.head.len()),
                None => rule
                    .premise_relations
                    .iter()
                    .filter_map(|name| full_sig.arity(name).ok())
                    .sum::<usize>()
                    .max(rule.conclusion.head.len()),
            };
            max_premise_width = max_premise_width.max(width);
            max_existentials = max_existentials.max(rule.existential_vars().len());
            let atoms = rule
                .premise
                .as_ref()
                .map_or(rule.premise_relations.len().max(1), |p| p.atoms.len().max(1));
            max_premise_atoms = max_premise_atoms.max(atoms);
            for premise in rule.premise.iter() {
                constants.extend(premise.const_of.values().cloned());
            }
            constants.extend(rule.conclusion.const_of.values().cloned());
        }
        PolynomialBound {
            rank,
            positions: dep_graph.position_count(),
            rules: rule_set.rules.len(),
            max_premise_width,
            max_existentials,
            max_premise_atoms,
            constants: constants.len(),
            relation_arities: full_sig.iter().map(|(_, info)| info.arity).collect(),
        }
    }

    /// Bound on the number of distinct values (domain values, constants, and
    /// invented nulls) a chase from a source of `domain` distinct values can
    /// ever see. One growth round per rank level, plus one for the engine's
    /// firing-multiplicity slack (satisfaction is keyed on full premise
    /// tuples, not just the conclusion-relevant columns).
    pub fn value_bound(&self, domain: usize) -> usize {
        let base = (domain as u128).saturating_add(self.constants as u128).max(1);
        let mut values = base;
        for _ in 0..=self.rank {
            let firings =
                (self.rules as u128).saturating_mul(pow_sat(values, self.max_premise_width));
            values = values.saturating_add(firings.saturating_mul(self.max_existentials as u128));
        }
        clamp(values)
    }

    /// Bound on the number of labelled nulls the chase can invent.
    pub fn null_bound(&self, domain: usize) -> usize {
        let base = clamp((domain as u128).saturating_add(self.constants as u128).max(1));
        self.value_bound(domain).saturating_sub(base)
    }

    /// Bound on the number of tuples the chased instance can ever hold:
    /// every relation filled with every combination of values.
    pub fn tuple_bound(&self, domain: usize) -> usize {
        let values = self.value_bound(domain) as u128;
        let mut tuples: u128 = 0;
        for &arity in &self.relation_arities {
            tuples = tuples.saturating_add(pow_sat(values, arity));
        }
        clamp(tuples)
    }

    /// A safe per-evaluation tuple budget for the chase engine: the largest
    /// intermediate result any premise evaluation can produce, i.e. the
    /// instance-wide tuple bound raised to the deepest join any premise
    /// performs. Saturates rather than under-estimates.
    pub fn eval_budget(&self, domain: usize) -> usize {
        let tuples = (self.tuple_bound(domain) as u128).max(1);
        clamp(pow_sat(tuples, self.max_premise_atoms.max(1)))
    }

    /// One-line, byte-stable summary (the "verdict grammar" of
    /// `docs/ANALYSIS.md`).
    pub fn summary(&self) -> String {
        format!("proven rank={} positions={} rules={}", self.rank, self.positions, self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::extract_rules;
    use mapcomp_algebra::{parse_constraints, Signature};

    fn derive_for(text: &str, rels: &[(&str, usize)], target: &[(&str, usize)]) -> PolynomialBound {
        let full = Signature::from_arities(rels.iter().map(|&(n, a)| (n.to_string(), a)));
        let target = Signature::from_arities(target.iter().map(|&(n, a)| (n.to_string(), a)));
        let constraints = parse_constraints(text).unwrap();
        let rules = extract_rules(constraints.as_slice(), &full, &target);
        let graph = crate::graph::build(&rules, &full, &target);
        let rank = graph.weak_acyclicity().expect("weakly acyclic");
        PolynomialBound::derive(&rules, &graph, &full, rank)
    }

    #[test]
    fn rank_zero_rules_invent_no_nulls() {
        let bound = derive_for("R <= S", &[("R", 1), ("S", 1)], &[("S", 1)]);
        assert_eq!(bound.rank, 0);
        assert_eq!(bound.max_existentials, 0);
        assert_eq!(bound.null_bound(100), 0);
        assert_eq!(bound.value_bound(100), 100);
    }

    #[test]
    fn rank_one_null_bound_scales_with_domain() {
        let bound = derive_for("R <= project[0](S)", &[("R", 1), ("S", 2)], &[("S", 2)]);
        assert_eq!(bound.rank, 1);
        assert!(bound.null_bound(10) >= 10, "one null per source value at least");
        assert!(bound.null_bound(20) > bound.null_bound(10));
    }

    #[test]
    fn budgets_are_monotone_and_saturate() {
        let bound = derive_for("R <= project[0](S)", &[("R", 1), ("S", 2)], &[("S", 2)]);
        assert!(bound.eval_budget(10) >= bound.tuple_bound(10));
        assert!(bound.eval_budget(100) >= bound.eval_budget(10));
        // A huge domain saturates instead of wrapping.
        assert_eq!(bound.eval_budget(usize::MAX), usize::MAX);
        assert!(bound.eval_budget(0) >= 1, "empty sources still get a positive budget");
    }

    #[test]
    fn summary_is_the_documented_grammar() {
        let bound = derive_for("R <= S", &[("R", 1), ("S", 1)], &[("S", 1)]);
        assert_eq!(bound.summary(), format!("proven rank=0 positions={} rules=1", bound.positions));
    }
}
