//! Rule-level linter with stable diagnostic codes.
//!
//! Each smell the analyzer can flag has a stable kebab-case code, styled
//! after the service layer's wire error-code table: codes round-trip through
//! [`LintCode::as_str`] / [`LintCode::parse`], the full set lives in
//! [`LintCode::ALL`], and `docs/ANALYSIS.md`'s code table is checked against
//! `ALL` by `tests/docs_examples.rs`. Diagnostics sort by
//! `(rule index, code, position)` so output is byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt;

use mapcomp_compose::cq::{Conjunctive, Term};

use crate::rules::RuleSet;

/// Stable lint diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// A premise head variable bound by neither a premise atom nor a
    /// selection constant: it ranges over the whole active domain, so the
    /// rule's firings grow with every invented null.
    UnboundHead,
    /// A premise variable used exactly once, in a multi-atom join: it
    /// constrains nothing and usually signals a typo in a join column.
    UnusedPremiseVar,
    /// A multi-atom premise whose atoms share no variables: the rule ranges
    /// over a full cartesian product.
    CartesianJoin,
    /// A rule textually identical to an earlier rule.
    DuplicateRule,
    /// A rule whose premise and conclusion are structurally identical to an
    /// earlier rule's (same canonical conjunctive forms) without being
    /// textually identical.
    ShadowedRule,
    /// A relation declared with conflicting arities across the signatures of
    /// a composed chain.
    ArityMismatch,
}

impl LintCode {
    /// Every code, in code-string order.
    pub const ALL: [LintCode; 6] = [
        LintCode::ArityMismatch,
        LintCode::CartesianJoin,
        LintCode::DuplicateRule,
        LintCode::ShadowedRule,
        LintCode::UnboundHead,
        LintCode::UnusedPremiseVar,
    ];

    /// The stable wire/text form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnboundHead => "unbound-head",
            LintCode::UnusedPremiseVar => "unused-premise-var",
            LintCode::CartesianJoin => "cartesian-join",
            LintCode::DuplicateRule => "duplicate-rule",
            LintCode::ShadowedRule => "shadowed-rule",
            LintCode::ArityMismatch => "arity-mismatch",
        }
    }

    /// Parse the stable text form back into a code.
    pub fn parse(text: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|code| code.as_str() == text)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule index the finding is anchored to; `None` for findings about the
    /// rule set as a whole (e.g. signature conflicts).
    pub rule: Option<usize>,
    /// Stable diagnostic code.
    pub code: LintCode,
    /// Position within the rule (`head.2`, `R.0`), empty when the finding
    /// has no position.
    pub position: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint[{}]", self.code)?;
        if let Some(rule) = self.rule {
            write!(f, " rule {rule}")?;
        }
        if !self.position.is_empty() {
            write!(f, " at {}", self.position)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Sort diagnostics into the stable output order: rule index (rule-set-wide
/// findings last), then code string, then position.
pub fn sort(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        let rule_key = |d: &Diagnostic| (d.rule.is_none(), d.rule);
        rule_key(a)
            .cmp(&rule_key(b))
            .then_with(|| a.code.as_str().cmp(b.code.as_str()))
            .then_with(|| a.position.cmp(&b.position))
    });
}

/// A rule-set-wide arity-mismatch finding (conflicting signatures).
pub fn signature_conflict(detail: &str) -> Diagnostic {
    Diagnostic {
        rule: None,
        code: LintCode::ArityMismatch,
        position: String::new(),
        message: format!("signatures declare conflicting arities: {detail}"),
    }
}

/// Run every rule-level lint over an extracted rule set. The result is not
/// yet sorted — callers compose findings from several passes and [`sort`]
/// once.
pub fn lint_rules(rule_set: &RuleSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (index, rule) in rule_set.rules.iter().enumerate() {
        if let Some(premise) = &rule.premise {
            lint_unbound_head(index, premise, &mut out);
            lint_unused_premise_vars(index, premise, &mut out);
            lint_cartesian_join(index, premise, &mut out);
        }
        lint_repeats(index, rule_set, &mut out);
    }
    out
}

/// `unbound-head`: a premise head variable with no binding occurrence.
fn lint_unbound_head(index: usize, premise: &Conjunctive, out: &mut Vec<Diagnostic>) {
    let body = premise.body_vars();
    for (col, term) in premise.head.iter().enumerate() {
        let unbound: Vec<usize> = term
            .vars()
            .into_iter()
            .filter(|v| !body.contains(v) && !premise.const_of.contains_key(v))
            .collect();
        if !unbound.is_empty() {
            out.push(Diagnostic {
                rule: Some(index),
                code: LintCode::UnboundHead,
                position: format!("head.{col}"),
                message: "premise head variable is bound by no atom or constant; \
                          it ranges over the whole active domain"
                    .to_string(),
            });
        }
    }
}

/// `unused-premise-var`: a join variable used exactly once.
fn lint_unused_premise_vars(index: usize, premise: &Conjunctive, out: &mut Vec<Diagnostic>) {
    if premise.atoms.len() < 2 {
        // Single-atom premises project columns away idiomatically.
        return;
    }
    let head = premise.head_universal_vars();
    let head_func_vars: std::collections::BTreeSet<usize> =
        premise.head.iter().flat_map(Term::vars).collect();
    let mut occurrence: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for (a, atom) in premise.atoms.iter().enumerate() {
        for (col, &var) in atom.args.iter().enumerate() {
            occurrence.entry(var).or_default().push((a, col));
        }
    }
    for (var, places) in occurrence {
        if places.len() != 1
            || head.contains(&var)
            || head_func_vars.contains(&var)
            || premise.const_of.contains_key(&var)
        {
            continue;
        }
        let (atom, col) = places[0];
        out.push(Diagnostic {
            rule: Some(index),
            code: LintCode::UnusedPremiseVar,
            position: format!("{}.{col}", premise.atoms[atom].rel),
            message: "premise variable occurs once and constrains nothing".to_string(),
        });
    }
}

/// `cartesian-join`: the premise's variable-sharing graph is disconnected.
fn lint_cartesian_join(index: usize, premise: &Conjunctive, out: &mut Vec<Diagnostic>) {
    if premise.atoms.len() < 2 {
        return;
    }
    // Union-find over atoms, joined when two atoms share a variable that is
    // not fixed to a constant (constant-bound columns are filters, not
    // joins).
    let mut component: Vec<usize> = (0..premise.atoms.len()).collect();
    fn root(component: &mut [usize], mut i: usize) -> usize {
        while component[i] != i {
            component[i] = component[component[i]];
            i = component[i];
        }
        i
    }
    let mut owner: BTreeMap<usize, usize> = BTreeMap::new();
    for (a, atom) in premise.atoms.iter().enumerate() {
        for &var in &atom.args {
            if premise.const_of.contains_key(&var) {
                continue;
            }
            match owner.get(&var) {
                Some(&first) => {
                    let (ra, rb) = (root(&mut component, a), root(&mut component, first));
                    component[ra] = rb;
                }
                None => {
                    owner.insert(var, a);
                }
            }
        }
    }
    let base = root(&mut component, 0);
    for a in 1..premise.atoms.len() {
        if root(&mut component, a) != base {
            out.push(Diagnostic {
                rule: Some(index),
                code: LintCode::CartesianJoin,
                position: format!("{}.0", premise.atoms[a].rel),
                message: "premise atom shares no variable with the rest of the join; \
                          the rule ranges over a cartesian product"
                    .to_string(),
            });
            return; // one finding per rule is enough
        }
    }
}

/// `duplicate-rule` / `shadowed-rule`: textual or structural repeats of an
/// earlier rule.
fn lint_repeats(index: usize, rule_set: &RuleSet, out: &mut Vec<Diagnostic>) {
    let rule = &rule_set.rules[index];
    let text = rule.constraint.to_string();
    for (earlier_index, earlier) in rule_set.rules[..index].iter().enumerate() {
        if earlier.constraint.to_string() == text {
            out.push(Diagnostic {
                rule: Some(index),
                code: LintCode::DuplicateRule,
                position: String::new(),
                message: format!("rule repeats rule {earlier_index} verbatim"),
            });
            return;
        }
        let same_structure = earlier.conclusion == rule.conclusion
            && match (&earlier.premise, &rule.premise) {
                (Some(a), Some(b)) => a == b,
                (None, None) => earlier.premise_relations == rule.premise_relations,
                _ => false,
            };
        if same_structure {
            out.push(Diagnostic {
                rule: Some(index),
                code: LintCode::ShadowedRule,
                position: String::new(),
                message: format!(
                    "rule is structurally identical to rule {earlier_index} and adds nothing"
                ),
            });
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::extract_rules;
    use mapcomp_algebra::{parse_constraints, Signature};

    fn lint(text: &str, rels: &[(&str, usize)], target: &[(&str, usize)]) -> Vec<Diagnostic> {
        let full = Signature::from_arities(rels.iter().map(|&(n, a)| (n.to_string(), a)));
        let target = Signature::from_arities(target.iter().map(|&(n, a)| (n.to_string(), a)));
        let constraints = parse_constraints(text).unwrap();
        let mut out = lint_rules(&extract_rules(constraints.as_slice(), &full, &target));
        sort(&mut out);
        out
    }

    #[test]
    fn codes_round_trip_and_all_is_sorted() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        let mut strings: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        let original = strings.clone();
        strings.sort_unstable();
        assert_eq!(strings, original, "ALL is in code-string order");
        assert_eq!(LintCode::parse("no-such-code"), None);
    }

    #[test]
    fn clean_rules_produce_no_diagnostics() {
        assert!(lint("R <= S", &[("R", 1), ("S", 1)], &[("S", 1)]).is_empty());
    }

    #[test]
    fn cartesian_products_are_flagged() {
        let out = lint("project[0,2](R * T) <= S", &[("R", 2), ("T", 1), ("S", 2)], &[("S", 2)]);
        assert!(
            out.iter().any(|d| d.code == LintCode::CartesianJoin),
            "expected cartesian-join, got {out:?}"
        );
    }

    #[test]
    fn shared_join_variables_are_not_cartesian() {
        // select col0 = col2 joins R and T on a shared variable.
        let out = lint(
            "project[0,1](select[0=2](R * T)) <= S",
            &[("R", 2), ("T", 1), ("S", 2)],
            &[("S", 2)],
        );
        assert!(
            out.iter().all(|d| d.code != LintCode::CartesianJoin),
            "join on 0=2 connects the atoms: {out:?}"
        );
    }

    #[test]
    fn duplicate_rules_are_flagged_once() {
        let out = lint("R <= S; R <= S", &[("R", 1), ("S", 1)], &[("S", 1)]);
        let dupes: Vec<_> = out.iter().filter(|d| d.code == LintCode::DuplicateRule).collect();
        assert_eq!(dupes.len(), 1);
        assert_eq!(dupes[0].rule, Some(1));
    }

    #[test]
    fn display_renders_all_present_parts() {
        let d = Diagnostic {
            rule: Some(3),
            code: LintCode::UnboundHead,
            position: "head.1".to_string(),
            message: "m".to_string(),
        };
        assert_eq!(d.to_string(), "lint[unbound-head] rule 3 at head.1: m");
        let d = signature_conflict("R: 1 vs 2");
        assert_eq!(
            d.to_string(),
            "lint[arity-mismatch]: signatures declare conflicting arities: R: 1 vs 2"
        );
    }

    #[test]
    fn sort_is_stable_and_total() {
        let mut out = vec![
            signature_conflict("x"),
            Diagnostic {
                rule: Some(1),
                code: LintCode::UnboundHead,
                position: "head.0".into(),
                message: "m".into(),
            },
            Diagnostic {
                rule: Some(0),
                code: LintCode::UnusedPremiseVar,
                position: "R.1".into(),
                message: "m".into(),
            },
        ];
        sort(&mut out);
        assert_eq!(out[0].rule, Some(0));
        assert_eq!(out[1].rule, Some(1));
        assert_eq!(out[2].rule, None, "rule-set-wide findings sort last");
    }
}
