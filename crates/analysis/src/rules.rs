//! Chase-rule extraction for analysis, mirroring `exchange()` exactly.
//!
//! The analyzer must speak about the rules the chase will actually run, so
//! this module replays the rule-construction loop of
//! `mapcomp_compose::exchange::exchange` constraint for constraint: split
//! equalities into containments, keep only directions whose conclusion
//! mentions a target relation and converts to conjunctive form, and record
//! the rest in a skip list with the chase's own reasons. On top of that the
//! analyzer additionally converts each premise to conjunctive form where
//! possible — the chase evaluates premises as opaque expressions, but the
//! dependency graph and the linter want their atom structure.

use mapcomp_algebra::{Constraint, Signature};
use mapcomp_compose::cq::{expr_to_conjunctive, Conjunctive, Term};

/// One chase rule as seen by the analyzer.
#[derive(Debug, Clone)]
pub struct AnalyzedRule {
    /// The containment this rule was built from.
    pub constraint: Constraint,
    /// The premise in conjunctive form, when it is in the fragment; `None`
    /// for premises the chase evaluates as opaque expressions (unions,
    /// differences, user-defined operators). The dependency graph treats
    /// those conservatively.
    pub premise: Option<Conjunctive>,
    /// Relations the premise reads (used for the conservative edge set when
    /// `premise` is `None`).
    pub premise_relations: Vec<String>,
    /// The conclusion in conjunctive form (always present: rules without a
    /// conjunctive conclusion never become chase rules).
    pub conclusion: Conjunctive,
}

impl AnalyzedRule {
    /// Conclusion body variables that receive fresh labelled nulls when the
    /// rule fires: not bound by a head variable, not fixed to a constant —
    /// exactly the variables `fire()` fills with `_nullN` values.
    pub fn existential_vars(&self) -> Vec<usize> {
        let head: std::collections::BTreeSet<usize> = self.conclusion.head_universal_vars();
        self.conclusion
            .body_vars()
            .into_iter()
            .filter(|v| !head.contains(v) && !self.conclusion.const_of.contains_key(v))
            .collect()
    }
}

/// The full extraction result: rules in chase order plus the skip list.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// Rules in the order the chase would run them (rule index = position).
    pub rules: Vec<AnalyzedRule>,
    /// Constraints the chase would skip before round one, with the reason.
    pub skipped: Vec<(Constraint, String)>,
}

/// Extract the chase rules for `(constraints, full_sig, target_sig)`,
/// following `exchange()`'s selection logic exactly.
pub fn extract_rules(
    constraints: &[Constraint],
    full_sig: &Signature,
    target_sig: &Signature,
) -> RuleSet {
    let mut set = RuleSet::default();
    for constraint in constraints {
        for containment in constraint.as_containments() {
            let mentions_target =
                containment.rhs.relations().iter().any(|name| target_sig.contains(name));
            if !mentions_target {
                continue;
            }
            match expr_to_conjunctive(&containment.rhs, full_sig) {
                Ok(conclusion) => {
                    if conclusion.head.iter().any(Term::has_func) {
                        set.skipped.push((
                            containment.clone(),
                            "conclusion contains Skolem functions".to_string(),
                        ));
                        continue;
                    }
                    if let Err(reason) = conclusion.to_expr() {
                        set.skipped.push((containment.clone(), reason));
                        continue;
                    }
                    let premise = expr_to_conjunctive(&containment.lhs, full_sig).ok();
                    let premise_relations =
                        containment.lhs.relations().into_iter().collect::<Vec<String>>();
                    set.rules.push(AnalyzedRule {
                        constraint: containment,
                        premise,
                        premise_relations,
                        conclusion,
                    });
                }
                Err(reason) => set.skipped.push((containment.clone(), reason)),
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, ConstraintSet};

    fn sig(pairs: &[(&str, usize)]) -> Signature {
        Signature::from_arities(pairs.iter().map(|&(n, a)| (n.to_string(), a)))
    }

    fn extract(text: &str, full: &[(&str, usize)], target: &[(&str, usize)]) -> RuleSet {
        let constraints: ConstraintSet = parse_constraints(text).unwrap();
        extract_rules(constraints.as_slice(), &sig(full), &sig(target))
    }

    #[test]
    fn equalities_contribute_both_populating_directions() {
        // S = T over two target relations: both directions are rules.
        let set = extract("S = T", &[("S", 1), ("T", 1)], &[("S", 1), ("T", 1)]);
        assert_eq!(set.rules.len(), 2);
        assert!(set.skipped.is_empty());
    }

    #[test]
    fn source_only_conclusions_are_not_rules() {
        let set = extract("R <= R", &[("R", 1), ("S", 1)], &[("S", 1)]);
        assert!(set.rules.is_empty());
        assert!(set.skipped.is_empty());
    }

    #[test]
    fn existential_vars_match_fire_semantics() {
        let set = extract("R <= project[0](S)", &[("R", 1), ("S", 2)], &[("S", 2)]);
        assert_eq!(set.rules.len(), 1);
        assert_eq!(set.rules[0].existential_vars().len(), 1);
    }

    #[test]
    fn non_conjunctive_premises_keep_their_relations() {
        let set = extract("(R + T) <= S", &[("R", 1), ("T", 1), ("S", 1)], &[("S", 1)]);
        assert_eq!(set.rules.len(), 1);
        assert!(set.rules[0].premise.is_none(), "union premises are outside the fragment");
        assert_eq!(set.rules[0].premise_relations, vec!["R".to_string(), "T".to_string()]);
    }
}
