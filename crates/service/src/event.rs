//! The readiness-driven TCP front end: one event loop owning every socket,
//! a bounded CPU worker pool doing the compose work.
//!
//! The threaded [`crate::server::Server`] binds live clients to pool
//! workers one-to-one, so 4 workers means 4 concurrent connections no
//! matter how idle they are. This engine splits the two resources the way
//! event-driven brokers do: a single loop thread multiplexes *all*
//! connections through an `epoll`/`poll` readiness poller (the offline
//! [`polling`] shim), while a small fixed pool of CPU workers executes
//! decoded requests. Thousands of idle connections cost the loop one fd
//! each; a slow chain compose occupies one CPU worker and nothing else.
//!
//! Per connection the loop keeps a small state machine:
//!
//! * a **read buffer** framed by scanning for the `end` terminator line —
//!   partial frames survive across readiness events, and only a connection
//!   with an *empty* read buffer can be reaped as idle;
//! * a **pipeline**: every decoded frame gets a sequence number, requests
//!   execute strictly in per-connection order (one in the CPU pool at a
//!   time, the rest pending), and completed replies wait in a reorder map
//!   until every earlier sequence has been flushed — so a client may write
//!   N requests back-to-back and always reads N in-order replies;
//! * a **write buffer** drained on writability, with write interest
//!   registered only while bytes are actually waiting.
//!
//! Backpressure is explicit: when the shared CPU queue (or a connection's
//! pending pipeline) already holds `queue_limit` requests, new requests are
//! shed immediately with the stable [`ErrorCode::Busy`] error instead of
//! growing the queue — `server_cpu_queue_depth` gauges the queue and
//! `server_busy_rejected_total` counts the sheds.
//!
//! Both front ends speak the identical wire protocol (the
//! transport-equivalence suite diffs them byte for byte), and shutdown is
//! the same in-band handshake: a [`Request::Shutdown`] reply makes the
//! backend persist, the accept socket is deregistered, and every
//! connection is closed as soon as its already-accepted work has been
//! flushed.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mapcomp_catalog::Position;
use mapcomp_replication::{StreamEvent, Subscription};
use mapcomp_telemetry::log::{json_line, LogFormat, LogValue};
use polling::{Event, Poller};

use crate::api::{DeltaChunkPayload, ErrorCode, Request, Response, ServiceError};
use crate::server::{auth_required, token_matches, ServerTelemetry};
use crate::service::MapcompService;
use crate::wire::{decode_request_frame, encode_reply, FRAME_END, MAX_FRAME_BYTES};

/// Poller key of the listening socket (connection keys start above it).
const LISTENER_KEY: usize = 0;

/// How many pending requests the CPU queue (and any one connection's
/// pipeline) may hold before new requests are shed with
/// [`ErrorCode::Busy`], unless overridden by
/// [`EventServer::set_queue_limit`].
pub const DEFAULT_QUEUE_LIMIT: usize = 1024;

#[cfg(unix)]
fn raw_fd(socket: &impl std::os::fd::AsRawFd) -> polling::RawFd {
    socket.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_socket: &T) -> polling::RawFd {
    // The poller itself is unsupported off unix; `Poller::new` fails first.
    -1
}

/// A readiness-driven TCP server for a [`MapcompService`] backend.
pub struct EventServer {
    listener: TcpListener,
    shutdown: AtomicBool,
    /// Reap a connection that has no buffered bytes, no in-flight work and
    /// no unflushed replies after this long without progress (`None` =
    /// keep idle connections forever, the default).
    idle_timeout: Option<Duration>,
    /// Emit structured connection/request log lines on stderr in this
    /// format (`None` = silent, the default).
    log_format: Option<LogFormat>,
    /// Log any request slower than this even when `log_format` is off.
    slow_threshold: Option<Duration>,
    /// When set, connections must present this token in an `auth` frame
    /// field before any request is served.
    auth_token: Option<String>,
    /// Shed requests with [`ErrorCode::Busy`] beyond this queue depth.
    queue_limit: usize,
    telemetry: ServerTelemetry,
    /// Shared so replication subscriptions can hand the hub a `'static`
    /// wake callback that outlives any one `run` call.
    poller: Arc<Poller>,
}

/// One decoded request waiting for (or occupying) a CPU worker.
struct Job {
    slot: usize,
    generation: u64,
    seq: u64,
    request: Request,
    trace: Option<u64>,
    kind: &'static str,
}

/// A finished request on its way back to the event loop.
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    encoded: String,
    kind: &'static str,
    trace: Option<u64>,
    ok: bool,
    elapsed: Duration,
    /// The reply was [`Response::ShuttingDown`]: the loop must begin the
    /// shutdown handshake once this reply is queued.
    shutdown: bool,
}

/// Shared state between the event loop and the CPU workers.
struct CpuPool {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Set by the event loop when it exits; workers drain and stop.
    stop: AtomicBool,
}

impl CpuPool {
    fn new() -> Self {
        CpuPool {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_completions(&self) -> std::sync::MutexGuard<'_, Vec<Completion>> {
        self.completions.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    peer: String,
    /// Guards stale completions after a slot is reused: a completion whose
    /// generation does not match the slot's current occupant is dropped.
    generation: u64,
    read_buf: Vec<u8>,
    /// Start of the first read-buffer line not yet scanned for `end`.
    scanned: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Next sequence number to assign to a decoded frame.
    next_seq: u64,
    /// Next sequence number to append to the write buffer — replies with
    /// later sequences wait in `ready` until this catches up.
    next_flush: u64,
    /// Completed replies waiting for in-order flushing.
    ready: BTreeMap<u64, String>,
    /// Decoded requests waiting for their turn in the CPU pool (strict
    /// per-connection execution order).
    pending: VecDeque<(u64, Request, Option<u64>, &'static str)>,
    /// Is one of this connection's requests in the CPU pool right now?
    executing: bool,
    last_progress: Instant,
    authed: bool,
    /// Current poller registration includes write interest.
    wants_write: bool,
    /// Peer closed its write side; close once everything is flushed.
    eof: bool,
    /// Close once everything is flushed (shutdown, or a fatal error reply).
    closing: bool,
    /// Live replication stream, once a `subscribe` frame has been
    /// accepted: the connection becomes one-way (any further inbound frame
    /// is a protocol violation) and hub events are drained into the write
    /// buffer after the `subscribed` ack and replay have been flushed.
    subscription: Option<Subscription>,
}

impl Conn {
    /// No sequences unexecuted, unflushed or unwritten.
    fn quiesced(&self) -> bool {
        self.next_flush == self.next_seq && self.write_pos == self.write_buf.len()
    }
}

/// The event loop's connection table: a slab with stable keys.
struct LoopState {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Jobs submitted to the CPU pool whose completions have not yet been
    /// drained (counted across all connections, stale ones included).
    outstanding: usize,
    /// Has the loop reacted to the shutdown flag yet?
    shutdown_handled: bool,
    generations: u64,
}

impl LoopState {
    fn new() -> Self {
        LoopState {
            slots: Vec::new(),
            free: Vec::new(),
            outstanding: 0,
            shutdown_handled: false,
            generations: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(conn);
                slot
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        }
    }

    fn live(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }
}

impl EventServer {
    /// Bind to `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port — read the result off [`EventServer::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<EventServer> {
        Ok(EventServer {
            listener: TcpListener::bind(addr)?,
            shutdown: AtomicBool::new(false),
            idle_timeout: None,
            log_format: None,
            slow_threshold: None,
            auth_token: None,
            queue_limit: DEFAULT_QUEUE_LIMIT,
            telemetry: ServerTelemetry::new(),
            poller: Arc::new(Poller::new()?),
        })
    }

    /// Emit one structured log line per connection event and per request on
    /// stderr, in `format`. `None` (the default) keeps the loop silent.
    pub fn set_log_format(&mut self, format: Option<LogFormat>) {
        self.log_format = format;
    }

    /// The configured log format.
    pub fn log_format(&self) -> Option<LogFormat> {
        self.log_format
    }

    /// Log any request whose handling exceeds `threshold`, even when
    /// [`EventServer::set_log_format`] is off. `None` (the default)
    /// disables slow-request logging.
    pub fn set_slow_threshold(&mut self, threshold: Option<Duration>) {
        self.slow_threshold = threshold;
    }

    /// The configured slow-request threshold.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// Reap connections with no buffered bytes, no in-flight requests and
    /// no unflushed replies after `timeout` without progress. A peer that
    /// has delivered part of a frame has made progress and is waited on —
    /// only truly idle connections are dropped. `None` disables reaping
    /// (the default); unlike the threaded engine, idle connections here
    /// cost one fd rather than a pinned worker, so reaping is optional
    /// hygiene rather than a liveness requirement.
    pub fn set_idle_timeout(&mut self, timeout: Option<Duration>) {
        self.idle_timeout = timeout;
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// Require every connection to authenticate before serving requests
    /// (see [`crate::server::Server::set_auth_token`]; the two engines
    /// share semantics).
    pub fn set_auth_token(&mut self, token: Option<String>) {
        self.auth_token = token;
    }

    /// The configured auth token.
    pub fn auth_token(&self) -> Option<&str> {
        self.auth_token.as_deref()
    }

    /// Shed requests with [`ErrorCode::Busy`] once the shared CPU queue —
    /// or any single connection's pending pipeline — already holds this
    /// many requests. The floor is 1 (a limit of 0 could never serve
    /// anything); the default is [`DEFAULT_QUEUE_LIMIT`].
    pub fn set_queue_limit(&mut self, limit: usize) {
        self.queue_limit = limit.max(1);
    }

    /// The configured queue limit.
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Has a shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from outside a connection (tests, signal
    /// handlers): wakes the event loop, which deregisters the accept
    /// socket and drains every connection's in-flight work.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = self.poller.notify();
        }
    }

    /// Render one log line if logging is on (`force_slow` bypasses the
    /// format gate for slow-request lines).
    fn log(&self, force_slow: bool, event: &str, fields: &[(&str, LogValue<'_>)]) {
        let format = match self.log_format {
            Some(format) => format,
            None if force_slow => LogFormat::Text,
            None => return,
        };
        eprintln!("{}", json_line(format, event, fields));
    }

    /// Serve until a [`Request::Shutdown`] arrives (or
    /// [`EventServer::begin_shutdown`] is called), with `cpu_workers`
    /// scoped worker threads executing requests. Blocks the calling
    /// thread. Connections accepted before shutdown have their already
    /// decoded and in-flight requests served and flushed; then every
    /// socket is closed and the loop returns.
    pub fn run<S: MapcompService + Sync>(
        &self,
        service: &S,
        cpu_workers: usize,
    ) -> std::io::Result<()> {
        let cpu_workers = cpu_workers.max(1);
        self.listener.set_nonblocking(true)?;
        self.poller.add(raw_fd(&self.listener), Event::readable(LISTENER_KEY))?;
        let pool = CpuPool::new();
        let result = std::thread::scope(|scope| {
            for _ in 0..cpu_workers {
                scope.spawn(|| self.cpu_worker(&pool, service));
            }
            let result = self.event_loop(&pool, service);
            pool.stop.store(true, Ordering::SeqCst);
            pool.available.notify_all();
            result
        });
        let _ = self.poller.delete(raw_fd(&self.listener));
        result
    }

    /// One CPU worker: pop jobs until the loop stops. The shutdown gate
    /// sits here, at execution time, exactly where the threaded engine
    /// applies it — per-connection execution order makes the two engines'
    /// shutdown semantics coincide.
    fn cpu_worker<S: MapcompService>(&self, pool: &CpuPool, service: &S) {
        loop {
            let job = {
                let mut jobs = pool.lock_jobs();
                loop {
                    if let Some(job) = jobs.pop_front() {
                        self.telemetry.cpu_queue_depth.set(jobs.len() as i64);
                        break Some(job);
                    }
                    if pool.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    jobs = pool.available.wait(jobs).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            let started = Instant::now();
            let reply = if self.is_shutting_down() && !matches!(job.request, Request::Shutdown) {
                Err(ServiceError::new(ErrorCode::Unavailable, "server is shutting down"))
            } else {
                service.call_traced(job.request, job.trace)
            };
            let shutdown = matches!(reply, Ok(Response::ShuttingDown));
            let ok = reply.is_ok();
            let encoded = encode_reply(&reply);
            pool.lock_completions().push(Completion {
                slot: job.slot,
                generation: job.generation,
                seq: job.seq,
                encoded,
                kind: job.kind,
                trace: job.trace,
                ok,
                elapsed: started.elapsed(),
                shutdown,
            });
            let _ = self.poller.notify();
        }
    }

    /// The loop: wait for readiness, drain completions, accept, read,
    /// write, reap, until shutdown has drained everything.
    fn event_loop<S: MapcompService + Sync>(
        &self,
        pool: &CpuPool,
        service: &S,
    ) -> std::io::Result<()> {
        let mut state = LoopState::new();
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.is_shutting_down() && !state.shutdown_handled {
                state.shutdown_handled = true;
                let _ = self.poller.delete(raw_fd(&self.listener));
                for slot in 0..state.slots.len() {
                    let Some(conn) = state.slots[slot].as_mut() else { continue };
                    conn.closing = true;
                    self.flush_and_settle(&mut state, slot);
                }
            }
            if state.shutdown_handled && state.live() == 0 && state.outstanding == 0 {
                return Ok(());
            }

            let timeout = self.wait_timeout();
            match self.poller.wait(&mut events, timeout) {
                Ok(_) => {}
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(error),
            }

            for completion in pool.lock_completions().drain(..).collect::<Vec<_>>() {
                self.apply_completion(&mut state, pool, completion);
            }

            let batch: Vec<Event> = std::mem::take(&mut events);
            for event in batch {
                if event.key == LISTENER_KEY {
                    self.accept_ready(&mut state);
                    continue;
                }
                let slot = event.key - 1;
                if slot >= state.slots.len() || state.slots[slot].is_none() {
                    continue;
                }
                if event.readable {
                    self.conn_readable(&mut state, pool, slot, service);
                }
                if event.writable && state.slots[slot].is_some() {
                    self.flush_and_settle(&mut state, slot);
                }
            }

            // Stream events published by other connections' requests arrive
            // via `notify` without any socket readiness: drain every
            // subscriber's channel into its write buffer.
            for slot in 0..state.slots.len() {
                let is_subscriber =
                    state.slots[slot].as_ref().is_some_and(|conn| conn.subscription.is_some());
                if is_subscriber {
                    self.flush_and_settle(&mut state, slot);
                }
            }

            self.reap_idle(&mut state);
        }
    }

    /// How long to block in the poller: bounded by the idle timeout so
    /// reaping happens even without traffic (completions and external
    /// shutdowns arrive via `notify`, so an unbounded wait is otherwise
    /// fine).
    fn wait_timeout(&self) -> Option<Duration> {
        self.idle_timeout
            .map(|timeout| (timeout / 4).clamp(Duration::from_millis(5), Duration::from_secs(1)))
    }

    /// Accept every pending connection.
    fn accept_ready(&self, state: &mut LoopState) {
        loop {
            match self.listener.accept() {
                Ok((stream, addr)) => {
                    if self.is_shutting_down() {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = raw_fd(&stream);
                    state.generations += 1;
                    let conn = Conn {
                        stream,
                        peer: addr.to_string(),
                        generation: state.generations,
                        read_buf: Vec::new(),
                        scanned: 0,
                        write_buf: Vec::new(),
                        write_pos: 0,
                        next_seq: 0,
                        next_flush: 0,
                        ready: BTreeMap::new(),
                        pending: VecDeque::new(),
                        executing: false,
                        last_progress: Instant::now(),
                        authed: false,
                        wants_write: false,
                        eof: false,
                        closing: false,
                        subscription: None,
                    };
                    let slot = state.insert(conn);
                    if self.poller.add(fd, Event::readable(slot + 1)).is_err() {
                        state.slots[slot] = None;
                        state.free.push(slot);
                        continue;
                    }
                    self.telemetry.connections_accepted.incr();
                    self.telemetry.connections_active.add(1);
                    if let Some(conn) = state.slots[slot].as_ref() {
                        self.log(false, "connection-open", &[("peer", LogValue::Str(&conn.peer))]);
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failures (per-connection resets) leave
                // the listener usable.
                Err(_) => break,
            }
        }
    }

    /// Drain readable bytes, extract frames, dispatch them.
    fn conn_readable<S: MapcompService + Sync>(
        &self,
        state: &mut LoopState,
        pool: &CpuPool,
        slot: usize,
        service: &S,
    ) {
        let mut frames = Vec::new();
        let mut close_error = false;
        {
            let Some(conn) = state.slots[slot].as_mut() else { return };
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        if conn.read_buf.is_empty() {
                            conn.eof = true;
                        } else {
                            // Mid-frame EOF: the stream is torn.
                            close_error = true;
                        }
                        break;
                    }
                    Ok(read) => {
                        conn.read_buf.extend_from_slice(&chunk[..read]);
                        conn.last_progress = Instant::now();
                        while let Some(frame) = take_frame(conn) {
                            match frame {
                                Ok(frame) => frames.push(frame),
                                Err(()) => {
                                    close_error = true;
                                    break;
                                }
                            }
                        }
                        if close_error || conn.read_buf.len() as u64 > MAX_FRAME_BYTES {
                            close_error = true;
                            break;
                        }
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close_error = true;
                        break;
                    }
                }
            }
        }
        for frame in frames {
            if state.slots[slot].is_none() {
                return;
            }
            self.process_frame(state, pool, slot, frame, service);
        }
        if close_error {
            self.close_conn(state, slot, false);
        } else if state.slots[slot].is_some() {
            self.flush_and_settle(state, slot);
        }
    }

    /// Decode one frame and either queue its request on the connection's
    /// pipeline or reply immediately (malformed frame, missing auth).
    /// `Request::Subscribe` is handled inline — opening a stream is a hub
    /// registration, not CPU work, and the connection's pipeline ends there.
    fn process_frame<S: MapcompService + Sync>(
        &self,
        state: &mut LoopState,
        pool: &CpuPool,
        slot: usize,
        frame: String,
        service: &S,
    ) {
        self.telemetry.frame_bytes_read.add(frame.len() as u64);
        if state.slots[slot].as_ref().is_some_and(|conn| conn.subscription.is_some()) {
            // A subscribed connection is a one-way stream; a peer that
            // keeps sending frames is violating the protocol.
            self.close_conn(state, slot, false);
            return;
        }
        let decoded = decode_request_frame(&frame);
        let Some(conn) = state.slots[slot].as_mut() else { return };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match decoded {
            Ok((request, trace, auth)) => {
                let kind = request.kind();
                if let (false, Some(expected)) = (conn.authed, &self.auth_token) {
                    conn.authed =
                        auth.as_deref().is_some_and(|token| token_matches(expected, token));
                }
                if self.auth_token.is_some() && !conn.authed {
                    self.immediate_reply(conn, seq, kind, trace, Err(auth_required()));
                } else if let Request::Subscribe { from_generation, from_seq } = request {
                    let from = Position::new(from_generation, from_seq);
                    let poller = Arc::clone(&self.poller);
                    let wake: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
                        let _ = poller.notify();
                    });
                    match service.subscribe(from, wake) {
                        Ok(mut subscription) => {
                            // The ack and the replay are staged as one
                            // in-order unit at this frame's sequence; live
                            // tail events follow via `drain_subscription`.
                            let mut encoded = encode_reply(&Ok(Response::Subscribed {
                                position: subscription.ack,
                            }));
                            for chunk in subscription.replay.drain(..) {
                                encoded.push_str(&encode_reply(&Ok(Response::Delta(
                                    DeltaChunkPayload {
                                        first: chunk.first,
                                        last: chunk.last,
                                        chunk: chunk.text.to_string(),
                                    },
                                ))));
                            }
                            conn.ready.insert(seq, encoded);
                            conn.subscription = Some(subscription);
                            self.log_request(&conn.peer, kind, trace, true, Duration::ZERO);
                        }
                        // Stale or unavailable: the peer gets the error and
                        // the connection stays usable (a follower follows up
                        // with a `snapshot` request on the same socket).
                        Err(error) => self.immediate_reply(conn, seq, kind, trace, Err(error)),
                    }
                } else if conn.pending.len() >= self.queue_limit {
                    // This connection's pipeline is already full: shed
                    // before the request ever reaches the shared queue.
                    self.telemetry.busy_rejected.incr();
                    self.immediate_reply(conn, seq, kind, trace, Err(busy()));
                } else {
                    conn.pending.push_back((seq, request, trace, kind));
                }
            }
            // A malformed frame is reported to the peer; the connection
            // survives (frames are line-delimited, so the stream is
            // already re-synchronised at the next frame boundary).
            Err(error) => self.immediate_reply(conn, seq, "?", None, Err(error)),
        }
        self.pump(state, pool, slot);
    }

    /// Encode a reply produced without a CPU worker (protocol error, auth
    /// refusal, busy shed) and stage it at its sequence position.
    fn immediate_reply(
        &self,
        conn: &mut Conn,
        seq: u64,
        kind: &str,
        trace: Option<u64>,
        reply: Result<Response, ServiceError>,
    ) {
        let ok = reply.is_ok();
        let encoded = encode_reply(&reply);
        conn.ready.insert(seq, encoded);
        self.log_request(&conn.peer, kind, trace, ok, Duration::ZERO);
    }

    /// Move the front of a connection's pipeline into the CPU queue if the
    /// connection has no request executing. Strict per-connection order:
    /// at most one of a connection's requests occupies the pool at a time.
    fn pump(&self, state: &mut LoopState, pool: &CpuPool, slot: usize) {
        let LoopState { slots, outstanding, .. } = state;
        let Some(conn) = slots[slot].as_mut() else { return };
        if conn.executing {
            return;
        }
        while let Some((seq, request, trace, kind)) = conn.pending.pop_front() {
            let mut jobs = pool.lock_jobs();
            if jobs.len() >= self.queue_limit {
                drop(jobs);
                // The shared queue is saturated: shed and try the next
                // pending request (a worker may free up in between).
                self.telemetry.busy_rejected.incr();
                self.immediate_reply(conn, seq, kind, trace, Err(busy()));
                continue;
            }
            jobs.push_back(Job { slot, generation: conn.generation, seq, request, trace, kind });
            self.telemetry.cpu_queue_depth.set(jobs.len() as i64);
            drop(jobs);
            *outstanding += 1;
            conn.executing = true;
            pool.available.notify_one();
            return;
        }
    }

    /// Apply one worker completion: stage the reply, resume the pipeline,
    /// flush.
    fn apply_completion(&self, state: &mut LoopState, pool: &CpuPool, completion: Completion) {
        state.outstanding -= 1;
        if completion.shutdown {
            self.begin_shutdown();
        }
        let Some(conn) = state.slots.get_mut(completion.slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.generation != completion.generation {
            return;
        }
        conn.executing = false;
        conn.ready.insert(completion.seq, completion.encoded);
        if completion.shutdown {
            conn.closing = true;
        }
        let peer = conn.peer.clone();
        self.log_request(
            &peer,
            completion.kind,
            completion.trace,
            completion.ok,
            completion.elapsed,
        );
        self.pump(state, pool, completion.slot);
        self.flush_and_settle(state, completion.slot);
    }

    /// One request log line, mirroring the threaded engine's format.
    fn log_request(&self, peer: &str, kind: &str, trace: Option<u64>, ok: bool, elapsed: Duration) {
        let slow = self.slow_threshold.is_some_and(|threshold| elapsed >= threshold);
        if self.log_format.is_none() && !slow {
            return;
        }
        let trace = trace.map(|id| format!("{id:016x}"));
        let mut fields = vec![
            ("peer", LogValue::Str(peer)),
            ("kind", LogValue::Str(kind)),
            ("ms", LogValue::F64(elapsed.as_secs_f64() * 1e3)),
            ("ok", LogValue::Bool(ok)),
        ];
        if let Some(trace) = &trace {
            fields.push(("trace", LogValue::Str(trace)));
        }
        if slow {
            fields.push(("slow", LogValue::Bool(true)));
        }
        self.log(slow, if slow { "slow-request" } else { "request" }, &fields);
    }

    /// Flush in-order replies into the write buffer, drain it as far as
    /// the socket accepts, fix up write interest, and close the connection
    /// if it has reached its end state.
    fn flush_and_settle(&self, state: &mut LoopState, slot: usize) {
        let mut close = None;
        {
            let Some(conn) = state.slots[slot].as_mut() else { return };
            // Stage every reply whose turn has come.
            while let Some(encoded) = conn.ready.remove(&conn.next_flush) {
                self.telemetry.frame_bytes_written.add(encoded.len() as u64);
                conn.write_buf.extend_from_slice(encoded.as_bytes());
                conn.next_flush += 1;
            }
            self.drain_subscription(conn);
            // Drain.
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        close = Some(false);
                        break;
                    }
                    Ok(written) => conn.write_pos += written,
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = Some(false);
                        break;
                    }
                }
            }
            if conn.write_pos == conn.write_buf.len() && !conn.write_buf.is_empty() {
                conn.write_buf.clear();
                conn.write_pos = 0;
            }
            if close.is_none() {
                // Register write interest only while bytes wait.
                let needs_write = conn.write_pos < conn.write_buf.len();
                if needs_write != conn.wants_write {
                    let interest =
                        if needs_write { Event::all(slot + 1) } else { Event::readable(slot + 1) };
                    if self.poller.modify(raw_fd(&conn.stream), interest).is_ok() {
                        conn.wants_write = needs_write;
                    }
                }
                if (conn.closing || conn.eof) && conn.quiesced() {
                    close = Some(true);
                }
            }
        }
        if let Some(ok) = close {
            self.close_conn(state, slot, ok);
        }
    }

    /// Stage pending replication stream events into a subscribed
    /// connection's write buffer — only once every request reply (the
    /// `subscribed` ack and its bundled replay) has been staged, so the
    /// stream order on the wire is ack, replay, live tail.
    fn drain_subscription(&self, conn: &mut Conn) {
        let Some(subscription) = conn.subscription.as_ref() else { return };
        if conn.next_flush != conn.next_seq {
            return;
        }
        let mut staged = false;
        // A disconnected sender (the hub was dropped) simply ends the
        // stream; the follower observes silence and reconnects.
        while let Ok(event) = subscription.receiver.try_recv() {
            let reply = match event {
                StreamEvent::Chunk(chunk) => Response::Delta(DeltaChunkPayload {
                    first: chunk.first,
                    last: chunk.last,
                    chunk: chunk.text.to_string(),
                }),
                StreamEvent::Generation(generation) => Response::Generation { generation },
            };
            let encoded = encode_reply(&Ok(reply));
            self.telemetry.frame_bytes_written.add(encoded.len() as u64);
            conn.write_buf.extend_from_slice(encoded.as_bytes());
            staged = true;
        }
        if staged {
            conn.last_progress = Instant::now();
        }
    }

    /// Reap truly idle connections: empty read buffer, quiesced pipeline,
    /// no progress for the idle timeout. Subscribed connections are never
    /// reaped — a quiet replication stream is healthy, not idle.
    fn reap_idle(&self, state: &mut LoopState) {
        let Some(timeout) = self.idle_timeout else { return };
        let idle: Vec<usize> = state
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let idle = conn.subscription.is_none()
                    && conn.read_buf.is_empty()
                    && conn.quiesced()
                    && conn.last_progress.elapsed() >= timeout;
                idle.then_some(slot)
            })
            .collect();
        for slot in idle {
            self.close_conn(state, slot, true);
        }
    }

    /// Deregister and drop a connection, with the close bookkeeping the
    /// threaded engine performs.
    fn close_conn(&self, state: &mut LoopState, slot: usize, ok: bool) {
        let Some(conn) = state.slots[slot].take() else { return };
        state.free.push(slot);
        let _ = self.poller.delete(raw_fd(&conn.stream));
        self.telemetry.connections_active.add(-1);
        self.telemetry.connections_closed.incr();
        self.log(
            false,
            "connection-close",
            &[("peer", LogValue::Str(&conn.peer)), ("ok", LogValue::Bool(ok))],
        );
    }
}

/// The stable `busy` backpressure error.
fn busy() -> ServiceError {
    ServiceError::new(
        ErrorCode::Busy,
        "the server's compose queue is full; retry once in-flight work drains",
    )
}

/// Extract one complete frame from a connection's read buffer, if its
/// `end` terminator line has arrived. `Err(())` means the frame bytes are
/// not valid UTF-8 (the connection is torn). Same incremental line scan as
/// the threaded engine's `FrameReader`.
fn take_frame(conn: &mut Conn) -> Option<Result<String, ()>> {
    while let Some(offset) = conn.read_buf[conn.scanned..].iter().position(|&b| b == b'\n') {
        let line_end = conn.scanned + offset;
        let line = &conn.read_buf[conn.scanned..line_end];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        conn.scanned = line_end + 1;
        if line == FRAME_END.as_bytes() {
            let rest = conn.read_buf.split_off(conn.scanned);
            let frame = std::mem::replace(&mut conn.read_buf, rest);
            conn.scanned = 0;
            return Some(String::from_utf8(frame).map_err(|_| ()));
        }
    }
    None
}

impl std::fmt::Debug for EventServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventServer")
            .field("addr", &self.listener.local_addr().ok())
            .field("idle_timeout", &self.idle_timeout)
            .field("queue_limit", &self.queue_limit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::LocalService;
    use crate::wire;
    use mapcomp_catalog::Catalog;
    use std::io::BufReader;

    fn chain_catalog(hops: usize) -> Catalog {
        use mapcomp_algebra::{parse_constraints, Signature};
        let mut catalog = Catalog::new();
        for i in 0..=hops {
            catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..hops {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn event_server_round_trips_requests_and_shuts_down_cleanly() {
        let service = LocalService::new(chain_catalog(4), 2);
        let server = EventServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 2).unwrap());

            let client = Client::connect(&addr).unwrap();
            assert_eq!(client.call(Request::Ping).unwrap(), Response::Pong);
            let remote =
                client.call(Request::ComposePath { from: "v0".into(), to: "v4".into() }).unwrap();
            let local = LocalService::new(chain_catalog(4), 2)
                .call(Request::ComposePath { from: "v0".into(), to: "v4".into() })
                .unwrap();
            assert_eq!(remote, local);

            let error = client
                .call(Request::ComposePath { from: "v4".into(), to: "v0".into() })
                .unwrap_err();
            assert_eq!(error.code, ErrorCode::NoPath);

            // Far more concurrent connections than CPU workers.
            let extras: Vec<Client> = (0..8).map(|_| Client::connect(&addr).unwrap()).collect();
            for extra in &extras {
                assert_eq!(extra.call(Request::Ping).unwrap(), Response::Pong);
            }

            assert_eq!(client.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });
        assert!(server.is_shutting_down());
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let service = LocalService::new(chain_catalog(4), 2);
        let server = EventServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 2).unwrap());

            let raw = std::net::TcpStream::connect(addr).unwrap();
            raw.set_nodelay(true).unwrap();
            let mut writer = raw.try_clone().unwrap();
            let mut reader = BufReader::new(raw);
            // Write a whole pipeline before reading anything.
            let requests = [
                Request::Ping,
                Request::ComposePath { from: "v0".into(), to: "v4".into() },
                Request::ComposePath { from: "v9".into(), to: "v0".into() },
                Request::Ping,
                Request::Stats,
            ];
            let mut burst = String::new();
            for request in &requests {
                burst.push_str(&wire::encode_request(request));
            }
            writer.write_all(burst.as_bytes()).unwrap();
            writer.flush().unwrap();
            // The replies arrive in request order.
            let mut replies = Vec::new();
            for _ in &requests {
                let frame = wire::read_frame(&mut reader).unwrap().unwrap();
                replies.push(wire::decode_reply(&frame).unwrap());
            }
            assert_eq!(replies[0], Ok(Response::Pong));
            assert!(matches!(replies[1], Ok(Response::Composed(_))));
            assert_eq!(replies[2].as_ref().unwrap_err().code, ErrorCode::UnknownSchema);
            assert_eq!(replies[3], Ok(Response::Pong));
            assert!(matches!(replies[4], Ok(Response::Stats(_))));

            writer.write_all(wire::encode_request(&Request::Shutdown).as_bytes()).unwrap();
            writer.flush().unwrap();
            let frame = wire::read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(wire::decode_reply(&frame).unwrap().unwrap(), Response::ShuttingDown);
        });
    }

    #[test]
    fn cache_info_round_trips_over_the_event_engine() {
        let service = LocalService::new(chain_catalog(3), 2);
        let server = EventServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 1).unwrap());

            let client = Client::connect(&addr).unwrap();
            client.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap();
            let Response::CacheInfo(info) = client.call(Request::CacheInfo).unwrap() else {
                panic!("expected a cache-info reply");
            };
            assert!(!info.segments.is_empty());
            let inserted: usize = info.segments.iter().map(|s| s.insertions).sum();
            assert!(inserted > 0, "composing populated the memo cache: {info:?}");

            client.call(Request::Shutdown).unwrap();
        });
    }
}
