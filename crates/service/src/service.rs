//! The service trait and its in-process backend.
//!
//! [`MapcompService`] is the one seam every front end programs against: the
//! CLI's catalog mode calls a [`LocalService`] directly, `mapcomp client`
//! calls a [`crate::Client`] over TCP, and both go through the same
//! `fn call(&self, Request) -> Result<Response, ServiceError>` — which is
//! what makes the transports interchangeable and testable against each
//! other.
//!
//! [`LocalService`] wraps a [`SharedSession`] (so one instance serves
//! concurrent callers — the TCP server hands it to every connection worker)
//! and optionally binds to an on-disk catalog document + `.memo` sidecar,
//! persisting after every state-changing request the way one CLI invocation
//! always did. Sidecar rewrites go through [`SidecarWriter`], which takes
//! the cross-process `.lock` file, so a server and stray CLI invocations on
//! the same catalog cannot tear each other's sidecars.

use std::path::PathBuf;

use mapcomp_algebra::parse_document;
use mapcomp_catalog::{save_state, Catalog, SessionConfig, SharedSession, SidecarWriter};
use mapcomp_compose::Registry;

use crate::api::{ChainPayload, MappingInfo, Request, Response, ServiceError, StatsPayload};

/// The most worker threads a single `ComposeBatch` request may fan across,
/// regardless of what the peer asked for (a backend configured with more at
/// construction time keeps its own, higher bound).
pub const MAX_REQUEST_WORKERS: usize = 64;

/// The transport-agnostic service interface: one call, one typed reply.
///
/// Implementations must be callable through a shared reference — the TCP
/// server shares one backend across its connection workers, and clients are
/// shared across threads in the equivalence tests.
pub trait MapcompService {
    /// Execute one request.
    fn call(&self, request: Request) -> Result<Response, ServiceError>;
}

/// On-disk binding of a [`LocalService`]: the catalog document plus its
/// version/cache sidecar.
struct Persistence {
    catalog_file: PathBuf,
    sidecar: SidecarWriter,
}

/// The in-process backend: a [`SharedSession`] behind the service API,
/// optionally persisted to a catalog file + sidecar.
pub struct LocalService {
    session: SharedSession,
    batch_workers: usize,
    persistence: Option<Persistence>,
    /// Serialises `AddDocument` handling: the dry-run validation against a
    /// snapshot and the subsequent ingest must be one atomic step, or a
    /// concurrent ingest could invalidate the validation (e.g. redefine a
    /// schema arity between the check and the apply) and leave the shared
    /// catalog half-applied after an error. Compose and invalidate traffic
    /// is unaffected — it never takes this lock.
    ingest: std::sync::Mutex<()>,
}

impl LocalService {
    /// An in-memory service over `catalog` with the standard registry and
    /// default configuration; `workers` bounds parallel batch fan-out.
    pub fn new(catalog: Catalog, workers: usize) -> Self {
        LocalService::with_config(catalog, Registry::standard(), SessionConfig::default(), workers)
    }

    /// An in-memory service with an explicit registry and configuration.
    pub fn with_config(
        catalog: Catalog,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        LocalService {
            session: SharedSession::with_config(catalog, registry, config, workers),
            batch_workers: workers,
            persistence: None,
            ingest: std::sync::Mutex::new(()),
        }
    }

    /// Open a service bound to an on-disk catalog: parse the document (a
    /// missing file is an empty catalog when `allow_missing`), re-apply the
    /// sidecar's version manifest, and warm the memo cache from it. Every
    /// state-changing request then persists back through the sidecar's
    /// cross-process lock.
    pub fn open(
        catalog_file: impl Into<PathBuf>,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
        allow_missing: bool,
    ) -> Result<Self, ServiceError> {
        let catalog_file: PathBuf = catalog_file.into();
        let mut catalog = Catalog::new();
        match std::fs::read_to_string(&catalog_file) {
            Ok(text) => {
                let document = parse_document(&text).map_err(|error| {
                    ServiceError::parse(format!("{}: parse error: {error}", catalog_file.display()))
                })?;
                catalog.from_document(&document)?;
            }
            // Only genuine absence may be ignored: any other read failure
            // must not silently start from an empty catalog and overwrite
            // the existing file on save.
            Err(error) if allow_missing && error.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => {
                return Err(ServiceError::transport(format!(
                    "cannot read {}: {error}",
                    catalog_file.display()
                )))
            }
        }
        let sidecar = SidecarWriter::new(sidecar_path(&catalog_file));
        let (manifest, cache) = sidecar.load();
        catalog.restore_versions(&manifest);
        let workers = workers.max(1);
        let mut session = SharedSession::with_config(catalog, registry, config, workers);
        session.restore_cache(cache);
        Ok(LocalService {
            session,
            batch_workers: workers,
            persistence: Some(Persistence { catalog_file, sidecar }),
            ingest: std::sync::Mutex::new(()),
        })
    }

    /// The underlying shared session.
    pub fn session(&self) -> &SharedSession {
        &self.session
    }

    /// Write the catalog document and the sidecar (versions, statistics,
    /// memo cache) back to disk; a no-op for in-memory services. Both files
    /// are replaced by atomic renames inside one critical section of the
    /// sidecar's cross-process lock, so a concurrent reader never sees a
    /// truncated file or one writer's document paired with another's
    /// sidecar.
    pub fn persist(&self) -> Result<(), ServiceError> {
        let Some(persistence) = &self.persistence else { return Ok(()) };
        // The snapshot is taken by the closure *inside* the sidecar's write
        // critical section, so concurrent persists write in snapshot order
        // — a request holding an older snapshot can never clobber a newer,
        // already-acknowledged state on disk.
        persistence
            .sidecar
            .rewrite_with_document(&persistence.catalog_file, || {
                let catalog = self.session.catalog().snapshot();
                let cache = self.session.cache().collect();
                (catalog.to_document_string(), save_state(&catalog, &cache))
            })
            .map_err(|error| {
                ServiceError::transport(format!(
                    "cannot write {} / {}: {error}",
                    persistence.catalog_file.display(),
                    persistence.sidecar.path().display()
                ))
            })
    }

    /// Persist after a compose request that touched durable state: new
    /// memoised compositions (`compose_calls`) or served cache hits
    /// (`cache_hits` — the cumulative hit counters and LRU recency are part
    /// of the sidecar since PR 2, so warm runs must keep accumulating them
    /// across processes). Only requests that neither composed nor hit the
    /// cache — failed resolutions, empty batches — skip the disk round
    /// trip.
    fn persist_if_used(&self, compose_calls: usize, cache_hits: usize) -> Result<(), ServiceError> {
        if compose_calls > 0 || cache_hits > 0 {
            self.persist()?;
        }
        Ok(())
    }

    /// Capture the stats payload: catalog counts, per-mapping registration
    /// info, cumulative session statistics.
    pub fn stats_payload(&self) -> StatsPayload {
        let catalog = self.session.catalog().snapshot();
        let entries = catalog
            .mappings()
            .map(|entry| MappingInfo {
                name: entry.name.clone(),
                source: entry.source.clone(),
                target: entry.target.clone(),
                version: entry.version,
                hash: entry.hash.0,
                constraints: entry.constraints.len(),
                history: entry.history.iter().map(|&(v, h)| (v, h.0)).collect(),
            })
            .collect();
        StatsPayload {
            schemas: catalog.schema_count(),
            mappings: catalog.mapping_count(),
            entries,
            session: self.session.stats(),
            cache_capacity: self.session.config().cache_capacity,
        }
    }
}

/// The sidecar path of a catalog file: `<file>.memo`, matching the CLI's
/// historical convention.
pub fn sidecar_path(catalog_file: &std::path::Path) -> PathBuf {
    let mut name = catalog_file.file_name().unwrap_or_default().to_os_string();
    name.push(".memo");
    catalog_file.with_file_name(name)
}

impl MapcompService for LocalService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        match request {
            Request::Ping => Ok(Response::Pong),
            Request::AddDocument { text } => {
                let document = parse_document(&text)
                    .map_err(|error| ServiceError::parse(format!("parse error: {error}")))?;
                // Dry-run against a snapshot first, under the ingest lock
                // so no concurrent ingest can invalidate the validation: a
                // rejected document (unknown schema, arity conflict) leaves
                // the shared catalog untouched instead of half-applied.
                let _ingest = self.ingest.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                self.session.catalog().snapshot().from_document(&document)?;
                let touched = self.session.ingest_document(&document)?;
                self.persist()?;
                let catalog = self.session.catalog();
                Ok(Response::Added {
                    touched,
                    schemas: catalog.schema_count(),
                    mappings: catalog.mapping_count(),
                })
            }
            Request::ComposePath { from, to } => {
                let result = self.session.compose_path(&from, &to)?;
                self.persist_if_used(result.compose_calls, result.cache_hits)?;
                Ok(Response::Composed(ChainPayload::from_result(&result)))
            }
            Request::ComposeNames { names } => {
                if names.is_empty() {
                    return Err(ServiceError::protocol(
                        "compose-names requires at least one mapping name",
                    ));
                }
                let result = self.session.compose_names(&names)?;
                self.persist_if_used(result.compose_calls, result.cache_hits)?;
                Ok(Response::Composed(ChainPayload::from_result(&result)))
            }
            Request::ComposeBatch { requests, workers } => {
                // `0` means "the backend's configured default"; anything a
                // peer supplies is clamped so a hostile request cannot make
                // the server attempt an absurd number of scoped threads.
                let workers = if workers == 0 {
                    self.batch_workers
                } else {
                    workers.min(self.batch_workers.max(MAX_REQUEST_WORKERS))
                };
                let results = self.session.compose_batch_parallel_with(&requests, workers);
                let (composed, hits) = results
                    .iter()
                    .filter_map(|result| result.as_ref().ok())
                    .fold((0usize, 0usize), |(calls, hits), result| {
                        (calls + result.compose_calls, hits + result.cache_hits)
                    });
                self.persist_if_used(composed, hits)?;
                Ok(Response::Batch(
                    results
                        .into_iter()
                        .map(|result| {
                            result
                                .map(|result| ChainPayload::from_result(&result))
                                .map_err(ServiceError::from)
                        })
                        .collect(),
                ))
            }
            Request::Invalidate { mapping } => {
                self.session.catalog().mapping(&mapping)?;
                let dropped = self.session.invalidate(&mapping);
                self.persist()?;
                Ok(Response::Invalidated { dropped })
            }
            Request::Stats => Ok(Response::Stats(self.stats_payload())),
            Request::Shutdown => {
                // The backend's part of a shutdown is durability; stopping
                // the accept loop is the transport's job (see
                // [`crate::server::Server`]).
                self.persist()?;
                Ok(Response::ShuttingDown)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_document(hops: usize) -> String {
        let mut text = String::new();
        for i in 0..=hops {
            text.push_str(&format!("schema v{i} {{ R{i}/1; }}\n"));
        }
        for i in 0..hops {
            text.push_str(&format!(
                "mapping m{i} : v{i} -> v{} {{ R{i} <= R{}; }}\n",
                i + 1,
                i + 1
            ));
        }
        text
    }

    #[test]
    fn local_service_serves_the_full_request_surface() {
        let service = LocalService::new(Catalog::new(), 2);
        assert_eq!(service.call(Request::Ping).unwrap(), Response::Pong);

        let added = service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        assert_eq!(
            added,
            Response::Added {
                touched: vec!["m0".into(), "m1".into(), "m2".into()],
                schemas: 4,
                mappings: 3
            }
        );

        let Response::Composed(payload) =
            service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(payload.path, vec!["m0", "m1", "m2"]);
        assert_eq!(payload.compose_calls, 2);
        let chain = payload.to_chain().unwrap();
        assert!(chain.residual.is_empty());

        let Response::Batch(items) = service
            .call(Request::ComposeBatch {
                requests: vec![
                    ("v0".into(), "v2".into()),
                    ("v3".into(), "v0".into()), // unreachable
                ],
                workers: 2,
            })
            .unwrap()
        else {
            panic!("expected a batch reply");
        };
        assert!(items[0].is_ok());
        assert_eq!(items[1].as_ref().unwrap_err().code, crate::api::ErrorCode::NoPath);

        let Response::Invalidated { dropped } =
            service.call(Request::Invalidate { mapping: "m1".into() }).unwrap()
        else {
            panic!("expected an invalidated reply");
        };
        assert!(dropped > 0);

        let Response::Stats(stats) = service.call(Request::Stats).unwrap() else {
            panic!("expected a stats reply");
        };
        assert_eq!((stats.schemas, stats.mappings), (4, 3));
        assert_eq!(stats.entries.len(), 3);
        // compose-path plus the successful batch item (the unreachable one
        // fails before counting as a composed chain).
        assert_eq!(stats.session.chains_composed, 2);

        assert_eq!(service.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let service = LocalService::new(Catalog::new(), 1);
        let error =
            service.call(Request::ComposePath { from: "a".into(), to: "b".into() }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::UnknownSchema);
        let error = service.call(Request::AddDocument { text: "schema {".into() }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::Parse);
        let error = service.call(Request::ComposeNames { names: vec![] }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::Protocol);
    }

    #[test]
    fn opened_service_persists_across_reopen() {
        let dir = std::env::temp_dir();
        let file = dir.join(format!("mapcomp_service_persist_{}.doc", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(sidecar_path(&file));

        let service =
            LocalService::open(&file, Registry::standard(), SessionConfig::default(), 2, true)
                .unwrap();
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        let Response::Composed(first) =
            service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(first.compose_calls, 2);
        drop(service);

        // A fresh service over the same files: warm cache, composing is free.
        let reopened =
            LocalService::open(&file, Registry::standard(), SessionConfig::default(), 2, false)
                .unwrap();
        let Response::Composed(second) =
            reopened.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(second.compose_calls, 0, "sidecar-restored cache must serve the chain");
        assert_eq!(second.document, first.document, "content is byte-identical across restarts");

        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(sidecar_path(&file));
    }
}
