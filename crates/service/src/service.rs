//! The service trait and its in-process backend.
//!
//! [`MapcompService`] is the one seam every front end programs against: the
//! CLI's catalog mode calls a [`LocalService`] directly, `mapcomp client`
//! calls a [`crate::Client`] over TCP, and both go through the same
//! `fn call(&self, Request) -> Result<Response, ServiceError>` — which is
//! what makes the transports interchangeable and testable against each
//! other.
//!
//! [`LocalService`] wraps a [`SharedSession`] (so one instance serves
//! concurrent callers — the TCP server hands it to every connection worker)
//! and optionally binds to an on-disk catalog document + `.memo` sidecar.
//! Durability after a state-changing request comes in two flavours
//! ([`PersistMode`]):
//!
//! * **Incremental** (the default): the request appends delta records —
//!   changed catalog declarations, new memo entries, evictions,
//!   statistics increments — through the sidecar's single-writer append
//!   protocol, so the I/O cost is proportional to the change, not to the
//!   catalog. The log is folded back into snapshot form by *compaction*:
//!   at shutdown, when a configurable append-count or byte threshold is
//!   crossed ([`PersistPolicy`]), or on an explicit [`Request::Compact`].
//!   Recovery replays the delta tail over the last snapshot and tolerates
//!   a torn final line from a crash mid-append. Cache hits are not
//!   journaled, so restored LRU recency is exact from a compacted
//!   snapshot but approximate (insertion-ordered) across the delta tail —
//!   a performance nuance, never a correctness one.
//! * **FullRewrite** (the legacy behaviour, kept for comparison — see the
//!   `fig12_persistence` bench): every state-changing request rewrites the
//!   whole document + sidecar atomically, which is O(catalog + cache) I/O
//!   per request.
//!
//! Either way, writes go through [`SidecarWriter`], which takes the
//! cross-process `.lock` file, so a server and stray CLI invocations on the
//! same catalog cannot tear each other's state. The on-disk grammar is
//! specified in `docs/PERSISTENCE.md`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use mapcomp_algebra::{parse_document, Instance};
use mapcomp_catalog::{
    render_cache_entry, render_generation_marker, render_mapping_decl, render_migration_snapshot,
    render_positioned_delta, render_schema_decl, save_state, CacheEvent, CacheStats, Catalog,
    DeltaRecord, MemoKey, Position, SessionConfig, SharedSession, SidecarWriter, VersionManifest,
};
use mapcomp_compose::{parse_update, parse_updates, DifferentialChase, Registry, Sign};
use mapcomp_replication::{LogChunk, ReplicationHub, SubscribeError, Subscription};
use mapcomp_telemetry::metrics::{Counter, Histogram, MetricsRegistry, LATENCY_BOUNDS_US};

use crate::api::{
    AnalysisPayload, CacheInfoPayload, ChainPayload, ErrorCode, MappingInfo, MigratePayload,
    ReplicationInfo, Request, Response, SegmentCacheInfo, ServiceError, SnapshotPayload,
    StatsPayload,
};

/// The most worker threads a single `ComposeBatch` request may fan across,
/// regardless of what the peer asked for (a backend configured with more at
/// construction time keeps its own, higher bound).
pub const MAX_REQUEST_WORKERS: usize = 64;

/// The transport-agnostic service interface: one call, one typed reply.
///
/// Implementations must be callable through a shared reference — the TCP
/// server shares one backend across its connection workers, and clients are
/// shared across threads in the equivalence tests.
pub trait MapcompService {
    /// Execute one request.
    fn call(&self, request: Request) -> Result<Response, ServiceError>;

    /// Execute one request under a trace context. `trace` is a trace ID the
    /// caller wants propagated (over the wire for remote transports, into
    /// the span ring for local ones); `None` means "no explicit trace".
    ///
    /// The default implementation ignores the trace and delegates to
    /// [`MapcompService::call`], so third-party backends stay source
    /// compatible; [`LocalService`] roots a span per request and
    /// [`crate::Client`] forwards the ID as the optional `trace` frame
    /// field.
    fn call_traced(&self, request: Request, trace: Option<u64>) -> Result<Response, ServiceError> {
        let _ = trace;
        self.call(request)
    }

    /// Open a replication subscription resuming at `from`; `wake` is called
    /// after events are enqueued so a parked event loop re-polls. Unlike
    /// [`MapcompService::call`], this is a long-lived stream, so it gets its
    /// own seam — the event-loop front end handles `Request::Subscribe`
    /// through it instead of the one-shot dispatch.
    ///
    /// The default implementation refuses: only backends that own a
    /// [`ReplicationHub`] (a [`LocalService`] with replication enabled) can
    /// serve streams, and remote clients follow with their own connection
    /// rather than proxying one through [`crate::Client`].
    fn subscribe(
        &self,
        from: Position,
        wake: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Subscription, ServiceError> {
        let _ = (from, wake);
        Err(ServiceError::new(
            ErrorCode::Unavailable,
            "this backend does not serve replication subscriptions",
        ))
    }
}

/// How a persistent [`LocalService`] makes a state-changing request
/// durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PersistMode {
    /// Append delta records to the sidecar; compact on thresholds, at
    /// shutdown, and on request. Durability cost is proportional to the
    /// change.
    #[default]
    Incremental,
    /// Rewrite the whole document + sidecar per state-changing request (the
    /// pre-incremental behaviour, O(catalog + cache) I/O per request). Kept
    /// behind this flag for the `fig12_persistence` comparison and for
    /// operators who want every request to leave a fresh snapshot.
    FullRewrite,
}

/// Durability policy of a persistent [`LocalService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistPolicy {
    /// Incremental append vs. legacy full rewrite.
    pub mode: PersistMode,
    /// Compact once this many delta appends have accumulated since the last
    /// compaction (`None` = no append-count trigger).
    pub compact_appends: Option<usize>,
    /// Compact once the sidecar file exceeds this many bytes (`None` = no
    /// byte trigger).
    pub compact_bytes: Option<u64>,
}

impl Default for PersistPolicy {
    fn default() -> Self {
        PersistPolicy {
            mode: PersistMode::Incremental,
            compact_appends: Some(4096),
            compact_bytes: Some(16 * 1024 * 1024),
        }
    }
}

impl PersistPolicy {
    /// The legacy rewrite-everything policy (thresholds are irrelevant:
    /// every request is already a full snapshot).
    pub fn full_rewrite() -> Self {
        PersistPolicy { mode: PersistMode::FullRewrite, compact_appends: None, compact_bytes: None }
    }
}

/// Mutable persistence bookkeeping, under one mutex so concurrent
/// state-changing requests serialise their append/compact decisions.
struct PersistState {
    /// Cache statistics as of the last persisted record, the baseline the
    /// next `delta stats` increment is computed against.
    last_stats: CacheStats,
    /// Delta appends since the last compaction.
    appends: usize,
    /// The log position the next appended delta record will carry
    /// (`generation` advances at every compaction, `seq` with every
    /// positioned `delta` line — see `docs/PERSISTENCE.md`).
    next: Position,
}

/// On-disk binding of a [`LocalService`]: the catalog document plus its
/// version/cache sidecar, and the durability policy.
struct Persistence {
    catalog_file: PathBuf,
    sidecar: SidecarWriter,
    policy: PersistPolicy,
    state: Mutex<PersistState>,
}

impl Persistence {
    fn state(&self) -> MutexGuard<'_, PersistState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One live migration session: the accumulated signed-update history (the
/// durable truth — `delta migrate` records append it, compaction folds it
/// into one absolute `migrate` snapshot line) and the lazily (re)built
/// differential chase engine maintaining the materialized target over it.
#[derive(Default)]
struct MigrationSession {
    /// Every applied update token, in application order.
    history: Vec<String>,
    /// Content hash of the composed chain the engine was compiled against;
    /// a recomposition with a different hash (mapping edited upstream)
    /// forces a rebuild from the folded history.
    chain_hash: u64,
    /// The maintained engine. `None` until first use and after restart —
    /// recovery replays `history` through a fresh full chase rather than
    /// persisting derived state, so the oblivious chase's confluence makes
    /// the rebuilt engine byte-identical to the one that was lost.
    engine: Option<DifferentialChase>,
}

/// Fold a persisted update history into the accumulated source instance.
/// Each token's final effect on a tuple is set membership (present after a
/// trailing `+`, absent after a trailing `-`), so replaying in file order
/// reproduces the exact source the live session had — including across a
/// duplicated suffix batch (a compaction snapshot racing the batch's own
/// delta append), which replays to the same final state.
fn fold_history(history: &[String]) -> Instance {
    let mut source = Instance::new();
    for token in history {
        // Unparsable tokens (a corrupted sidecar line) are skipped, matching
        // the loader's skip-malformed policy everywhere else.
        if let Ok(update) = parse_update(token) {
            match update.sign {
                Sign::Insert => {
                    source.insert(&update.rel, update.tuple);
                }
                Sign::Delete => {
                    source.remove(&update.rel, &update.tuple);
                }
            }
        }
    }
    source
}

/// Pre-registered metric handles for one request kind, so the per-request
/// hot path is three atomic bumps — no registry lock, no label rendering.
struct KindTelemetry {
    kind: &'static str,
    requests: &'static Counter,
    errors: &'static Counter,
    duration_us: &'static Histogram,
}

/// Per-kind service metrics over one registry, registered eagerly at
/// construction for every keyword in [`Request::KINDS`].
struct ServiceTelemetry {
    registry: &'static MetricsRegistry,
    kinds: Vec<KindTelemetry>,
}

impl ServiceTelemetry {
    fn new(registry: &'static MetricsRegistry) -> Self {
        let kinds = Request::KINDS
            .iter()
            .map(|&kind| {
                let labels = [("kind", kind)];
                KindTelemetry {
                    kind,
                    requests: registry.counter(
                        "service_requests_total",
                        "Requests handled, per request kind.",
                        &labels,
                    ),
                    errors: registry.counter(
                        "service_errors_total",
                        "Requests that returned a service error, per request kind.",
                        &labels,
                    ),
                    duration_us: registry.histogram(
                        "service_request_duration_us",
                        "Request handling latency in microseconds, per request kind.",
                        &labels,
                        LATENCY_BOUNDS_US,
                    ),
                }
            })
            .collect();
        ServiceTelemetry { registry, kinds }
    }

    fn for_kind(&self, kind: &str) -> &KindTelemetry {
        // `Request::kind` and `Request::KINDS` are the same keyword list by
        // construction; a miss here is a bug in that pairing.
        self.kinds.iter().find(|entry| entry.kind == kind).expect("unregistered request kind")
    }
}

/// The in-process backend: a [`SharedSession`] behind the service API,
/// optionally persisted to a catalog file + sidecar.
pub struct LocalService {
    session: SharedSession,
    batch_workers: usize,
    persistence: Option<Persistence>,
    telemetry: ServiceTelemetry,
    /// The replication hub, once [`LocalService::enable_replication`] has
    /// been called. Publishes happen under the persistence state mutex, so
    /// subscribers observe appends and compaction boundaries in exactly the
    /// on-disk order.
    hub: OnceLock<Arc<ReplicationHub>>,
    /// Serialises `AddDocument` handling: the dry-run validation against a
    /// snapshot and the subsequent ingest must be one atomic step, or a
    /// concurrent ingest could invalidate the validation (e.g. redefine a
    /// schema arity between the check and the apply) and leave the shared
    /// catalog half-applied after an error. Compose and invalidate traffic
    /// is unaffected — it never takes this lock.
    ingest: std::sync::Mutex<()>,
    /// Live migration sessions keyed `(from, to)`. This mutex is a *leaf*
    /// lock: compaction and snapshot serving take it briefly (to render the
    /// `migrate` snapshot lines) while holding the persistence state mutex,
    /// so no path may wait on the persistence mutex while holding this one.
    migrations: Mutex<std::collections::BTreeMap<(String, String), MigrationSession>>,
    /// Serialises whole `MigrateDelta` requests (apply *and* append), so the
    /// per-session delta-log order always equals the application order —
    /// replaying the log then reproduces the exact accumulated source.
    migrate_order: std::sync::Mutex<()>,
}

impl LocalService {
    /// An in-memory service over `catalog` with the standard registry and
    /// default configuration; `workers` bounds parallel batch fan-out.
    pub fn new(catalog: Catalog, workers: usize) -> Self {
        LocalService::with_config(catalog, Registry::standard(), SessionConfig::default(), workers)
    }

    /// An in-memory service with an explicit registry and configuration.
    pub fn with_config(
        catalog: Catalog,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        LocalService {
            session: SharedSession::with_config(catalog, registry, config, workers),
            batch_workers: workers,
            persistence: None,
            telemetry: ServiceTelemetry::new(mapcomp_telemetry::metrics::global()),
            hub: OnceLock::new(),
            ingest: std::sync::Mutex::new(()),
            migrations: Mutex::new(Default::default()),
            migrate_order: std::sync::Mutex::new(()),
        }
    }

    /// Wrap a prepared session — a restored catalog and an already-warm
    /// memo cache — as an in-memory service. This is the follower's read
    /// surface: the catalog content is owned by the replication stream, so
    /// the service carries no persistence of its own (the follower appends
    /// the leader's chunks to its sidecar verbatim instead).
    pub(crate) fn from_session(session: SharedSession, workers: usize) -> Self {
        LocalService {
            session,
            batch_workers: workers.max(1),
            persistence: None,
            telemetry: ServiceTelemetry::new(mapcomp_telemetry::metrics::global()),
            hub: OnceLock::new(),
            ingest: std::sync::Mutex::new(()),
            migrations: Mutex::new(Default::default()),
            migrate_order: std::sync::Mutex::new(()),
        }
    }

    /// Rebind this service's metrics to `registry` instead of the process
    /// global — the seam the equivalence tests use to give each backend its
    /// own isolated counter space within one test process. A
    /// [`Request::Metrics`] call renders whichever registry the service is
    /// bound to.
    pub fn with_metrics_registry(mut self, registry: &'static MetricsRegistry) -> Self {
        self.telemetry = ServiceTelemetry::new(registry);
        self
    }

    /// Open a service bound to an on-disk catalog with the default
    /// (incremental) [`PersistPolicy`]. See
    /// [`LocalService::open_with_policy`].
    pub fn open(
        catalog_file: impl Into<PathBuf>,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
        allow_missing: bool,
    ) -> Result<Self, ServiceError> {
        LocalService::open_with_policy(
            catalog_file,
            registry,
            config,
            workers,
            allow_missing,
            PersistPolicy::default(),
        )
    }

    /// Open a service bound to an on-disk catalog: parse the document
    /// snapshot, replay the sidecar's delta tail over it (catalog-content
    /// deltas in file order, then the last-wins version manifest), and warm
    /// the memo cache — a torn final sidecar line from a crash mid-append
    /// is dropped, and a leftover `.tmp` from a crash mid-compaction is
    /// simply never read (the rename that would have installed it never
    /// happened). A missing document file is an empty catalog when
    /// `allow_missing` *or* when a sidecar exists (an incremental session
    /// may not have compacted its first snapshot yet). Every state-changing
    /// request then persists according to `policy`.
    pub fn open_with_policy(
        catalog_file: impl Into<PathBuf>,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
        allow_missing: bool,
        policy: PersistPolicy,
    ) -> Result<Self, ServiceError> {
        let catalog_file: PathBuf = catalog_file.into();
        let sidecar = SidecarWriter::new(sidecar_path(&catalog_file));
        let sidecar_exists = sidecar.path().exists();
        let mut catalog = Catalog::new();
        match std::fs::read_to_string(&catalog_file) {
            Ok(text) => {
                let document = parse_document(&text).map_err(|error| {
                    ServiceError::parse(format!("{}: parse error: {error}", catalog_file.display()))
                })?;
                catalog.from_document(&document)?;
            }
            // Only genuine absence may be ignored — and only when the caller
            // allows a fresh catalog or the sidecar proves this catalog
            // exists in log form. Any other read failure must not silently
            // start from an empty catalog and overwrite the file on save.
            Err(error)
                if (allow_missing || sidecar_exists)
                    && error.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => {
                return Err(ServiceError::transport(format!(
                    "cannot read {}: {error}",
                    catalog_file.display()
                )))
            }
        }
        let state = sidecar.load_full();
        let next = state.next_position();
        // Restored migration sessions carry only their persisted update
        // history; the engine (and the chain hash it was compiled for) is
        // rebuilt lazily by the first MigrateDelta request.
        let migrations: std::collections::BTreeMap<(String, String), MigrationSession> = state
            .migrations
            .iter()
            .map(|(key, history)| {
                (key.clone(), MigrationSession { history: history.clone(), ..Default::default() })
            })
            .collect();
        // Replay the delta tail: catalog content first (in append order —
        // later declarations supersede earlier ones), then the recorded
        // versions. A delta that no longer applies is skipped; content
        // hashing makes any cache entries it would have invalidated
        // unreachable anyway.
        for document in &state.doc_deltas {
            let _ = catalog.from_document(document);
        }
        catalog.restore_versions(&state.manifest);
        let workers = workers.max(1);
        let mut session = SharedSession::with_config(catalog, registry, config, workers);
        session.restore_cache(state.cache);
        if policy.mode == PersistMode::Incremental {
            // The journal feeds the append path; it stays disabled in
            // FullRewrite mode (nothing would drain it).
            session.cache().enable_journal();
        }
        let last_stats = session.cache().stats();
        Ok(LocalService {
            session,
            batch_workers: workers,
            persistence: Some(Persistence {
                catalog_file,
                sidecar,
                policy,
                state: Mutex::new(PersistState { last_stats, appends: 0, next }),
            }),
            telemetry: ServiceTelemetry::new(mapcomp_telemetry::metrics::global()),
            hub: OnceLock::new(),
            ingest: std::sync::Mutex::new(()),
            migrations: Mutex::new(migrations),
            migrate_order: std::sync::Mutex::new(()),
        })
    }

    /// The underlying shared session.
    pub fn session(&self) -> &SharedSession {
        &self.session
    }

    /// Render every migration session as its absolute `migrate` snapshot
    /// line, for embedding in a compacted sidecar or a snapshot bootstrap.
    /// Takes the migrations leaf lock briefly; histories are updated before
    /// their delta records are appended, so this rendering always covers
    /// every `delta migrate` line a rewrite is about to discard.
    fn migration_snapshot_lines(&self) -> String {
        let sessions = self.migrations.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for ((from, to), session) in sessions.iter() {
            if session.history.is_empty() {
                continue;
            }
            out.push_str(&render_migration_snapshot(from, to, &session.history));
            out.push('\n');
        }
        out
    }

    /// Fold the sidecar log back into snapshot form: rewrite the catalog
    /// document and the sidecar (versions, statistics, memo cache) from a
    /// fresh snapshot. Returns the sidecar's size before and after; a no-op
    /// `(0, 0)` for in-memory services. Both files are replaced by atomic
    /// renames inside one critical section of the sidecar's cross-process
    /// lock, so a concurrent reader never sees a truncated file or one
    /// writer's document paired with another's sidecar — and a crash
    /// mid-compaction leaves at worst a stray `.tmp` sibling, never a
    /// damaged snapshot.
    pub fn compact(&self) -> Result<(u64, u64), ServiceError> {
        let Some(persistence) = &self.persistence else { return Ok((0, 0)) };
        let _span = mapcomp_telemetry::trace::start_span("persist/compact");
        let mut state = persistence.state();
        let bytes_before = persistence.sidecar.file_len();
        // Every compaction opens a fresh generation: records appended after
        // this snapshot are positioned `(generation+1, 0…)`, and a
        // `generation` header line in the rewritten sidecar says so. This is
        // what lets a replication subscriber know, from positions alone,
        // whether its resume point survived the rewrite.
        let boundary = Position::new(state.next.generation + 1, 0);
        // The snapshot is taken by the closure *inside* the sidecar's write
        // critical section, so concurrent persists write in snapshot order
        // — a request holding an older snapshot can never clobber a newer,
        // already-acknowledged state on disk.
        let mut drained = Vec::new();
        let mut snapshot_stats = None;
        let outcome = persistence.sidecar.rewrite_with_document(&persistence.catalog_file, || {
            // Journal events observed so far describe mutations the
            // snapshot below already contains; drain them *before* taking
            // the snapshot, so anything arriving in between is re-appended
            // later (a harmless duplicate) rather than lost.
            drained = self.session.cache().take_events();
            let catalog = self.session.catalog().snapshot();
            let cache = self.session.cache().collect();
            snapshot_stats = Some(cache.stats());
            let sidecar = format!(
                "{}{}{}",
                render_generation_marker(boundary),
                save_state(&catalog, &cache),
                self.migration_snapshot_lines()
            );
            (catalog.to_document_string(), sidecar)
        });
        if let Err(error) = outcome {
            // Nothing was committed (or at worst only the document rename
            // landed; the delta log still supersedes it on replay): hand
            // the drained events back and keep the old stats baseline, so
            // the acknowledged-but-unwritten state is retried by the next
            // persist instead of silently dropped.
            self.session.cache().requeue_events(drained);
            return Err(ServiceError::transport(format!(
                "cannot write {} / {}: {error}",
                persistence.catalog_file.display(),
                persistence.sidecar.path().display()
            )));
        }
        if let Some(stats) = snapshot_stats {
            state.last_stats = stats;
        }
        state.appends = 0;
        state.next = boundary;
        // The boundary is handed to subscribers while the state mutex is
        // still held, so no publish can interleave between the rewrite and
        // this broadcast: a mid-stream subscriber receives every
        // pre-compaction chunk, then the generation marker — nothing
        // dropped, nothing duplicated.
        if let Some(hub) = self.hub.get() {
            hub.compacted(boundary);
        }
        Ok((bytes_before, persistence.sidecar.file_len()))
    }

    /// Write the full catalog document and sidecar snapshot back to disk; a
    /// no-op for in-memory services. (Compaction and the legacy
    /// [`PersistMode::FullRewrite`] per-request persistence are the same
    /// operation.)
    pub fn persist(&self) -> Result<(), ServiceError> {
        self.compact().map(|_| ())
    }

    /// Make one state-changing request durable according to the configured
    /// [`PersistPolicy`]: in incremental mode, append the request's catalog
    /// `deltas` and version `manifest` lines plus everything the cache
    /// journal accumulated — new memo entries, evictions, a statistics
    /// increment — as one contiguous chunk; in full-rewrite mode, snapshot
    /// everything. Every `delta` line is stamped with the next `(generation,
    /// seq)` position, and when replication is enabled the byte-exact chunk
    /// is published to the hub inside the same critical section, so the
    /// stream order is the file order. An append that pushes the log over a
    /// compaction threshold triggers compaction; a missing document file
    /// makes the first persist a compaction too, so the snapshot the deltas
    /// replay over always exists.
    fn persist_change(&self, deltas: Vec<DeltaRecord>, manifest: &str) -> Result<(), ServiceError> {
        let Some(persistence) = &self.persistence else { return Ok(()) };
        if persistence.policy.mode == PersistMode::FullRewrite || !persistence.catalog_file.exists()
        {
            return self.persist();
        }
        let _span = mapcomp_telemetry::trace::start_span("persist/append");
        let mut chunk = String::new();
        {
            let mut state = persistence.state();
            let mut position = state.next;
            let mut range: Option<(Position, Position)> = None;
            let push_delta = |chunk: &mut String,
                              position: &mut Position,
                              range: &mut Option<(Position, Position)>,
                              record: &DeltaRecord| {
                let first = range.map_or(*position, |(first, _)| first);
                *range = Some((first, *position));
                chunk.push_str(&render_positioned_delta(*position, record));
                chunk.push('\n');
                *position = position.next();
            };
            for record in &deltas {
                push_delta(&mut chunk, &mut position, &mut range, record);
            }
            chunk.push_str(manifest);
            // Only the last event per key matters: the key is either live
            // (persist its current entry) or gone (persist the eviction).
            // Per-key order is preserved across the drain because a key
            // always lands in the same cache segment. Removals are always
            // rendered, even when `extra` carries a `delta invalidate` line
            // that subsumes most of them: the drain is destructive, and a
            // concurrent request's LRU eviction drained here would
            // otherwise be lost for good, resurrecting the entry on
            // replay. The overlap is benign — replaying an eviction for an
            // already-dropped entry is a no-op.
            let drained = self.session.cache().take_events();
            let mut last: std::collections::BTreeMap<MemoKey, bool> = Default::default();
            for event in &drained {
                match *event {
                    CacheEvent::Inserted(key) => last.insert(key, true),
                    CacheEvent::Removed(key) => last.insert(key, false),
                };
            }
            for (key, live) in last {
                if live {
                    // A concurrently removed entry simply isn't rendered;
                    // its removal event is drained by a later persist.
                    if let Some(chain) = self.session.cache().peek(&key) {
                        chunk.push_str(&render_cache_entry(&key, &chain));
                    }
                } else {
                    push_delta(&mut chunk, &mut position, &mut range, &DeltaRecord::Evict { key });
                }
            }
            let now = self.session.cache().stats();
            let delta = now.delta_since(state.last_stats);
            if !delta.is_zero() {
                push_delta(&mut chunk, &mut position, &mut range, &DeltaRecord::Stats(delta));
            }
            if chunk.is_empty() {
                return Ok(());
            }
            if let Err(error) = persistence.sidecar.append(&chunk) {
                // The chunk never reached disk: hand the drained events
                // back and keep the old stats baseline, so the next
                // persist retries this state instead of silently dropping
                // durability that the requests were already acknowledged
                // for. (No other drain can interleave — the state mutex is
                // held.)
                self.session.cache().requeue_events(drained);
                return Err(ServiceError::transport(format!(
                    "cannot append to {}: {error}",
                    persistence.sidecar.path().display()
                )));
            }
            state.last_stats = now;
            state.appends += 1;
            state.next = position;
            // Publish the byte-exact chunk while the state mutex is still
            // held: the hub's stream order is the append order, the
            // invariant that lets followers apply blindly in arrival order.
            if let Some(hub) = self.hub.get() {
                if let Some((first, last)) = range {
                    hub.publish(LogChunk { first, last, text: Arc::from(chunk.as_str()) });
                }
            }
            let over_appends =
                persistence.policy.compact_appends.is_some_and(|limit| state.appends >= limit);
            let over_bytes = persistence
                .policy
                .compact_bytes
                .is_some_and(|limit| persistence.sidecar.file_len() >= limit);
            if !(over_appends || over_bytes) {
                return Ok(());
            }
        }
        // Threshold crossed: fold the log (compact re-takes the state lock).
        self.persist()
    }

    /// Persist after a compose request that touched durable state: new
    /// memoised compositions (`compose_calls`) or served cache hits
    /// (`cache_hits` — the cumulative hit counters are part of the sidecar
    /// since PR 2, so warm runs must keep accumulating them across
    /// processes). Only requests that neither composed nor hit the cache —
    /// failed resolutions, empty batches — skip the disk round trip.
    fn persist_if_used(&self, compose_calls: usize, cache_hits: usize) -> Result<(), ServiceError> {
        if compose_calls > 0 || cache_hits > 0 {
            self.persist_change(Vec::new(), "")?;
        }
        Ok(())
    }

    /// Turn this service into a replication leader: fold the delta log into
    /// a fresh snapshot (opening a new generation, so the hub's retained log
    /// starts empty at an exact on-disk boundary) and return the hub that
    /// [`Request::Subscribe`] streams and the persistence path publishes
    /// into. Idempotent — a second call returns the same hub without
    /// recompacting. Requires incremental persistence: in-memory services
    /// have no log to stream, and full-rewrite mode never appends deltas.
    pub fn enable_replication(&self) -> Result<Arc<ReplicationHub>, ServiceError> {
        let Some(persistence) = &self.persistence else {
            return Err(ServiceError::new(
                ErrorCode::Unavailable,
                "replication requires a persistent catalog (serve with a catalog file)",
            ));
        };
        if persistence.policy.mode == PersistMode::FullRewrite {
            return Err(ServiceError::new(
                ErrorCode::Unavailable,
                "replication requires incremental persistence; full-rewrite mode keeps no delta log",
            ));
        }
        if let Some(existing) = self.hub.get() {
            return Ok(Arc::clone(existing));
        }
        let hub = Arc::new(ReplicationHub::new());
        if self.hub.set(Arc::clone(&hub)).is_err() {
            // A concurrent enable won the race; use its hub (already seeded
            // by its compaction).
            let existing = self.hub.get().expect("hub was just set");
            return Ok(Arc::clone(existing));
        }
        // compact() sees the hub and seeds its position with the fresh
        // generation boundary.
        self.compact()?;
        Ok(hub)
    }

    /// The replication hub, when [`LocalService::enable_replication`] has
    /// been called.
    pub fn replication_hub(&self) -> Option<&Arc<ReplicationHub>> {
        self.hub.get()
    }

    /// Serve a snapshot bootstrap: the catalog document, a sidecar snapshot
    /// (prefixed with the generation header), and the exact log position the
    /// pair represents — the position a follower resumes subscribing from.
    /// The position is read under the persistence state mutex, so it can
    /// only *trail* the live catalog snapshot, never run ahead of it: any
    /// mutation between the two is re-delivered as a chunk the follower
    /// replays idempotently.
    fn serve_snapshot(&self) -> Result<Response, ServiceError> {
        let Some(persistence) = &self.persistence else {
            return Err(ServiceError::new(
                ErrorCode::Unavailable,
                "snapshot bootstrap requires a persistent catalog",
            ));
        };
        let state = persistence.state();
        let position = state.next;
        let catalog = self.session.catalog().snapshot();
        let cache = self.session.cache().collect();
        drop(state);
        let sidecar = format!(
            "{}{}{}",
            render_generation_marker(position),
            save_state(&catalog, &cache),
            self.migration_snapshot_lines()
        );
        if let Some(hub) = self.hub.get() {
            hub.note_snapshot_served();
        }
        Ok(Response::Snapshot(SnapshotPayload {
            position,
            document: catalog.to_document_string(),
            sidecar,
        }))
    }

    /// Capture the stats payload: catalog counts, per-mapping registration
    /// info, cumulative session statistics.
    pub fn stats_payload(&self) -> StatsPayload {
        let catalog = self.session.catalog().snapshot();
        let entries = catalog
            .mappings()
            .map(|entry| MappingInfo {
                name: entry.name.clone(),
                source: entry.source.clone(),
                target: entry.target.clone(),
                version: entry.version,
                hash: entry.hash.0,
                constraints: entry.constraints.len(),
                history: entry.history.iter().map(|&(v, h)| (v, h.0)).collect(),
            })
            .collect();
        StatsPayload {
            schemas: catalog.schema_count(),
            mappings: catalog.mapping_count(),
            entries,
            session: self.session.stats(),
            cache_capacity: self.session.config().cache_capacity,
            replication: self.hub.get().map(|hub| ReplicationInfo {
                role: "leader".into(),
                state: "serving".into(),
                position: hub.position(),
                lag: 0,
            }),
        }
    }
}

/// The sidecar path of a catalog file: `<file>.memo`, matching the CLI's
/// historical convention.
pub fn sidecar_path(catalog_file: &std::path::Path) -> PathBuf {
    let mut name = catalog_file.file_name().unwrap_or_default().to_os_string();
    name.push(".memo");
    catalog_file.with_file_name(name)
}

impl MapcompService for LocalService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.call_traced(request, None)
    }

    /// Every request roots a span named after its wire keyword (adopting
    /// the peer's trace ID when one arrived on the wire) and bumps the
    /// per-kind request/error/latency metrics on the way out.
    fn call_traced(&self, request: Request, trace: Option<u64>) -> Result<Response, ServiceError> {
        let kind = request.kind();
        let _span = mapcomp_telemetry::trace::start_trace(kind, trace);
        let started = std::time::Instant::now();
        let result = self.dispatch(request);
        let telemetry = self.telemetry.for_kind(kind);
        telemetry.requests.incr();
        if result.is_err() {
            telemetry.errors.incr();
        }
        telemetry.duration_us.observe(started.elapsed().as_micros() as u64);
        result
    }

    /// Open a subscription on the replication hub. A position that
    /// compaction has discarded (or that lies beyond the log) fails with
    /// [`ErrorCode::Stale`]; the follower falls back to
    /// [`Request::Snapshot`].
    fn subscribe(
        &self,
        from: Position,
        wake: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Subscription, ServiceError> {
        let Some(hub) = self.hub.get() else {
            return Err(ServiceError::new(
                ErrorCode::Unavailable,
                "replication is not enabled on this server (serve with --replicate)",
            ));
        };
        hub.subscribe(from, wake).map_err(|SubscribeError::Stale(position)| {
            ServiceError::new(
                ErrorCode::Stale,
                format!(
                    "position {from} is not in the retained log (leader at {position}); \
                     bootstrap from a snapshot"
                ),
            )
        })
    }
}

impl LocalService {
    /// The untimed request dispatch: the match [`MapcompService::call`]
    /// wraps with telemetry.
    fn dispatch(&self, request: Request) -> Result<Response, ServiceError> {
        match request {
            Request::Ping => Ok(Response::Pong),
            Request::AddDocument { text } => {
                let document = parse_document(&text)
                    .map_err(|error| ServiceError::parse(format!("parse error: {error}")))?;
                // Dry-run against a snapshot first, under the ingest lock
                // so no concurrent ingest can invalidate the validation: a
                // rejected document (unknown schema, arity conflict) leaves
                // the shared catalog untouched instead of half-applied.
                let _ingest = self.ingest.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                self.session.catalog().snapshot().from_document(&document)?;
                let catalog = self.session.catalog();
                // Pre-ingest hashes of the declared schemas (under the
                // ingest lock, so nothing else can move them): an idempotent
                // re-add must not grow the delta log.
                let schema_hash_before: std::collections::BTreeMap<&String, Option<u64>> = document
                    .schemas
                    .keys()
                    .map(|name| (name, catalog.schema(name).ok().map(|entry| entry.hash.0)))
                    .collect();
                let mapping_hash_before: std::collections::BTreeMap<&String, Option<u64>> =
                    document
                        .mappings
                        .keys()
                        .map(|name| (name, catalog.mapping(name).ok().map(|entry| entry.hash.0)))
                        .collect();
                let touched = self.session.ingest_document(&document)?;
                // Delta rendering covers exactly what the request actually
                // changed: every schema whose content hash moved (or is
                // new), every mapping it added or edited (with an
                // invalidation for each edit's stale cached compositions),
                // and their version lines — cost proportional to the
                // change, never to the catalog.
                let mut deltas = Vec::new();
                let mut manifest = VersionManifest::default();
                for name in document.schemas.keys() {
                    let Ok(entry) = catalog.schema(name) else { continue };
                    if schema_hash_before[name] == Some(entry.hash.0) {
                        continue;
                    }
                    let decl = render_schema_decl(&entry.name, &entry.signature);
                    deltas.push(DeltaRecord::Schema { decl });
                    manifest.absorb(VersionManifest::of_schema(&entry));
                }
                for name in &touched {
                    let Ok(entry) = catalog.mapping(name) else { continue };
                    // `touched` reports unchanged version-1 mappings on an
                    // idempotent re-add (the pre-existing contract); only a
                    // provably unchanged hash skips the delta.
                    if mapping_hash_before.get(name) == Some(&Some(entry.hash.0)) {
                        continue;
                    }
                    let decl = render_mapping_decl(
                        &entry.name,
                        &entry.source,
                        &entry.target,
                        &entry.constraints,
                    );
                    deltas.push(DeltaRecord::Mapping { decl });
                    deltas.push(DeltaRecord::Invalidate { mapping: name.clone() });
                    manifest.absorb(VersionManifest::of_mapping(&entry));
                }
                self.persist_change(deltas, &manifest.render())?;
                Ok(Response::Added {
                    touched,
                    schemas: catalog.schema_count(),
                    mappings: catalog.mapping_count(),
                })
            }
            Request::ComposePath { from, to } => {
                let result = self.session.compose_path(&from, &to)?;
                self.persist_if_used(result.compose_calls, result.cache_hits)?;
                Ok(Response::Composed(ChainPayload::from_result(&result)))
            }
            Request::ComposeNames { names } => {
                if names.is_empty() {
                    return Err(ServiceError::protocol(
                        "compose-names requires at least one mapping name",
                    ));
                }
                let result = self.session.compose_names(&names)?;
                self.persist_if_used(result.compose_calls, result.cache_hits)?;
                Ok(Response::Composed(ChainPayload::from_result(&result)))
            }
            Request::ComposeBatch { requests, workers } => {
                // `0` means "the backend's configured default"; anything a
                // peer supplies is clamped so a hostile request cannot make
                // the server attempt an absurd number of scoped threads.
                let workers = if workers == 0 {
                    self.batch_workers
                } else {
                    workers.min(self.batch_workers.max(MAX_REQUEST_WORKERS))
                };
                let results = self.session.compose_batch_parallel_with(&requests, workers);
                let (composed, hits) = results
                    .iter()
                    .filter_map(|result| result.as_ref().ok())
                    .fold((0usize, 0usize), |(calls, hits), result| {
                        (calls + result.compose_calls, hits + result.cache_hits)
                    });
                self.persist_if_used(composed, hits)?;
                Ok(Response::Batch(
                    results
                        .into_iter()
                        .map(|result| {
                            result
                                .map(|result| ChainPayload::from_result(&result))
                                .map_err(ServiceError::from)
                        })
                        .collect(),
                ))
            }
            Request::MigrateDelta { from, to, updates } => {
                // Whole-request serialisation: the engine apply and the
                // delta append must land in the same order per session, or
                // replaying the log would fold updates in the wrong order.
                let _order =
                    self.migrate_order.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let result = self.session.compose_path(&from, &to)?;
                self.persist_if_used(result.compose_calls, result.cache_hits)?;
                let chain = &result.chain;
                let parsed = parse_updates(&updates)
                    .map_err(|error| ServiceError::parse(format!("bad update: {error}")))?;
                // Canonical tokens, not the caller's spelling: the history
                // must replay through `parse_update` byte-for-byte.
                let tokens: Vec<String> =
                    parsed.iter().map(mapcomp_compose::Update::render).collect();
                let full = chain
                    .mapping
                    .input
                    .union(&chain.mapping.output)
                    .and_then(|sig| sig.union(&chain.residual))
                    .map_err(|error| {
                        ServiceError::protocol(format!("conflicting chain signatures: {error}"))
                    })?;
                // Residual symbols are chased as auxiliary target relations,
                // exactly as CatalogReplay::migrate treats them (paper §1.3).
                let mut target_sig = chain.mapping.output.clone();
                for (name, info) in chain.residual.iter() {
                    target_sig.add(name.to_string(), info.clone());
                }
                let config = self.session.config().chase_config(None);
                let payload = {
                    let mut sessions =
                        self.migrations.lock().unwrap_or_else(PoisonError::into_inner);
                    let migration = sessions.entry((from.clone(), to.clone())).or_default();
                    if migration.engine.is_none() || migration.chain_hash != chain.hash {
                        // First request, restart recovery, or an upstream
                        // mapping edit: fold the persisted history into the
                        // accumulated source and chase it cold. Confluence
                        // makes the rebuilt engine byte-identical to the
                        // incrementally maintained one it replaces.
                        migration.engine = Some(DifferentialChase::new(
                            chain.mapping.constraints.as_slice(),
                            &full,
                            &target_sig,
                            fold_history(&migration.history),
                            self.session.registry(),
                            &config,
                        ));
                        migration.chain_hash = chain.hash;
                    }
                    let engine = migration.engine.as_mut().expect("engine was just built");
                    let report = engine.apply(&parsed).map_err(ServiceError::protocol)?;
                    migration.history.extend(tokens.iter().cloned());
                    MigratePayload {
                        from: from.clone(),
                        to: to.clone(),
                        applied: report.applied,
                        inserted: report.inserted,
                        deleted: report.deleted,
                        retracted: report.retracted,
                        rederived: report.rederived,
                        fallback: report.fallback,
                        source_rows: engine.source().total_tuples(),
                        target_rows: engine.target().total_tuples(),
                        support_entries: engine.support().len(),
                        target: engine.rendered_target(),
                    }
                    // The migrations leaf lock drops here, *before* the
                    // append below waits on the persistence mutex.
                };
                self.persist_change(vec![DeltaRecord::Migrate { from, to, updates: tokens }], "")?;
                Ok(Response::Migrated(payload))
            }
            Request::Invalidate { mapping } => {
                self.session.catalog().mapping(&mapping)?;
                let dropped = self.session.invalidate(&mapping);
                // One `delta invalidate` line replays the whole drop. The
                // per-entry removal events it generated are still rendered
                // as `delta evict` lines by `persist_change` (suppressing
                // them would also discard unrelated concurrent evictions
                // drained in the same pass); the overlap is an idempotent
                // no-op on replay.
                self.persist_change(vec![DeltaRecord::Invalidate { mapping }], "")?;
                Ok(Response::Invalidated { dropped })
            }
            Request::Analyze { mapping } => {
                // Read-only: verdicts are cached inside the session (keyed
                // by content hash), so nothing here touches durable state.
                let reports = match mapping {
                    Some(name) => {
                        vec![(name.clone(), self.session.analyze_mapping(&name)?.1)]
                    }
                    None => self.session.analyze_all(),
                };
                let (proven, unknown, diagnostics) = mapcomp_catalog::analysis_counts(&reports);
                Ok(Response::Analysis(AnalysisPayload {
                    proven,
                    unknown,
                    diagnostics,
                    text: mapcomp_catalog::render_analysis_text(&reports),
                }))
            }
            Request::Stats => Ok(Response::Stats(self.stats_payload())),
            Request::CacheInfo => {
                // Read-only introspection over the sharded memo cache: one
                // line per segment, live counters only (the persisted
                // baseline has no per-segment attribution).
                let segments = self
                    .session
                    .cache()
                    .segment_snapshots()
                    .into_iter()
                    .enumerate()
                    .map(|(segment, (entries, capacity, stats))| SegmentCacheInfo {
                        segment,
                        entries,
                        capacity,
                        hits: stats.hits,
                        misses: stats.misses,
                        insertions: stats.insertions,
                        invalidated: stats.invalidated,
                        evictions: stats.evictions,
                    })
                    .collect();
                Ok(Response::CacheInfo(CacheInfoPayload { segments }))
            }
            Request::Metrics => Ok(Response::Metrics { text: self.telemetry.registry.render() }),
            Request::Compact => {
                let (bytes_before, bytes_after) = self.compact()?;
                Ok(Response::Compacted { bytes_before, bytes_after })
            }
            Request::Subscribe { .. } => Err(ServiceError::new(
                ErrorCode::Unavailable,
                "subscriptions are long-lived streams; they are served by the \
                 event-loop front end, not one-shot dispatch",
            )),
            Request::Snapshot => self.serve_snapshot(),
            Request::Shutdown => {
                // The backend's part of a shutdown is durability — a final
                // compaction folding the delta log into snapshot form;
                // stopping the accept loop is the transport's job (see
                // [`crate::server::Server`]).
                self.persist()?;
                Ok(Response::ShuttingDown)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_document(hops: usize) -> String {
        let mut text = String::new();
        for i in 0..=hops {
            text.push_str(&format!("schema v{i} {{ R{i}/1; }}\n"));
        }
        for i in 0..hops {
            text.push_str(&format!(
                "mapping m{i} : v{i} -> v{} {{ R{i} <= R{}; }}\n",
                i + 1,
                i + 1
            ));
        }
        text
    }

    #[test]
    fn local_service_serves_the_full_request_surface() {
        let service = LocalService::new(Catalog::new(), 2);
        assert_eq!(service.call(Request::Ping).unwrap(), Response::Pong);

        let added = service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        assert_eq!(
            added,
            Response::Added {
                touched: vec!["m0".into(), "m1".into(), "m2".into()],
                schemas: 4,
                mappings: 3
            }
        );

        let Response::Composed(payload) =
            service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(payload.path, vec!["m0", "m1", "m2"]);
        assert_eq!(payload.compose_calls, 2);
        let chain = payload.to_chain().unwrap();
        assert!(chain.residual.is_empty());

        let Response::Batch(items) = service
            .call(Request::ComposeBatch {
                requests: vec![
                    ("v0".into(), "v2".into()),
                    ("v3".into(), "v0".into()), // unreachable
                ],
                workers: 2,
            })
            .unwrap()
        else {
            panic!("expected a batch reply");
        };
        assert!(items[0].is_ok());
        assert_eq!(items[1].as_ref().unwrap_err().code, crate::api::ErrorCode::NoPath);

        let Response::Invalidated { dropped } =
            service.call(Request::Invalidate { mapping: "m1".into() }).unwrap()
        else {
            panic!("expected an invalidated reply");
        };
        assert!(dropped > 0);

        let Response::Analysis(analysis) =
            service.call(Request::Analyze { mapping: None }).unwrap()
        else {
            panic!("expected an analysis reply");
        };
        assert_eq!(analysis.proven, 3);
        assert_eq!(analysis.unknown, 0);
        for name in ["m0", "m1", "m2"] {
            assert!(
                analysis.text.contains(&format!("mapping {name}: proven")),
                "{}",
                analysis.text
            );
        }
        // A single-mapping analyze matches the catalog-wide line for it.
        let Response::Analysis(one) =
            service.call(Request::Analyze { mapping: Some("m0".into()) }).unwrap()
        else {
            panic!("expected an analysis reply");
        };
        assert_eq!(one.proven, 1);
        assert!(analysis.text.contains(one.text.trim_end_matches('\n')));

        let Response::Stats(stats) = service.call(Request::Stats).unwrap() else {
            panic!("expected a stats reply");
        };
        assert_eq!((stats.schemas, stats.mappings), (4, 3));
        assert_eq!(stats.entries.len(), 3);
        // compose-path plus the successful batch item (the unreachable one
        // fails before counting as a composed chain).
        assert_eq!(stats.session.chains_composed, 2);

        // Compact on an in-memory backend is a no-op with a zero report.
        assert_eq!(
            service.call(Request::Compact).unwrap(),
            Response::Compacted { bytes_before: 0, bytes_after: 0 }
        );

        assert_eq!(service.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let service = LocalService::new(Catalog::new(), 1);
        let error =
            service.call(Request::ComposePath { from: "a".into(), to: "b".into() }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::UnknownSchema);
        let error = service.call(Request::AddDocument { text: "schema {".into() }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::Parse);
        let error = service.call(Request::ComposeNames { names: vec![] }).unwrap_err();
        assert_eq!(error.code, crate::api::ErrorCode::Protocol);
    }

    fn temp_catalog(tag: &str) -> std::path::PathBuf {
        let file =
            std::env::temp_dir().join(format!("mapcomp_service_{tag}_{}.doc", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(sidecar_path(&file));
        file
    }

    fn cleanup(file: &std::path::Path) {
        let _ = std::fs::remove_file(file);
        let _ = std::fs::remove_file(sidecar_path(file));
    }

    fn open_with(file: &std::path::Path, policy: PersistPolicy) -> LocalService {
        LocalService::open_with_policy(
            file,
            Registry::standard(),
            SessionConfig::default(),
            2,
            true,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn incremental_requests_append_deltas_without_touching_the_snapshot() {
        let file = temp_catalog("incr");
        let policy = PersistPolicy {
            mode: PersistMode::Incremental,
            compact_appends: None,
            compact_bytes: None,
        };
        let service = open_with(&file, policy);
        // The first persist (no snapshot on disk yet) compacts, creating it.
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        let snapshot = std::fs::read_to_string(&file).unwrap();
        let sidecar_after_add = std::fs::read_to_string(sidecar_path(&file)).unwrap();

        // A compose appends an entry block + stats delta; the document
        // snapshot is byte-identical and the sidecar only grew.
        service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap();
        assert_eq!(std::fs::read_to_string(&file).unwrap(), snapshot);
        let sidecar_after_compose = std::fs::read_to_string(sidecar_path(&file)).unwrap();
        assert!(sidecar_after_compose.starts_with(&sidecar_after_add), "append-only");
        let tail = &sidecar_after_compose[sidecar_after_add.len()..];
        assert!(tail.contains("entry "), "the new memo entries are appended:\n{tail}");
        // Deltas are positioned: `delta <generation> <seq> <kind> …`.
        let delta_of = |text: &str, kind: &str| {
            text.lines().any(|line| {
                line.strip_prefix("delta ").is_some_and(|body| {
                    let mut tokens = body.splitn(3, ' ');
                    tokens.next().is_some_and(|t| t.parse::<u64>().is_ok())
                        && tokens.next().is_some_and(|t| t.parse::<u64>().is_ok())
                        && tokens.next().is_some_and(|rest| rest.starts_with(kind))
                })
            })
        };
        assert!(delta_of(tail, "stats "), "the statistics increment is appended:\n{tail}");

        // An edit via add-document appends content + invalidation deltas.
        let edited = chain_document(3).replace(
            "mapping m1 : v1 -> v2 { R1 <= R2; }",
            "mapping m1 : v1 -> v2 { project[0](R1) <= R2; }",
        );
        service.call(Request::AddDocument { text: edited }).unwrap();
        let sidecar_after_edit = std::fs::read_to_string(sidecar_path(&file)).unwrap();
        let tail = &sidecar_after_edit[sidecar_after_compose.len()..];
        assert!(delta_of(tail, "mapping "), "edited declaration appended:\n{tail}");
        assert!(delta_of(tail, "invalidate m1"), "invalidation appended:\n{tail}");
        assert!(tail.contains("version mapping m1 2 "), "version bump appended:\n{tail}");
        assert_eq!(std::fs::read_to_string(&file).unwrap(), snapshot, "snapshot still untouched");

        // Recovery replays the tail: the reopened catalog has the edit.
        drop(service);
        let reopened = open_with(&file, policy);
        let entry = reopened.session().catalog().mapping("m1").unwrap();
        assert_eq!(entry.version, 2);
        assert!(entry.constraints.to_string().contains("project[0](R1)"));
        cleanup(&file);
    }

    #[test]
    fn idempotent_re_add_appends_nothing() {
        let file = temp_catalog("noop_add");
        let policy = PersistPolicy {
            mode: PersistMode::Incremental,
            compact_appends: None,
            compact_bytes: None,
        };
        let service = open_with(&file, policy);
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        let sidecar_len = std::fs::metadata(sidecar_path(&file)).unwrap().len();
        // Re-submitting the identical document changes nothing and must not
        // grow the delta log.
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        assert_eq!(
            std::fs::metadata(sidecar_path(&file)).unwrap().len(),
            sidecar_len,
            "an unchanged re-add must append no deltas"
        );
        cleanup(&file);
    }

    #[test]
    fn compact_folds_the_delta_log_into_the_snapshot() {
        let file = temp_catalog("compactreq");
        let policy = PersistPolicy {
            mode: PersistMode::Incremental,
            compact_appends: None,
            compact_bytes: None,
        };
        let service = open_with(&file, policy);
        service.call(Request::AddDocument { text: chain_document(4) }).unwrap();
        service.call(Request::ComposePath { from: "v0".into(), to: "v4".into() }).unwrap();
        service.call(Request::Invalidate { mapping: "m2".into() }).unwrap();
        let stats_before = service.session().cache().stats();
        let Response::Compacted { bytes_before, bytes_after } =
            service.call(Request::Compact).unwrap()
        else {
            panic!("expected a compacted reply");
        };
        assert!(bytes_before > 0 && bytes_after > 0);
        let compacted = std::fs::read_to_string(sidecar_path(&file)).unwrap();
        assert!(!compacted.contains("delta "), "compaction folds every delta:\n{compacted}");
        // The snapshot now carries the post-invalidate catalog + stats.
        drop(service);
        let reopened = open_with(&file, policy);
        assert_eq!(reopened.session().cache().stats(), stats_before);
        assert_eq!(reopened.session().catalog().mapping_count(), 4);
        cleanup(&file);
    }

    #[test]
    fn append_threshold_triggers_compaction() {
        let file = temp_catalog("threshold");
        let policy = PersistPolicy {
            mode: PersistMode::Incremental,
            compact_appends: Some(2),
            compact_bytes: None,
        };
        let service = open_with(&file, policy);
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        // First append.
        service.call(Request::ComposePath { from: "v0".into(), to: "v2".into() }).unwrap();
        assert!(std::fs::read_to_string(sidecar_path(&file)).unwrap().contains("delta "));
        // Second append crosses the threshold and compacts.
        service.call(Request::ComposePath { from: "v1".into(), to: "v3".into() }).unwrap();
        let compacted = std::fs::read_to_string(sidecar_path(&file)).unwrap();
        assert!(
            !compacted.contains("delta "),
            "the threshold append must fold the log:\n{compacted}"
        );
        cleanup(&file);
    }

    #[test]
    fn full_rewrite_mode_keeps_the_legacy_per_request_snapshot() {
        let file = temp_catalog("legacy");
        let service = open_with(&file, PersistPolicy::full_rewrite());
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap();
        let sidecar = std::fs::read_to_string(sidecar_path(&file)).unwrap();
        assert!(!sidecar.contains("delta "), "full rewrite never appends deltas:\n{sidecar}");
        assert!(sidecar.contains("entry "), "the snapshot carries the memo entries");
        cleanup(&file);
    }

    #[test]
    fn opened_service_persists_across_reopen() {
        let dir = std::env::temp_dir();
        let file = dir.join(format!("mapcomp_service_persist_{}.doc", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(sidecar_path(&file));

        let service =
            LocalService::open(&file, Registry::standard(), SessionConfig::default(), 2, true)
                .unwrap();
        service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
        let Response::Composed(first) =
            service.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(first.compose_calls, 2);
        drop(service);

        // A fresh service over the same files: warm cache, composing is free.
        let reopened =
            LocalService::open(&file, Registry::standard(), SessionConfig::default(), 2, false)
                .unwrap();
        let Response::Composed(second) =
            reopened.call(Request::ComposePath { from: "v0".into(), to: "v3".into() }).unwrap()
        else {
            panic!("expected a composed reply");
        };
        assert_eq!(second.compose_calls, 0, "sidecar-restored cache must serve the chain");
        assert_eq!(second.document, first.document, "content is byte-identical across restarts");

        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(sidecar_path(&file));
    }
}
