//! Follower mode: a read-only catalog replica fed by a leader's
//! replication stream.
//!
//! A [`Follower`] owns a warm in-memory catalog (a [`LocalService`]
//! without persistence of its own) plus the follower's on-disk artifacts —
//! a catalog document and a sidecar the leader's chunks are appended to
//! *verbatim*, so a restarted follower replays exactly the bytes the
//! leader shipped and resumes subscribing from its recorded position. The
//! apply loop runs on a dedicated thread ([`Follower::run`]):
//!
//! 1. **connecting** — dial the leader and send
//!    [`Request::Subscribe`] from the local resume position.
//! 2. **bootstrapping** — if the leader answers
//!    [`ErrorCode::Stale`] (our position predates the oldest retained
//!    generation), fetch [`Request::Snapshot`] on the same connection,
//!    install it (files first, then the in-memory catalog), and subscribe
//!    again from the snapshot's position.
//! 3. **streaming** — apply [`Response::Delta`] chunks (append verbatim,
//!    ingest schema/mapping payloads, replay invalidations) and
//!    [`Response::Generation`] boundary markers as they arrive.
//! 4. **reconnecting** — on EOF or a transport error, back off and start
//!    over from step 1; the resume position makes the retry exact.
//!
//! Read traffic is served by the [`ReadOnlyService`] wrapper: compose,
//! stats, analysis and metrics hit the local replica (with its own memo
//! cache, warmed by the follower's own traffic), while state-changing
//! requests fail with [`ErrorCode::Readonly`] naming the leader. The full
//! lifecycle and stream grammar are specified in `docs/REPLICATION.md`.

use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use mapcomp_algebra::parse_document;
use mapcomp_catalog::{
    load_sidecar, parse_positioned_delta, render_generation_marker, save_state, Catalog,
    DeltaRecord, Position, SessionConfig, SharedSession, SidecarWriter,
};
use mapcomp_compose::Registry;
use mapcomp_telemetry::metrics::Gauge;

use crate::api::{
    DeltaChunkPayload, ErrorCode, ReplicationInfo, Request, Response, ServiceError, SnapshotPayload,
};
use crate::service::{sidecar_path, LocalService, MapcompService};
use crate::wire::{decode_reply, encode_request_frame, read_frame};

/// Where the follower's apply loop currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerState {
    /// Dialing the leader (also the state before the first connection).
    Connecting,
    /// The subscribe position was stale; installing a snapshot.
    Bootstrapping,
    /// Subscribed and applying the live stream.
    Streaming,
    /// The connection dropped; backing off before redialing.
    Reconnecting,
    /// The apply loop has exited (shutdown or a fatal error).
    Stopped,
}

impl FollowerState {
    /// Every lifecycle state, for exhaustive iteration (the documented
    /// state table in `docs/REPLICATION.md` is checked against this).
    pub const ALL: [FollowerState; 5] = [
        FollowerState::Connecting,
        FollowerState::Bootstrapping,
        FollowerState::Streaming,
        FollowerState::Reconnecting,
        FollowerState::Stopped,
    ];

    /// The stable lifecycle keyword reported in `stats` and the docs.
    pub fn as_str(self) -> &'static str {
        match self {
            FollowerState::Connecting => "connecting",
            FollowerState::Bootstrapping => "bootstrapping",
            FollowerState::Streaming => "streaming",
            FollowerState::Reconnecting => "reconnecting",
            FollowerState::Stopped => "stopped",
        }
    }
}

/// Apply-loop progress shared with the stats path.
struct Status {
    state: FollowerState,
    /// The next log position to apply — the resume position a reconnect
    /// subscribes from; everything before it is applied locally.
    next: Position,
    /// The highest leader log-end position observed (subscribe acks and
    /// chunk tails); the lag baseline.
    leader_end: Position,
    /// Cached `leader_end - next` (same-generation record distance).
    lag: u64,
}

/// Records between `applied` and the observed leader end. Across a
/// generation boundary the distance is unknowable without the leader's
/// log; report 0 (the follower either catches up within the new
/// generation or bootstraps from a snapshot).
fn lag_between(applied: Position, leader_end: Position) -> u64 {
    if applied.generation == leader_end.generation {
        leader_end.seq.saturating_sub(applied.seq)
    } else {
        0
    }
}

struct FollowerCore {
    /// The local replica: catalog + memo cache, no persistence of its own
    /// (the stream owns the on-disk artifacts).
    service: LocalService,
    catalog_file: PathBuf,
    /// The follower's own sidecar: leader chunks appended verbatim.
    sidecar: SidecarWriter,
    leader_addr: String,
    auth_token: Option<String>,
    status: Mutex<Status>,
    stop: AtomicBool,
    /// The live leader connection's write half, kept so `stop` can
    /// shut the socket down and unblock a reader parked in `read_frame`.
    link: Mutex<Option<TcpStream>>,
    lag_gauge: &'static Gauge,
}

/// A catalog replica streaming from a leader. See the module docs for the
/// lifecycle; construct with [`Follower::open`], serve reads through
/// [`Follower::service`], and drive the stream with [`Follower::run`] on a
/// dedicated thread.
pub struct Follower {
    core: Arc<FollowerCore>,
}

impl Follower {
    /// Open a follower bound to `catalog_file` (and its sidecar), resuming
    /// from whatever position the local artifacts record — a fresh
    /// directory starts at `0:0`, which any replicating leader reports as
    /// stale, steering the first connection into a snapshot bootstrap.
    pub fn open(
        catalog_file: impl Into<PathBuf>,
        leader_addr: impl Into<String>,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
        auth_token: Option<String>,
    ) -> Result<Follower, ServiceError> {
        let catalog_file: PathBuf = catalog_file.into();
        let sidecar = SidecarWriter::new(sidecar_path(&catalog_file));
        let mut catalog = Catalog::new();
        match std::fs::read_to_string(&catalog_file) {
            Ok(text) => {
                let document = parse_document(&text).map_err(|error| {
                    ServiceError::parse(format!("{}: parse error: {error}", catalog_file.display()))
                })?;
                catalog.from_document(&document)?;
            }
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => {
                return Err(ServiceError::transport(format!(
                    "cannot read {}: {error}",
                    catalog_file.display()
                )))
            }
        }
        let state = sidecar.load_full();
        let next = state.next_position();
        for document in &state.doc_deltas {
            let _ = catalog.from_document(document);
        }
        catalog.restore_versions(&state.manifest);
        let workers = workers.max(1);
        let mut session = SharedSession::with_config(catalog, registry, config, workers);
        session.restore_cache(state.cache);
        let lag_gauge = mapcomp_telemetry::metrics::global().gauge(
            "replication_follower_lag",
            "Delta records the follower has yet to apply (leader log end minus applied position).",
            &[],
        );
        Ok(Follower {
            core: Arc::new(FollowerCore {
                service: LocalService::from_session(session, workers),
                catalog_file,
                sidecar,
                leader_addr: leader_addr.into(),
                auth_token,
                status: Mutex::new(Status {
                    state: FollowerState::Connecting,
                    next,
                    leader_end: next,
                    lag: 0,
                }),
                stop: AtomicBool::new(false),
                link: Mutex::new(None),
                lag_gauge,
            }),
        })
    }

    /// The read-only service surface to put behind a server front end.
    pub fn service(&self) -> ReadOnlyService {
        ReadOnlyService { core: Arc::clone(&self.core) }
    }

    /// Current role, lifecycle state, resume position and lag.
    pub fn status(&self) -> ReplicationInfo {
        self.core.replication_info()
    }

    /// A snapshot of the replica's catalog — the comparison surface for
    /// convergence checks (document rendering, version manifest).
    pub fn catalog_snapshot(&self) -> Catalog {
        self.core.service.session().catalog().snapshot()
    }

    /// Ask the apply loop to exit; unblocks a parked stream read.
    pub fn stop(&self) {
        self.core.stop();
    }

    /// Run the apply loop until [`Follower::stop`] (or a shutdown request
    /// through the service surface). Reconnects with exponential backoff on
    /// transport failures; returns an error only when the leader positively
    /// refuses ([`ErrorCode::Unavailable`]: it is not replicating).
    pub fn run(&self) -> Result<(), ServiceError> {
        self.core.run()
    }
}

impl FollowerCore {
    fn lock_status(&self) -> MutexGuard<'_, Status> {
        self.status.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_state(&self, state: FollowerState) {
        self.lock_status().state = state;
    }

    fn next_position(&self) -> Position {
        self.lock_status().next
    }

    fn replication_info(&self) -> ReplicationInfo {
        let status = self.lock_status();
        ReplicationInfo {
            role: "follower".into(),
            state: status.state.as_str().into(),
            position: status.next,
            lag: status.lag,
        }
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let link = self.link.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(stream) = link {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn run(&self) -> Result<(), ServiceError> {
        let mut backoff = Duration::from_millis(50);
        while !self.stopped() {
            match self.connect_and_stream() {
                // A completed subscription (stream ended in EOF or stop)
                // resets the backoff: the leader was just healthy.
                Ok(true) => backoff = Duration::from_millis(50),
                Ok(false) => {}
                Err(error) if error.code == ErrorCode::Unavailable => {
                    // The leader answered and refused: it is not
                    // replicating. Retrying cannot help; surface it.
                    self.set_state(FollowerState::Stopped);
                    return Err(error);
                }
                // Transport and protocol hiccups: back off and redial.
                Err(_) => {}
            }
            if self.stopped() {
                break;
            }
            self.set_state(FollowerState::Reconnecting);
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(1));
        }
        self.set_state(FollowerState::Stopped);
        Ok(())
    }

    /// One connection's lifetime: dial, subscribe (bootstrapping from a
    /// snapshot if our position is stale), then apply the stream until it
    /// ends. `Ok(true)` means a subscription was established.
    fn connect_and_stream(&self) -> Result<bool, ServiceError> {
        self.set_state(FollowerState::Connecting);
        let mut link = LeaderLink::connect(&self.leader_addr, self.auth_token.clone())?;
        {
            let mut slot = self.link.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = link.try_clone_stream();
        }
        loop {
            let from = self.next_position();
            link.send(&Request::Subscribe {
                from_generation: from.generation,
                from_seq: from.seq,
            })?;
            match link.read()? {
                None => {
                    return Err(ServiceError::transport(
                        "leader closed the connection during subscribe",
                    ))
                }
                Some(Ok(Response::Subscribed { position })) => {
                    self.note_leader_end(position);
                    break;
                }
                Some(Ok(other)) => {
                    return Err(ServiceError::protocol(format!(
                        "unexpected `{}` reply to subscribe",
                        other.kind()
                    )))
                }
                Some(Err(error)) if error.code == ErrorCode::Stale => {
                    // Our position predates the leader's retained log:
                    // bootstrap from a snapshot on the same connection,
                    // then subscribe again from its exact position.
                    self.set_state(FollowerState::Bootstrapping);
                    link.send(&Request::Snapshot)?;
                    match link.read()? {
                        Some(Ok(Response::Snapshot(payload))) => self.install_snapshot(&payload)?,
                        Some(Ok(other)) => {
                            return Err(ServiceError::protocol(format!(
                                "unexpected `{}` reply to snapshot",
                                other.kind()
                            )))
                        }
                        Some(Err(error)) => return Err(error),
                        None => {
                            return Err(ServiceError::transport(
                                "leader closed the connection during snapshot bootstrap",
                            ))
                        }
                    }
                }
                Some(Err(error)) => return Err(error),
            }
        }
        self.set_state(FollowerState::Streaming);
        while !self.stopped() {
            match link.read() {
                Ok(Some(Ok(Response::Delta(chunk)))) => self.apply_chunk(&chunk)?,
                Ok(Some(Ok(Response::Generation { generation }))) => {
                    self.apply_generation(generation)?;
                }
                Ok(Some(Ok(other))) => {
                    return Err(ServiceError::protocol(format!(
                        "unexpected `{}` frame in the subscription stream",
                        other.kind()
                    )))
                }
                Ok(Some(Err(error))) => return Err(error),
                // EOF or a broken socket: reconnect from the recorded
                // position.
                Ok(None) | Err(_) => break,
            }
        }
        Ok(true)
    }

    fn note_leader_end(&self, end: Position) {
        let mut status = self.lock_status();
        if status.leader_end < end {
            status.leader_end = end;
        }
        status.lag = lag_between(status.next, status.leader_end);
        let lag = status.lag;
        drop(status);
        self.lag_gauge.set(i64::try_from(lag).unwrap_or(i64::MAX));
    }

    /// Apply one streamed chunk: append it to our sidecar verbatim, ingest
    /// its schema/mapping/invalidate records, and advance the resume
    /// position past its tail. A chunk entirely below our position (a
    /// snapshot-overlap re-delivery) is skipped whole.
    fn apply_chunk(&self, chunk: &DeltaChunkPayload) -> Result<(), ServiceError> {
        let next = self.next_position();
        if chunk.last < next {
            return Ok(());
        }
        self.sidecar.append(&chunk.chunk).map_err(|error| {
            ServiceError::transport(format!(
                "cannot append to {}: {error}",
                self.sidecar.path().display()
            ))
        })?;
        for line in chunk.chunk.lines() {
            let Some((position, record)) = parse_positioned_delta(line) else { continue };
            if position.is_some_and(|position| position < next) {
                continue;
            }
            self.apply_record(&record)?;
        }
        self.advance_to(chunk.last.next());
        Ok(())
    }

    /// Apply a generation boundary: the leader compacted, records restart
    /// at `(generation, 0)`. The fold added no content, so the replica only
    /// records the marker and moves its position.
    fn apply_generation(&self, generation: u64) -> Result<(), ServiceError> {
        let boundary = Position::new(generation, 0);
        if boundary <= self.next_position() {
            return Ok(());
        }
        self.sidecar.append(&render_generation_marker(boundary)).map_err(|error| {
            ServiceError::transport(format!(
                "cannot append to {}: {error}",
                self.sidecar.path().display()
            ))
        })?;
        self.advance_to(boundary);
        Ok(())
    }

    fn advance_to(&self, next: Position) {
        let mut status = self.lock_status();
        status.next = next;
        if status.leader_end < next {
            status.leader_end = next;
        }
        status.lag = lag_between(status.next, status.leader_end);
        let lag = status.lag;
        drop(status);
        self.lag_gauge.set(i64::try_from(lag).unwrap_or(i64::MAX));
    }

    fn apply_record(&self, record: &DeltaRecord) -> Result<(), ServiceError> {
        match record {
            DeltaRecord::Schema { decl } | DeltaRecord::Mapping { decl } => {
                let document = parse_document(decl).map_err(|error| {
                    ServiceError::protocol(format!("malformed delta payload: {error}"))
                })?;
                self.service.session().ingest_document(&document)?;
            }
            DeltaRecord::Invalidate { mapping } => {
                let _ = self.service.session().invalidate(mapping);
            }
            // The leader's cache movements describe *its* memo cache; the
            // replica's cache warms from its own read traffic (and from
            // sidecar replay at restart, where the verbatim log carries
            // these records to the loader). Migration batches ride the same
            // way: the verbatim sidecar carries the update history, and a
            // replica restarted into leader duty rebuilds the engine from
            // it — `migrate-delta` itself is refused while following.
            DeltaRecord::Evict { .. } | DeltaRecord::Stats(_) | DeltaRecord::Migrate { .. } => {}
        }
        Ok(())
    }

    /// Install a snapshot bootstrap: persist the document + sidecar pair
    /// atomically first (a crash between the two steps re-bootstraps), then
    /// swap the in-memory replica to the snapshot's catalog. The memo cache
    /// is cleared rather than imported — entries referencing dropped
    /// content would be unreachable anyway, and the verbatim sidecar warms
    /// the cache on the next restart.
    fn install_snapshot(&self, payload: &SnapshotPayload) -> Result<(), ServiceError> {
        let document = parse_document(&payload.document)
            .map_err(|error| ServiceError::protocol(format!("malformed snapshot: {error}")))?;
        let mut catalog = Catalog::new();
        catalog.from_document(&document)?;
        let state = load_sidecar(&payload.sidecar);
        for document in &state.doc_deltas {
            let _ = catalog.from_document(document);
        }
        catalog.restore_versions(&state.manifest);
        self.sidecar
            .rewrite_with_document(&self.catalog_file, || {
                (payload.document.clone(), payload.sidecar.clone())
            })
            .map_err(|error| {
                ServiceError::transport(format!(
                    "cannot install snapshot at {}: {error}",
                    self.catalog_file.display()
                ))
            })?;
        self.service.session().restore_catalog(&catalog);
        let _ = self.service.session().cache().clear();
        let mut status = self.lock_status();
        status.next = payload.position;
        if status.leader_end < payload.position {
            status.leader_end = payload.position;
        }
        status.lag = lag_between(status.next, status.leader_end);
        let lag = status.lag;
        drop(status);
        self.lag_gauge.set(i64::try_from(lag).unwrap_or(i64::MAX));
        Ok(())
    }

    /// Shutdown through the service surface: stop the apply loop, then
    /// fold the replica into snapshot form — document + compacted sidecar
    /// rewritten atomically at the current resume position, so a restart
    /// resumes from exactly here and operators can byte-compare the
    /// document against the leader's.
    fn shutdown(&self) -> Result<Response, ServiceError> {
        self.stop();
        let position = self.next_position();
        let catalog = self.service.session().catalog().snapshot();
        let cache = self.service.session().cache().collect();
        self.sidecar
            .rewrite_with_document(&self.catalog_file, || {
                (
                    catalog.to_document_string(),
                    format!(
                        "{}{}",
                        render_generation_marker(position),
                        save_state(&catalog, &cache)
                    ),
                )
            })
            .map_err(|error| {
                ServiceError::transport(format!(
                    "cannot persist {}: {error}",
                    self.catalog_file.display()
                ))
            })?;
        Ok(Response::ShuttingDown)
    }

    fn readonly_error(&self) -> ServiceError {
        ServiceError::new(
            ErrorCode::Readonly,
            format!(
                "this catalog is a read-only follower; send writes to the leader at {}",
                self.leader_addr
            ),
        )
    }

    fn not_a_leader_error(&self) -> ServiceError {
        ServiceError::new(
            ErrorCode::Unavailable,
            format!(
                "this catalog is a follower; replicate from the leader at {}",
                self.leader_addr
            ),
        )
    }
}

/// The follower's service surface: reads are served by the local replica
/// (warm memo cache included), state-changing requests fail with
/// [`ErrorCode::Readonly`] naming the leader, and `stats` reports the
/// follower's role, lifecycle state, position and lag.
#[derive(Clone)]
pub struct ReadOnlyService {
    core: Arc<FollowerCore>,
}

impl MapcompService for ReadOnlyService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        match request {
            Request::AddDocument { .. }
            | Request::Invalidate { .. }
            | Request::MigrateDelta { .. }
            | Request::Compact => Err(self.core.readonly_error()),
            Request::Subscribe { .. } | Request::Snapshot => Err(self.core.not_a_leader_error()),
            Request::Stats => {
                let mut payload = self.core.service.stats_payload();
                payload.replication = Some(self.core.replication_info());
                Ok(Response::Stats(payload))
            }
            Request::Shutdown => self.core.shutdown(),
            other => self.core.service.call(other),
        }
    }

    fn subscribe(
        &self,
        _from: Position,
        _wake: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<mapcomp_replication::Subscription, ServiceError> {
        Err(self.core.not_a_leader_error())
    }
}

/// One blocking connection to the leader, speaking raw frames (the
/// [`crate::Client`] is one-in/one-out; a subscription reads many frames
/// per request, so the follower drives the codec directly).
struct LeaderLink {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    auth_token: Option<String>,
    auth_sent: bool,
}

impl LeaderLink {
    fn connect(addr: &str, auth_token: Option<String>) -> Result<LeaderLink, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|error| {
            ServiceError::transport(format!("cannot connect to leader at {addr}: {error}"))
        })?;
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|error| ServiceError::transport(format!("cannot clone stream: {error}")))?;
        Ok(LeaderLink { reader: BufReader::new(stream), writer, auth_token, auth_sent: false })
    }

    fn try_clone_stream(&self) -> Option<TcpStream> {
        self.writer.try_clone().ok()
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        let auth = if self.auth_sent { None } else { self.auth_token.as_deref() };
        let frame = encode_request_frame(request, None, auth);
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|error| ServiceError::transport(format!("cannot send request: {error}")))?;
        self.auth_sent = true;
        Ok(())
    }

    /// Read one reply frame: `Ok(None)` is a clean EOF, the inner result is
    /// the serving side's answer (which may be an error reply).
    fn read(&mut self) -> Result<Option<Result<Response, ServiceError>>, ServiceError> {
        match read_frame(&mut self.reader) {
            Err(error) => Err(ServiceError::transport(format!("cannot read reply: {error}"))),
            Ok(None) => Ok(None),
            Ok(Some(frame)) => Ok(Some(decode_reply(&frame)?)),
        }
    }
}
