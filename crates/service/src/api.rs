//! The typed request/response surface of the catalog service.
//!
//! [`Request`] and [`Response`] are the *whole* public API: every front end
//! (the CLI's local catalog mode, the TCP client, tests) speaks these types,
//! and every backend implements [`crate::MapcompService`] over them. All
//! failures funnel into one [`ServiceError`] carrying a stable
//! machine-readable [`ErrorCode`] next to the human-readable message, so
//! remote callers can branch on the code without parsing prose.
//!
//! Payload structs ([`ChainPayload`], [`StatsPayload`]) are plain data with
//! structural equality: a chain composed remotely compares byte-identical to
//! one composed in process, which is what the transport-equivalence suite
//! asserts.

use std::collections::BTreeSet;
use std::fmt;

use mapcomp_catalog::{
    parse_chain_document, render_chain_document, CatalogError, ChainResult, ComposedChain,
    Position, SessionStats,
};

/// A request to the catalog service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ingest a plain-text document (schemas + mappings).
    AddDocument {
        /// The document text, in the repo's task format.
        text: String,
    },
    /// Resolve a path between two schemas and compose it.
    ComposePath {
        /// Source schema name.
        from: String,
        /// Target schema name.
        to: String,
    },
    /// Compose an explicit chain of mapping names.
    ComposeNames {
        /// Mapping names, adjacent pairs sharing a schema.
        names: Vec<String>,
    },
    /// Compose a batch of `(from, to)` requests, fanned across worker
    /// threads on the serving side.
    ComposeBatch {
        /// The `(from, to)` schema pairs.
        requests: Vec<(String, String)>,
        /// Worker threads to fan the batch across; `0` means "the server's
        /// configured default".
        workers: usize,
    },
    /// Drop cached compositions depending on a mapping.
    Invalidate {
        /// The mapping name.
        mapping: String,
    },
    /// Apply a batch of signed source updates (`+rel(...)`/`-rel(...)`,
    /// grammar in `docs/DIFFERENTIAL.md`) to the differentially-maintained
    /// migration session for the `from → to` composed chain, and reply with
    /// the maintained target instance. The first request for a pair (or the
    /// first after the chain's content hash changes) builds the session
    /// with a full chase; later batches propagate incrementally.
    MigrateDelta {
        /// Source schema name.
        from: String,
        /// Target schema name.
        to: String,
        /// Signed updates, applied as one batch.
        updates: Vec<String>,
    },
    /// Statically analyze mappings: weak-acyclicity termination verdicts
    /// plus lint diagnostics (see `docs/ANALYSIS.md`).
    Analyze {
        /// A single mapping name, or `None` for the whole catalog.
        mapping: Option<String>,
    },
    /// Catalog and session statistics.
    Stats,
    /// Per-segment memo-cache introspection: entry counts, capacity bounds
    /// and hit/miss/eviction counters for every cache shard.
    CacheInfo,
    /// The serving side's metrics registry, rendered as Prometheus-style
    /// text exposition (see `docs/OBSERVABILITY.md`).
    Metrics,
    /// Fold the serving side's append-only sidecar log back into snapshot
    /// form (document + sidecar rewritten atomically). A no-op for
    /// in-memory backends.
    Compact,
    /// Open a long-lived replication stream: replay the sidecar delta log
    /// from the given position, then tail live appends. The reply is
    /// [`Response::Subscribed`] followed by a stream of
    /// [`Response::Delta`] / [`Response::Generation`] frames for the life
    /// of the connection; a position predating the oldest retained
    /// generation fails with [`ErrorCode::Stale`] (bootstrap from
    /// [`Request::Snapshot`] instead). Served by the event-loop engine
    /// only.
    Subscribe {
        /// Generation of the first log record the subscriber has not
        /// applied.
        from_generation: u64,
        /// Sequence number within that generation.
        from_seq: u64,
    },
    /// Fetch a consistent catalog snapshot — the document and a sidecar
    /// rendering, captured atomically at an exact log position — as the
    /// bootstrap artifact for a new or lagging follower.
    Snapshot,
    /// Ask the serving process to persist and stop accepting connections.
    Shutdown,
}

impl Request {
    /// Every request kind keyword, in the order they appear on the wire
    /// grammar — the label universe for the per-kind service metrics.
    pub const KINDS: &'static [&'static str] = &[
        "ping",
        "add-document",
        "compose-path",
        "compose-names",
        "compose-batch",
        "invalidate",
        "migrate-delta",
        "analyze",
        "stats",
        "cache-info",
        "metrics",
        "compact",
        "subscribe",
        "snapshot",
        "shutdown",
    ];

    /// The stable wire keyword of this request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::AddDocument { .. } => "add-document",
            Request::ComposePath { .. } => "compose-path",
            Request::ComposeNames { .. } => "compose-names",
            Request::ComposeBatch { .. } => "compose-batch",
            Request::Invalidate { .. } => "invalidate",
            Request::MigrateDelta { .. } => "migrate-delta",
            Request::Analyze { .. } => "analyze",
            Request::Stats => "stats",
            Request::CacheInfo => "cache-info",
            Request::Metrics => "metrics",
            Request::Compact => "compact",
            Request::Subscribe { .. } => "subscribe",
            Request::Snapshot => "snapshot",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A composed chain as carried on the wire: content (rendered through the
/// sidecar's embeddable document format) plus the per-request counters of
/// the [`ChainResult`] it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPayload {
    /// Source schema name.
    pub source: String,
    /// Target schema name.
    pub target: String,
    /// Mapping names along the path, in composition order.
    pub path: Vec<String>,
    /// Names of the catalog mappings the chain depends on.
    pub deps: Vec<String>,
    /// Content hash of the composed segment.
    pub hash: u64,
    /// The chain's content: `__in`/`__out`/`__residual` schemas and the
    /// `__seg` mapping, rendered by
    /// [`mapcomp_catalog::render_chain_document`].
    pub document: String,
    /// Pairwise `compose()` invocations performed for this request.
    pub compose_calls: usize,
    /// Memo-cache hits while folding.
    pub cache_hits: usize,
    /// Lengths of the contiguous runs the driver absorbed.
    pub plan: Vec<usize>,
}

impl ChainPayload {
    /// Capture a [`ChainResult`] for the wire.
    pub fn from_result(result: &ChainResult) -> Self {
        ChainPayload {
            source: result.chain.source.clone(),
            target: result.chain.target.clone(),
            path: result.chain.path.clone(),
            deps: result.chain.deps.iter().cloned().collect(),
            hash: result.chain.hash,
            document: render_chain_document(&result.chain),
            compose_calls: result.compose_calls,
            cache_hits: result.cache_hits,
            plan: result.plan.clone(),
        }
    }

    /// Reconstruct the composed chain (mapping, residual signature,
    /// provenance) from the payload.
    pub fn to_chain(&self) -> Result<ComposedChain, ServiceError> {
        let (mapping, residual) = parse_chain_document(&self.document)
            .ok_or_else(|| ServiceError::protocol("chain payload carries a malformed document"))?;
        Ok(ComposedChain {
            source: self.source.clone(),
            target: self.target.clone(),
            path: self.path.clone(),
            mapping,
            residual,
            hash: self.hash,
            deps: self.deps.iter().cloned().collect::<BTreeSet<String>>(),
        })
    }

    /// Did every intermediate symbol get eliminated?
    pub fn is_complete(&self) -> Result<bool, ServiceError> {
        Ok(self.to_chain()?.residual.is_empty())
    }
}

/// Static-analysis results, as reported by [`Response::Analysis`]: verdict
/// tallies plus the byte-stable catalog-wide text rendered server-side by
/// [`mapcomp_catalog::render_analysis_text`] — the same bytes whichever
/// transport carried them, mirroring the metrics exposition pattern.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisPayload {
    /// Mappings whose chase termination is proven (weakly acyclic).
    pub proven: usize,
    /// Mappings whose termination is unknown.
    pub unknown: usize,
    /// Total lint diagnostics across the analyzed mappings.
    pub diagnostics: usize,
    /// The rendered analysis report text (one `mapping <name>: <verdict>`
    /// line per mapping, diagnostics indented; grammar in
    /// `docs/ANALYSIS.md`).
    pub text: String,
}

/// One mapping's registration info, as reported by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingInfo {
    /// Mapping name.
    pub name: String,
    /// Source schema.
    pub source: String,
    /// Target schema.
    pub target: String,
    /// Version counter.
    pub version: u64,
    /// Content hash.
    pub hash: u64,
    /// Number of constraints.
    pub constraints: usize,
    /// Version/hash history, oldest first (ends at the current version).
    pub history: Vec<(u64, u64)>,
}

/// Catalog and session statistics, as reported by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsPayload {
    /// Registered schema count.
    pub schemas: usize,
    /// Registered mapping count.
    pub mappings: usize,
    /// Per-mapping registration info, name-sorted.
    pub entries: Vec<MappingInfo>,
    /// Cumulative session statistics (compose calls, cache counters, …).
    pub session: SessionStats,
    /// The serving side's configured memo-cache bound (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Replication role and progress, when the serving side is a leader or
    /// a follower (`None` for a standalone catalog).
    pub replication: Option<ReplicationInfo>,
}

/// Replication role and progress, carried inside [`StatsPayload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationInfo {
    /// `"leader"` or `"follower"`.
    pub role: String,
    /// Lifecycle state: a leader reports `serving`; a follower reports its
    /// state machine position (`connecting`, `bootstrapping`, `streaming`,
    /// `reconnecting` — see `docs/REPLICATION.md`).
    pub state: String,
    /// A leader's log-end position; a follower's last applied position.
    pub position: Position,
    /// Delta records the follower still has to apply (leader position minus
    /// applied position); always 0 on a leader.
    pub lag: u64,
}

/// One memo-cache segment's live state, as reported by
/// [`Response::CacheInfo`]. Counters are the segment's own (the restored
/// baseline of a reloaded cache is catalog-wide and excluded here).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentCacheInfo {
    /// Shard index (matches the `segment` label on the cache metrics).
    pub segment: usize,
    /// Entries currently cached in this segment.
    pub entries: usize,
    /// This segment's share of the capacity bound (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Lookups served from this segment.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries inserted.
    pub insertions: usize,
    /// Entries dropped by dependency invalidation.
    pub invalidated: usize,
    /// Entries evicted by the capacity bound.
    pub evictions: usize,
}

/// Per-segment memo-cache statistics, as reported by
/// [`Response::CacheInfo`]: one entry per shard, index order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheInfoPayload {
    /// Per-segment state, in shard-index order.
    pub segments: Vec<SegmentCacheInfo>,
}

/// The maintained state of a differential migration session, as reported by
/// [`Response::Migrated`]: batch statistics plus the canonical rendering of
/// the target instance (`docs/DIFFERENTIAL.md`). The rendering is
/// byte-identical to a cold re-chase of the session's accumulated source,
/// whichever transport carried it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MigratePayload {
    /// Source schema name.
    pub from: String,
    /// Target schema name.
    pub to: String,
    /// Effective updates applied after net normalisation.
    pub applied: usize,
    /// Source rows inserted by this batch.
    pub inserted: usize,
    /// Source rows deleted by this batch.
    pub deleted: usize,
    /// Rule firings retracted by the overdeletion cascade.
    pub retracted: usize,
    /// Retracted firings restored by the support check.
    pub rederived: usize,
    /// Did the batch fall back to a full recompute?
    pub fallback: bool,
    /// Source rows in the session after the batch.
    pub source_rows: usize,
    /// Target rows in the maintained instance.
    pub target_rows: usize,
    /// Entries in the per-tuple derivation-support table.
    pub support_entries: usize,
    /// The maintained target, rendered canonically (one `rel(v,...);` line
    /// per tuple, sorted).
    pub target: String,
}

/// A response from the catalog service, one variant per [`Request`] kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::AddDocument`].
    Added {
        /// Mapping names added or changed by the ingest.
        touched: Vec<String>,
        /// Schema count after the ingest.
        schemas: usize,
        /// Mapping count after the ingest.
        mappings: usize,
    },
    /// Reply to [`Request::ComposePath`] and [`Request::ComposeNames`].
    Composed(ChainPayload),
    /// Reply to [`Request::ComposeBatch`]: per-request outcomes in request
    /// order (a failed request does not fail the batch).
    Batch(Vec<Result<ChainPayload, ServiceError>>),
    /// Reply to [`Request::Invalidate`].
    Invalidated {
        /// Cached compositions dropped.
        dropped: usize,
    },
    /// Reply to [`Request::MigrateDelta`].
    Migrated(MigratePayload),
    /// Reply to [`Request::Analyze`].
    Analysis(AnalysisPayload),
    /// Reply to [`Request::Stats`].
    Stats(StatsPayload),
    /// Reply to [`Request::CacheInfo`].
    CacheInfo(CacheInfoPayload),
    /// Reply to [`Request::Metrics`].
    Metrics {
        /// The registry in Prometheus text exposition (one sample per line,
        /// `# HELP`/`# TYPE` headers; grammar in `docs/OBSERVABILITY.md`).
        text: String,
    },
    /// Reply to [`Request::Compact`].
    Compacted {
        /// Sidecar size before compaction, in bytes (0 for an in-memory
        /// backend).
        bytes_before: u64,
        /// Sidecar size after compaction, in bytes.
        bytes_after: u64,
    },
    /// First reply to [`Request::Subscribe`]: the stream is open and
    /// [`Response::Delta`] / [`Response::Generation`] frames follow.
    Subscribed {
        /// The leader's log-end position at subscribe time (the initial lag
        /// reference).
        position: Position,
    },
    /// One streamed chunk of appended sidecar lines (a stream frame after
    /// [`Response::Subscribed`], never a direct reply).
    Delta(DeltaChunkPayload),
    /// The leader compacted: the log restarts at `(generation, 0)`. Every
    /// chunk of the previous generation was already streamed.
    Generation {
        /// The new compaction generation.
        generation: u64,
    },
    /// Reply to [`Request::Snapshot`].
    Snapshot(SnapshotPayload),
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
}

/// One streamed sidecar chunk, carried by [`Response::Delta`]: the exact
/// bytes one leader request appended, plus the position range of the delta
/// records inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaChunkPayload {
    /// Position of the first delta record in the chunk.
    pub first: Position,
    /// Position of the last delta record in the chunk.
    pub last: Position,
    /// The chunk text, verbatim sidecar grammar.
    pub chunk: String,
}

/// A consistent catalog snapshot at an exact log position, carried by
/// [`Response::Snapshot`]: the bootstrap artifact for a new or lagging
/// follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotPayload {
    /// The log position the snapshot is current through: a follower that
    /// ingests it subscribes from exactly here.
    pub position: Position,
    /// The catalog document text.
    pub document: String,
    /// A full sidecar rendering (generation header, versions, statistics,
    /// memo entries).
    pub sidecar: String,
}

impl Response {
    /// The stable wire keyword of this response kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Added { .. } => "added",
            Response::Composed(_) => "composed",
            Response::Batch(_) => "batch",
            Response::Invalidated { .. } => "invalidated",
            Response::Migrated(_) => "migrated",
            Response::Analysis(_) => "analysis",
            Response::Stats(_) => "stats",
            Response::CacheInfo(_) => "cache-info",
            Response::Metrics { .. } => "metrics",
            Response::Compacted { .. } => "compacted",
            Response::Subscribed { .. } => "subscribed",
            Response::Delta(_) => "delta-chunk",
            Response::Generation { .. } => "generation",
            Response::Snapshot(_) => "snapshot",
            Response::ShuttingDown => "shutting-down",
        }
    }
}

/// Stable machine-readable error codes. The string form
/// ([`ErrorCode::as_str`]) is part of the wire protocol: codes may be added
/// but never renamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A referenced schema is not registered.
    UnknownSchema,
    /// A referenced mapping is not registered.
    UnknownMapping,
    /// No directed path connects the two schemas.
    NoPath,
    /// A path from a schema to itself is empty.
    EmptyPath,
    /// Adjacent mappings of an explicit chain do not share a schema.
    ChainMismatch,
    /// Composition left symbols behind under `require_complete`.
    Incomplete,
    /// An underlying algebra error (arity conflicts, invalid constraints).
    Algebra,
    /// A document or request argument failed to parse.
    Parse,
    /// A malformed wire frame.
    Protocol,
    /// A transport failure (connection refused, reset, I/O error).
    Transport,
    /// The server refuses to serve the request: it is shutting down, or
    /// the connection has not presented the required auth token.
    Unavailable,
    /// The server's bounded compose queue is saturated; the request was
    /// shed without being executed and may be retried later.
    Busy,
    /// The serving side is a read-only replication follower; the message
    /// names the leader address that accepts writes.
    Readonly,
    /// A `Subscribe` position predates the oldest retained generation
    /// (compaction discarded those records); bootstrap from `Snapshot`.
    Stale,
}

impl ErrorCode {
    /// Every code, for exhaustive codec tests.
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::UnknownSchema,
        ErrorCode::UnknownMapping,
        ErrorCode::NoPath,
        ErrorCode::EmptyPath,
        ErrorCode::ChainMismatch,
        ErrorCode::Incomplete,
        ErrorCode::Algebra,
        ErrorCode::Parse,
        ErrorCode::Protocol,
        ErrorCode::Transport,
        ErrorCode::Unavailable,
        ErrorCode::Busy,
        ErrorCode::Readonly,
        ErrorCode::Stale,
    ];

    /// The stable wire string of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownSchema => "unknown-schema",
            ErrorCode::UnknownMapping => "unknown-mapping",
            ErrorCode::NoPath => "no-path",
            ErrorCode::EmptyPath => "empty-path",
            ErrorCode::ChainMismatch => "chain-mismatch",
            ErrorCode::Incomplete => "incomplete",
            ErrorCode::Algebra => "algebra",
            ErrorCode::Parse => "parse",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Transport => "transport",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Busy => "busy",
            ErrorCode::Readonly => "readonly",
            ErrorCode::Stale => "stale",
        }
    }

    /// Parse a wire string back into a code.
    pub fn parse(text: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|code| code.as_str() == text)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The one error type of the service API: a stable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ServiceError {
    /// An error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServiceError { code, message: message.into() }
    }

    /// A [`ErrorCode::Parse`] error.
    pub fn parse(message: impl Into<String>) -> Self {
        ServiceError::new(ErrorCode::Parse, message)
    }

    /// A [`ErrorCode::Protocol`] error.
    pub fn protocol(message: impl Into<String>) -> Self {
        ServiceError::new(ErrorCode::Protocol, message)
    }

    /// A [`ErrorCode::Transport`] error.
    pub fn transport(message: impl Into<String>) -> Self {
        ServiceError::new(ErrorCode::Transport, message)
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<CatalogError> for ServiceError {
    fn from(error: CatalogError) -> Self {
        let code = match &error {
            CatalogError::UnknownSchema(_) => ErrorCode::UnknownSchema,
            CatalogError::UnknownMapping(_) => ErrorCode::UnknownMapping,
            CatalogError::NoPath { .. } => ErrorCode::NoPath,
            CatalogError::EmptyPath { .. } => ErrorCode::EmptyPath,
            CatalogError::ChainMismatch { .. } => ErrorCode::ChainMismatch,
            CatalogError::Incomplete { .. } => ErrorCode::Incomplete,
            CatalogError::Algebra(_) => ErrorCode::Algebra,
        };
        ServiceError::new(code, error.to_string())
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(error: std::io::Error) -> Self {
        ServiceError::transport(error.to_string())
    }
}
