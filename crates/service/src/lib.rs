//! # mapcomp-service
//!
//! The transport-agnostic service API over the mapping catalog: the paper
//! positions composition as a reusable component inside model-management
//! systems, and this crate is the component boundary — a typed
//! request/response surface with interchangeable in-process and network
//! backends.
//!
//! * [`api`] — the [`Request`]/[`Response`] enums, the chain/stats wire
//!   payloads, and the unified [`ServiceError`] with stable machine-readable
//!   [`ErrorCode`]s.
//! * [`wire`] — the hand-rolled, line-oriented frame codec (offline, no
//!   serde): percent-escaped tokens over `key value…` lines, terminated by
//!   `end`, with strict decoding.
//! * [`service`] — the [`MapcompService`] trait and the in-process
//!   [`LocalService`] backend over a concurrent
//!   [`mapcomp_catalog::SharedSession`], with optional catalog-file +
//!   sidecar persistence (cross-process `.lock`-protected).
//! * [`server`] — the threaded [`Server`]: a `std::net::TcpListener` front
//!   end with a bounded pool of scoped connection workers and graceful
//!   in-band shutdown.
//! * [`event`] — the readiness-driven [`EventServer`]: one event loop
//!   (epoll/poll via the offline `polling` shim) owning every socket,
//!   per-connection state machines with request pipelining, and a bounded
//!   CPU worker pool with explicit `busy` backpressure.
//! * [`client`] — the blocking [`Client`], itself a [`MapcompService`], so
//!   callers cannot tell (and must not care) whether the catalog is local
//!   or remote.
//! * [`follower`] — follower mode: a read-only replica fed by a leader's
//!   replication stream (subscribe, snapshot bootstrap, live delta apply),
//!   the serving side of `mapcomp serve --follow` — see
//!   `docs/REPLICATION.md`.
//!
//! The wire format is fully specified in `docs/WIRE_PROTOCOL.md` (frame
//! grammar, escaping, every request/response kind, the stable error-code
//! table) and the durability story — incremental delta appends on the
//! serve hot path, compaction, crash recovery — in `docs/PERSISTENCE.md`;
//! both specs are executed by `tests/docs_examples.rs`, and
//! `docs/ARCHITECTURE.md` maps the whole workspace.
//!
//! ## Quick start
//!
//! ```
//! use mapcomp_catalog::Catalog;
//! use mapcomp_service::{Client, LocalService, MapcompService, Request, Response, Server};
//!
//! // An in-memory backend, a loopback server, and a client.
//! let service = LocalService::new(Catalog::new(), 2);
//! let server = Server::bind("127.0.0.1:0").unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! std::thread::scope(|scope| {
//!     scope.spawn(|| server.run(&service, 2).unwrap());
//!     let client = Client::connect(&addr).unwrap();
//!     let document = "schema s1 { R/1; } schema s2 { S/1; }\n\
//!                     mapping m : s1 -> s2 { R <= S; }";
//!     client.call(Request::AddDocument { text: document.into() }).unwrap();
//!     match client.call(Request::ComposePath { from: "s1".into(), to: "s2".into() }) {
//!         Ok(Response::Composed(payload)) => assert_eq!(payload.path, vec!["m"]),
//!         other => panic!("unexpected reply: {other:?}"),
//!     }
//!     client.call(Request::Shutdown).unwrap();
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod client;
pub mod event;
pub mod follower;
pub mod server;
pub mod service;
pub mod wire;

pub use api::{
    AnalysisPayload, CacheInfoPayload, ChainPayload, DeltaChunkPayload, ErrorCode, MappingInfo,
    MigratePayload, ReplicationInfo, Request, Response, SegmentCacheInfo, ServiceError,
    SnapshotPayload, StatsPayload,
};
pub use client::Client;
pub use event::EventServer;
pub use follower::{Follower, FollowerState, ReadOnlyService};
pub use server::Server;
pub use service::{sidecar_path, LocalService, MapcompService, PersistMode, PersistPolicy};
pub use wire::{
    decode_reply, decode_request, decode_request_frame, decode_request_traced, encode_reply,
    encode_request, encode_request_frame, encode_request_traced, escape, read_frame, unescape,
};
