//! The blocking TCP client: a [`MapcompService`] whose backend lives on the
//! other side of a socket.
//!
//! One [`Client`] owns one connection and serialises its calls through an
//! internal mutex, so a client can be shared by reference across threads.
//! Each call is one request frame followed by one reply frame — the *wire
//! protocol* supports pipelining (servers answer back-to-back frames in
//! order), but this blocking client keeps the simple lock-step discipline.
//! For *parallel* traffic, open one client per thread; the event-loop
//! server multiplexes any number of connections, and the threaded server
//! serves each from its worker pool.
//!
//! Against a server started with an auth token, build the client with
//! [`Client::with_auth_token`]: the token rides the first frame as the
//! optional `auth` field (authenticating the connection once) and is
//! omitted afterwards.

use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

use crate::api::{Request, Response, ServiceError};
use crate::service::MapcompService;
use crate::wire::{decode_reply, encode_request_frame, read_frame};

/// A blocking client over one TCP connection.
pub struct Client {
    connection: Mutex<Connection>,
    auth_token: Option<String>,
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Has the auth token already been presented on this connection?
    auth_sent: bool,
}

impl Client {
    /// Connect to a server at `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|error| {
            ServiceError::transport(format!("cannot connect to {addr}: {error}"))
        })?;
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|error| ServiceError::transport(format!("cannot clone stream: {error}")))?;
        Ok(Client {
            connection: Mutex::new(Connection {
                reader: BufReader::new(stream),
                writer,
                auth_sent: false,
            }),
            auth_token: None,
        })
    }

    /// Present `token` in the first request frame's `auth` field, for
    /// servers that require authentication. The server remembers the
    /// connection once the token checks out, so later frames omit it —
    /// with no token the client's frames are byte-identical to an
    /// auth-unaware build's.
    pub fn with_auth_token(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// Send one request and read its reply.
    pub fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.call_with_trace(request, None)
    }

    /// Send one request carrying `trace` as the optional `trace` frame
    /// field, so the serving side's spans adopt the caller's trace ID.
    pub fn call_with_trace(
        &self,
        request: Request,
        trace: Option<u64>,
    ) -> Result<Response, ServiceError> {
        let mut connection = self.connection.lock().unwrap_or_else(PoisonError::into_inner);
        let auth = if connection.auth_sent { None } else { self.auth_token.as_deref() };
        let frame = encode_request_frame(&request, trace, auth);
        connection
            .writer
            .write_all(frame.as_bytes())
            .and_then(|()| connection.writer.flush())
            .map_err(|error| ServiceError::transport(format!("cannot send request: {error}")))?;
        connection.auth_sent = true;
        let frame = read_frame(&mut connection.reader)
            .map_err(|error| ServiceError::transport(format!("cannot read reply: {error}")))?
            .ok_or_else(|| ServiceError::transport("server closed the connection"))?;
        decode_reply(&frame)?
    }
}

impl MapcompService for Client {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        Client::call(self, request)
    }

    fn call_traced(&self, request: Request, trace: Option<u64>) -> Result<Response, ServiceError> {
        self.call_with_trace(request, trace)
    }
}
