//! The blocking TCP client: a [`MapcompService`] whose backend lives on the
//! other side of a socket.
//!
//! One [`Client`] owns one connection and serialises its calls through an
//! internal mutex, so a client can be shared by reference across threads
//! (each call is one request frame followed by one reply frame — the
//! protocol has no pipelining). For *parallel* traffic, open one client per
//! thread; the server's worker pool serves each connection independently.

use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

use crate::api::{Request, Response, ServiceError};
use crate::service::MapcompService;
use crate::wire::{decode_reply, encode_request_traced, read_frame};

/// A blocking client over one TCP connection.
pub struct Client {
    connection: Mutex<Connection>,
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server at `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|error| {
            ServiceError::transport(format!("cannot connect to {addr}: {error}"))
        })?;
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|error| ServiceError::transport(format!("cannot clone stream: {error}")))?;
        Ok(Client { connection: Mutex::new(Connection { reader: BufReader::new(stream), writer }) })
    }

    /// Send one request and read its reply.
    pub fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.call_with_trace(request, None)
    }

    /// Send one request carrying `trace` as the optional `trace` frame
    /// field, so the serving side's spans adopt the caller's trace ID.
    pub fn call_with_trace(
        &self,
        request: Request,
        trace: Option<u64>,
    ) -> Result<Response, ServiceError> {
        let mut connection = self.connection.lock().unwrap_or_else(PoisonError::into_inner);
        connection
            .writer
            .write_all(encode_request_traced(&request, trace).as_bytes())
            .and_then(|()| connection.writer.flush())
            .map_err(|error| ServiceError::transport(format!("cannot send request: {error}")))?;
        let frame = read_frame(&mut connection.reader)
            .map_err(|error| ServiceError::transport(format!("cannot read reply: {error}")))?
            .ok_or_else(|| ServiceError::transport("server closed the connection"))?;
        decode_reply(&frame)?
    }
}

impl MapcompService for Client {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        Client::call(self, request)
    }

    fn call_traced(&self, request: Request, trace: Option<u64>) -> Result<Response, ServiceError> {
        self.call_with_trace(request, trace)
    }
}
