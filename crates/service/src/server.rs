//! The threaded TCP front end: a bounded pool of scoped connection workers
//! over one shared backend.
//!
//! Connections are accepted on the caller's thread and handed to a fixed
//! number of worker threads through a condvar-guarded queue — the bound *is*
//! the worker count, so a flood of connections queues instead of spawning
//! unboundedly. Each worker owns one connection at a time and serves frames
//! off it until the peer disconnects, so a client can issue many requests
//! over one connection without re-handshaking.
//!
//! Shutdown is graceful and in-band: a [`Request::Shutdown`] frame makes
//! the backend persist, the reply reaches the requesting client, the accept
//! loop stops taking new connections (a self-connection unblocks it), and
//! connections a worker is already serving are finished. Connections still
//! *waiting* in the queue when shutdown starts are closed without being
//! served (their gauge and close counters stay honest), so shutdown is
//! bounded even when queued peers would never speak.
//!
//! The readiness-driven sibling lives in [`crate::event`]; both front ends
//! speak the identical wire protocol, and the transport-equivalence suite
//! diffs them byte for byte.

use std::collections::VecDeque;
use std::io::{BufWriter, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mapcomp_telemetry::log::{json_line, LogFormat, LogValue};
use mapcomp_telemetry::metrics::{global, Counter, Gauge};

use crate::api::{ErrorCode, Request, Response, ServiceError};
use crate::service::MapcompService;
use crate::wire::{decode_request_frame, encode_reply, MAX_FRAME_BYTES};

/// A TCP server for a [`MapcompService`] backend.
pub struct Server {
    listener: TcpListener,
    shutdown: AtomicBool,
    /// Drop a connection whose peer stays silent this long between frames
    /// (`None` = keep idle connections forever, the default).
    idle_timeout: Option<Duration>,
    /// Emit structured connection/request log lines on stderr in this
    /// format (`None` = silent, the default and the historical behaviour).
    log_format: Option<LogFormat>,
    /// Log any request slower than this even when `log_format` is off
    /// (`None` = no slow-request logging, the default).
    slow_threshold: Option<Duration>,
    /// When set, connections must present this token in an `auth` frame
    /// field before any request is served.
    auth_token: Option<String>,
    telemetry: ServerTelemetry,
}

/// Transport-level metric handles, registered once per server against the
/// process-global registry. Shared with the event-loop front end
/// ([`crate::event::EventServer`]) so both engines report under one metric
/// family.
pub(crate) struct ServerTelemetry {
    pub(crate) connections_accepted: &'static Counter,
    pub(crate) connections_closed: &'static Counter,
    pub(crate) connections_active: &'static Gauge,
    pub(crate) queue_depth: &'static Gauge,
    pub(crate) frame_bytes_read: &'static Counter,
    pub(crate) frame_bytes_written: &'static Counter,
    pub(crate) cpu_queue_depth: &'static Gauge,
    pub(crate) busy_rejected: &'static Counter,
}

impl ServerTelemetry {
    pub(crate) fn new() -> Self {
        let registry = global();
        ServerTelemetry {
            connections_accepted: registry.counter(
                "server_connections_accepted_total",
                "TCP connections accepted by the serve loop.",
                &[],
            ),
            connections_closed: registry.counter(
                "server_connections_closed_total",
                "TCP connections that finished (disconnect, idle reap, or error).",
                &[],
            ),
            connections_active: registry.gauge(
                "server_connections_active",
                "TCP connections currently being served by a pool worker.",
                &[],
            ),
            queue_depth: registry.gauge(
                "server_queue_depth",
                "Accepted connections waiting for a free pool worker.",
                &[],
            ),
            frame_bytes_read: registry.counter(
                "server_frame_bytes_read_total",
                "Request frame bytes read off client connections.",
                &[],
            ),
            frame_bytes_written: registry.counter(
                "server_frame_bytes_written_total",
                "Reply frame bytes written to client connections.",
                &[],
            ),
            cpu_queue_depth: registry.gauge(
                "server_cpu_queue_depth",
                "Decoded requests waiting for a free CPU worker (event engine).",
                &[],
            ),
            busy_rejected: registry.counter(
                "server_busy_rejected_total",
                "Requests shed with the `busy` error because the CPU queue was full.",
                &[],
            ),
        }
    }
}

/// Compare a presented auth token against the expected one in constant
/// time: the scan length depends only on the *expected* token, and every
/// byte position contributes to the verdict, so timing reveals neither the
/// match prefix length nor the expected length.
pub(crate) fn token_matches(expected: &str, presented: &str) -> bool {
    let expected = expected.as_bytes();
    let presented = presented.as_bytes();
    let mut diff = expected.len() ^ presented.len();
    for (i, &byte) in expected.iter().enumerate() {
        // Out-of-range presented bytes fold in a constant instead.
        diff |= usize::from(byte ^ presented.get(i).copied().unwrap_or(0));
    }
    diff == 0
}

/// The error a request on a not-yet-authenticated connection gets.
pub(crate) fn auth_required() -> ServiceError {
    ServiceError::new(
        ErrorCode::Unavailable,
        "authentication required: present the server's token in an `auth` field",
    )
}

/// What one attempt to pull a frame off a connection produced.
pub(crate) enum FrameEvent {
    /// A complete frame (terminator line included).
    Frame(String),
    /// The peer closed the connection at a frame boundary.
    ClosedClean,
    /// The idle timeout elapsed with *no partial frame buffered* — the
    /// connection is truly idle and may be reaped.
    Idle,
}

/// Progress-aware framing over a blocking socket with a read timeout.
///
/// [`crate::wire::read_frame`] over a `BufReader` loses buffered bytes when
/// a read times out, so the old frame loop had to treat *any* timeout as an
/// idle disconnect — reaping slow peers that had already delivered half a
/// frame. This reader owns its buffer across timeouts: a timeout with
/// buffered bytes means the peer is mid-frame (it made progress and owes
/// the remainder), so the reader keeps waiting; only a timeout with an
/// empty buffer reports [`FrameEvent::Idle`].
pub(crate) struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Start of the first line not yet scanned for the `end` terminator —
    /// everything before it is known frame body.
    scanned: usize,
}

impl FrameReader {
    pub(crate) fn new(stream: TcpStream) -> Self {
        FrameReader { stream, buf: Vec::new(), scanned: 0 }
    }

    /// Pull the next complete frame, blocking (in read-timeout slices)
    /// until one arrives, the peer disconnects, or the connection proves
    /// idle.
    pub(crate) fn next_frame(&mut self) -> std::io::Result<FrameEvent> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(FrameEvent::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FrameEvent::ClosedClean)
                    } else {
                        Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    };
                }
                Ok(read) => {
                    self.buf.extend_from_slice(&chunk[..read]);
                    if self.buf.len() as u64 > MAX_FRAME_BYTES {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("frame exceeds the {MAX_FRAME_BYTES}-byte bound"),
                        ));
                    }
                }
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.buf.is_empty() {
                        return Ok(FrameEvent::Idle);
                    }
                    // Mid-frame: the peer has made progress and owes the
                    // rest; keep waiting instead of reaping.
                }
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
    }

    /// Extract one complete frame from the buffer, if a terminator line has
    /// arrived. `scanned` always rests on a line *start*, so complete lines
    /// are examined once however the reads were sliced; only a trailing
    /// partial line is rescanned when more of it arrives.
    fn take_frame(&mut self) -> std::io::Result<Option<String>> {
        while let Some(offset) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let line_end = self.scanned + offset;
            let line = &self.buf[self.scanned..line_end];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            self.scanned = line_end + 1;
            if line == crate::wire::FRAME_END.as_bytes() {
                let rest = self.buf.split_off(self.scanned);
                let frame = std::mem::replace(&mut self.buf, rest);
                self.scanned = 0;
                return match String::from_utf8(frame) {
                    Ok(frame) => Ok(Some(frame)),
                    Err(_) => Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "frame is not valid UTF-8",
                    )),
                };
            }
        }
        Ok(None)
    }
}

/// The worker pool's shared state: the pending-connection queue and the
/// signal that wakes idle workers.
struct Pool {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port — read the result off [`Server::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            shutdown: AtomicBool::new(false),
            idle_timeout: None,
            log_format: None,
            slow_threshold: None,
            auth_token: None,
            telemetry: ServerTelemetry::new(),
        })
    }

    /// Require every connection to authenticate before serving requests:
    /// until a frame carrying the matching `auth <token>` field arrives,
    /// all requests on the connection are refused with
    /// [`ErrorCode::Unavailable`]. One valid token authenticates the whole
    /// connection. `None` (the default) serves everyone — the right call
    /// for loopback deployments only.
    pub fn set_auth_token(&mut self, token: Option<String>) {
        self.auth_token = token;
    }

    /// The configured auth token.
    pub fn auth_token(&self) -> Option<&str> {
        self.auth_token.as_deref()
    }

    /// Emit one structured log line per connection event and per request on
    /// stderr, in `format`. `None` (the default) keeps the serve loop
    /// silent, matching the pre-observability behaviour.
    pub fn set_log_format(&mut self, format: Option<LogFormat>) {
        self.log_format = format;
    }

    /// The configured log format.
    pub fn log_format(&self) -> Option<LogFormat> {
        self.log_format
    }

    /// Log any request whose handling exceeds `threshold`, even when
    /// [`Server::set_log_format`] is off (slow lines then use the text
    /// format). `None` (the default) disables slow-request logging.
    pub fn set_slow_threshold(&mut self, threshold: Option<Duration>) {
        self.slow_threshold = threshold;
    }

    /// The configured slow-request threshold.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// Render one log line if logging is on (`force_slow` bypasses the
    /// format gate for slow-request lines).
    fn log(&self, force_slow: bool, event: &str, fields: &[(&str, LogValue<'_>)]) {
        let format = match self.log_format {
            Some(format) => format,
            None if force_slow => LogFormat::Text,
            None => return,
        };
        eprintln!("{}", json_line(format, event, fields));
    }

    /// Reap connections whose peer sends nothing for `timeout` between
    /// frames, freeing their pool worker for queued connections — without
    /// this, a pool of N workers is pinned solid by N abandoned clients.
    /// Only *truly idle* connections are reaped: a peer that has buffered
    /// part of a frame has made progress and is waited on, however slowly
    /// the remainder trickles in, so a stalling half-frame client is never
    /// silently dropped mid-request. `None` disables reaping (the
    /// default).
    pub fn set_idle_timeout(&mut self, timeout: Option<Duration>) {
        self.idle_timeout = timeout;
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Has a shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from outside a connection (tests, signal handlers):
    /// stops the accept loop via a self-connection.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop; the dummy connection is dropped by
            // whoever receives it.
            if let Ok(addr) = self.listener.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1));
            }
        }
    }

    /// Serve until a [`Request::Shutdown`] arrives (or
    /// [`Server::begin_shutdown`] is called), with `workers` scoped
    /// connection-handler threads. Blocks the calling thread; connections
    /// a worker is already serving are finished, while connections still
    /// queued for a worker are closed unserved (so shutdown cannot hang on
    /// a queued peer that never speaks).
    pub fn run<S: MapcompService + Sync>(
        &self,
        service: &S,
        workers: usize,
    ) -> std::io::Result<()> {
        let workers = workers.max(1);
        let pool = Pool { queue: Mutex::new(VecDeque::new()), available: Condvar::new() };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&pool, service));
            }
            for stream in self.listener.incoming() {
                if self.is_shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.telemetry.connections_accepted.incr();
                let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
                queue.push_back(stream);
                self.telemetry.queue_depth.set(queue.len() as i64);
                drop(queue);
                pool.available.notify_one();
            }
            // Accepting is over; wake every idle worker so it can observe
            // the flag (workers drain the queue before exiting).
            pool.available.notify_all();
        });
        Ok(())
    }

    /// One worker: pop connections until shutdown. The first worker to
    /// observe the shutdown flag also drops every connection still queued —
    /// closing them unserved keeps shutdown bounded and walks the queue
    /// gauge back to zero (serving them instead could block forever on a
    /// silent peer, and silently discarding them would leak the gauge).
    fn worker_loop<S: MapcompService>(&self, pool: &Pool, service: &S) {
        loop {
            let stream = {
                let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if self.is_shutting_down() {
                        let drained = queue.drain(..).count();
                        if drained > 0 {
                            self.telemetry.queue_depth.set(0);
                            self.telemetry.connections_closed.add(drained as u64);
                        }
                        break None;
                    }
                    if let Some(stream) = queue.pop_front() {
                        self.telemetry.queue_depth.set(queue.len() as i64);
                        break Some(stream);
                    }
                    queue = pool.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(stream) = stream else { return };
            // A connection-level I/O failure abandons that connection only.
            let _ = self.handle_connection(stream, pool, service);
        }
    }

    /// Serve frames off one connection until the peer disconnects.
    fn handle_connection<S: MapcompService>(
        &self,
        stream: TcpStream,
        pool: &Pool,
        service: &S,
    ) -> std::io::Result<()> {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.idle_timeout);
        let peer = stream.peer_addr().map_or_else(|_| "?".into(), |a| a.to_string());
        self.telemetry.connections_active.add(1);
        self.log(false, "connection-open", &[("peer", LogValue::Str(&peer))]);
        let outcome = self.serve_frames(stream, pool, service, &peer);
        self.telemetry.connections_active.add(-1);
        self.telemetry.connections_closed.incr();
        self.log(
            false,
            "connection-close",
            &[("peer", LogValue::Str(&peer)), ("ok", LogValue::Bool(outcome.is_ok()))],
        );
        outcome
    }

    /// The frame loop of [`Server::handle_connection`], split out so the
    /// lifecycle bookkeeping above runs on every exit path.
    fn serve_frames<S: MapcompService>(
        &self,
        stream: TcpStream,
        pool: &Pool,
        service: &S,
        peer: &str,
    ) -> std::io::Result<()> {
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = FrameReader::new(stream);
        let mut authed = false;
        loop {
            let frame = match reader.next_frame() {
                Ok(FrameEvent::Frame(frame)) => frame,
                // Clean disconnect.
                Ok(FrameEvent::ClosedClean) => break,
                // The idle timeout elapsed with no partial frame buffered:
                // the connection is truly idle, reap it so the worker can
                // serve someone else (a mid-frame stall keeps waiting
                // inside `next_frame`).
                Ok(FrameEvent::Idle) => break,
                Err(error) => return Err(error),
            };
            self.telemetry.frame_bytes_read.add(frame.len() as u64);
            let started = Instant::now();
            let mut kind = "?";
            let mut trace_id = None;
            let reply = match decode_request_frame(&frame) {
                Ok((request, trace, auth)) => {
                    kind = request.kind();
                    trace_id = trace;
                    if let (false, Some(expected)) = (authed, &self.auth_token) {
                        authed =
                            auth.as_deref().is_some_and(|token| token_matches(expected, token));
                    }
                    if self.auth_token.is_some() && !authed {
                        Err(auth_required())
                    } else if self.is_shutting_down() && !matches!(request, Request::Shutdown) {
                        Err(ServiceError::new(
                            crate::api::ErrorCode::Unavailable,
                            "server is shutting down",
                        ))
                    } else {
                        service.call_traced(request, trace)
                    }
                }
                // A malformed frame is reported to the peer; the connection
                // survives (frames are line-delimited, so the stream is
                // already re-synchronised at the next frame boundary).
                Err(error) => Err(error),
            };
            let encoded = encode_reply(&reply);
            writer.write_all(encoded.as_bytes())?;
            writer.flush()?;
            self.telemetry.frame_bytes_written.add(encoded.len() as u64);
            let elapsed = started.elapsed();
            let slow = self.slow_threshold.is_some_and(|threshold| elapsed >= threshold);
            if self.log_format.is_some() || slow {
                let trace = trace_id.map(|id| format!("{id:016x}"));
                let mut fields = vec![
                    ("peer", LogValue::Str(peer)),
                    ("kind", LogValue::Str(kind)),
                    ("ms", LogValue::F64(elapsed.as_secs_f64() * 1e3)),
                    ("ok", LogValue::Bool(reply.is_ok())),
                ];
                if let Some(trace) = &trace {
                    fields.push(("trace", LogValue::Str(trace)));
                }
                if slow {
                    fields.push(("slow", LogValue::Bool(true)));
                }
                self.log(slow, if slow { "slow-request" } else { "request" }, &fields);
            }
            if matches!(reply, Ok(Response::ShuttingDown)) {
                self.begin_shutdown();
                pool.available.notify_all();
                break;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("idle_timeout", &self.idle_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;
    use crate::client::Client;
    use crate::service::LocalService;
    use crate::wire::read_frame;
    use mapcomp_catalog::Catalog;
    use std::io::BufReader;

    fn chain_catalog(hops: usize) -> Catalog {
        use mapcomp_algebra::{parse_constraints, Signature};
        let mut catalog = Catalog::new();
        for i in 0..=hops {
            catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..hops {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn server_round_trips_requests_and_shuts_down_cleanly() {
        let service = LocalService::new(chain_catalog(4), 2);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 2).unwrap());

            let client = Client::connect(&addr).unwrap();
            assert_eq!(client.call(Request::Ping).unwrap(), Response::Pong);

            // The remote composition matches the in-process one byte for
            // byte (fresh local backend, same catalog, same request).
            let remote =
                client.call(Request::ComposePath { from: "v0".into(), to: "v4".into() }).unwrap();
            let local = LocalService::new(chain_catalog(4), 2)
                .call(Request::ComposePath { from: "v0".into(), to: "v4".into() })
                .unwrap();
            assert_eq!(remote, local);

            // Errors travel with their codes.
            let error = client
                .call(Request::ComposePath { from: "v4".into(), to: "v0".into() })
                .unwrap_err();
            assert_eq!(error.code, ErrorCode::NoPath);

            // A second concurrent connection works while the first is open.
            let second = Client::connect(&addr).unwrap();
            assert_eq!(second.call(Request::Ping).unwrap(), Response::Pong);

            assert_eq!(client.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });
        assert!(server.is_shutting_down());
    }

    #[test]
    fn idle_connections_are_reaped_to_free_pool_workers() {
        let service = LocalService::new(chain_catalog(2), 1);
        let mut server = Server::bind("127.0.0.1:0").unwrap();
        server.set_idle_timeout(Some(std::time::Duration::from_millis(80)));
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            // One worker: without idle reaping, an abandoned first
            // connection would pin it and starve every later client.
            scope.spawn(move || server.run(service, 1).unwrap());

            let abandoned = Client::connect(&addr).unwrap();
            assert_eq!(abandoned.call(Request::Ping).unwrap(), Response::Pong);
            // Let the first connection idle past the timeout; the lone
            // worker is only free to serve a second client if it was
            // reaped.
            std::thread::sleep(std::time::Duration::from_millis(250));
            let second = Client::connect(&addr).unwrap();
            assert_eq!(second.call(Request::Ping).unwrap(), Response::Pong);

            // The reaped connection is gone: its next call fails.
            let error = abandoned.call(Request::Ping).unwrap_err();
            assert_eq!(error.code, ErrorCode::Transport);

            assert_eq!(second.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });
    }

    #[test]
    fn a_stalling_half_frame_client_is_not_reaped_as_idle() {
        let service = LocalService::new(chain_catalog(2), 1);
        let mut server = Server::bind("127.0.0.1:0").unwrap();
        server.set_idle_timeout(Some(std::time::Duration::from_millis(80)));
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 1).unwrap());

            let raw = TcpStream::connect(addr).unwrap();
            raw.set_nodelay(true).unwrap();
            let mut writer = raw.try_clone().unwrap();
            let mut reader = BufReader::new(raw);
            // Deliver half a frame, stall well past the idle timeout, then
            // finish it: the connection has made progress, so the reply
            // must still arrive.
            let frame = crate::wire::encode_request(&Request::Ping);
            let (head, tail) = frame.split_at(frame.len() / 2);
            writer.write_all(head.as_bytes()).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            writer.write_all(tail.as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&reply).unwrap().unwrap(), Response::Pong);

            writer.write_all(crate::wire::encode_request(&Request::Shutdown).as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&reply).unwrap().unwrap(), Response::ShuttingDown);
        });
    }

    #[test]
    fn auth_gated_connections_refuse_requests_until_the_token_arrives() {
        let service = LocalService::new(chain_catalog(2), 1);
        let mut server = Server::bind("127.0.0.1:0").unwrap();
        server.set_auth_token(Some("open sesame".into()));
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 2).unwrap());

            // No token: refused with `unavailable`, connection survives.
            let raw = TcpStream::connect(addr).unwrap();
            let mut writer = raw.try_clone().unwrap();
            let mut reader = BufReader::new(raw);
            writer.write_all(crate::wire::encode_request(&Request::Ping).as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(
                crate::wire::decode_reply(&reply).unwrap().unwrap_err().code,
                ErrorCode::Unavailable
            );

            // Wrong token: still refused.
            let wrong =
                crate::wire::encode_request_frame(&Request::Ping, None, Some("open sesamf"));
            writer.write_all(wrong.as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(
                crate::wire::decode_reply(&reply).unwrap().unwrap_err().code,
                ErrorCode::Unavailable
            );

            // Right token: served — and the whole connection is authed, so
            // the next frame may omit the field.
            let good = crate::wire::encode_request_frame(&Request::Ping, None, Some("open sesame"));
            writer.write_all(good.as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&reply).unwrap().unwrap(), Response::Pong);
            writer.write_all(crate::wire::encode_request(&Request::Ping).as_bytes()).unwrap();
            writer.flush().unwrap();
            let reply = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&reply).unwrap().unwrap(), Response::Pong);

            let auth_shutdown =
                crate::wire::encode_request_frame(&Request::Shutdown, None, Some("open sesame"));
            let closer = TcpStream::connect(addr).unwrap();
            let mut closer_writer = closer.try_clone().unwrap();
            let mut closer_reader = BufReader::new(closer);
            closer_writer.write_all(auth_shutdown.as_bytes()).unwrap();
            closer_writer.flush().unwrap();
            let reply = read_frame(&mut closer_reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&reply).unwrap().unwrap(), Response::ShuttingDown);
        });
    }

    #[test]
    fn token_comparison_accepts_exact_matches_only() {
        assert!(token_matches("secret", "secret"));
        assert!(!token_matches("secret", "secreT"));
        assert!(!token_matches("secret", "secre"));
        assert!(!token_matches("secret", "secrets"));
        assert!(!token_matches("secret", ""));
        assert!(token_matches("", ""));
        assert!(!token_matches("", "x"));
    }

    #[test]
    fn shutdown_drops_queued_connections_and_zeroes_the_queue_gauge() {
        let service = LocalService::new(chain_catalog(2), 1);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            // One worker, pinned by the first connection: everything else
            // queues behind it.
            scope.spawn(move || server.run(service, 1).unwrap());

            let pinning = Client::connect(&addr.to_string()).unwrap();
            assert_eq!(pinning.call(Request::Ping).unwrap(), Response::Pong);
            // Queue a few connections the lone worker will never reach
            // (the pinning client keeps it busy until shutdown).
            let queued: Vec<TcpStream> =
                (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
            // Give the accept loop a moment to queue them.
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert_eq!(pinning.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
            drop(queued);
        });
        // Queued-at-shutdown connections were dropped, not leaked: the
        // queue gauge settles back to zero. (The registry is process
        // global, so a concurrently running server test may hold it
        // nonzero for a moment — poll rather than snapshot.)
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let rendered = global().render();
            let gauge_line = rendered
                .lines()
                .find(|line| line.starts_with("server_queue_depth "))
                .expect("queue gauge is registered");
            if gauge_line == "server_queue_depth 0" {
                break;
            }
            assert!(Instant::now() < deadline, "queue gauge stuck at `{gauge_line}`");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn malformed_frames_get_protocol_errors_without_killing_the_connection() {
        let service = LocalService::new(Catalog::new(), 1);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 1).unwrap());

            let raw = TcpStream::connect(addr).unwrap();
            let mut writer = raw.try_clone().unwrap();
            let mut reader = BufReader::new(raw);
            writer.write_all(b"garbage frame\nend\n").unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            let reply = crate::wire::decode_reply(&frame).unwrap();
            assert_eq!(reply.unwrap_err().code, ErrorCode::Protocol);

            // The same connection still serves well-formed frames.
            writer.write_all(crate::wire::encode_request(&Request::Ping).as_bytes()).unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&frame).unwrap().unwrap(), Response::Pong);

            writer.write_all(crate::wire::encode_request(&Request::Shutdown).as_bytes()).unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&frame).unwrap().unwrap(), Response::ShuttingDown);
        });
    }
}
