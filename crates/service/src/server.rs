//! The threaded TCP front end: a bounded pool of scoped connection workers
//! over one shared backend.
//!
//! Connections are accepted on the caller's thread and handed to a fixed
//! number of worker threads through a condvar-guarded queue — the bound *is*
//! the worker count, so a flood of connections queues instead of spawning
//! unboundedly. Each worker owns one connection at a time and serves frames
//! off it until the peer disconnects, so a client can issue many requests
//! over one connection without re-handshaking.
//!
//! Shutdown is graceful and in-band: a [`Request::Shutdown`] frame makes
//! the backend persist, the reply reaches the requesting client, the accept
//! loop stops taking new connections (a self-connection unblocks it), and
//! the workers drain every connection already accepted before
//! [`Server::run`] returns.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mapcomp_telemetry::log::{json_line, LogFormat, LogValue};
use mapcomp_telemetry::metrics::{global, Counter, Gauge};

use crate::api::{Request, Response, ServiceError};
use crate::service::MapcompService;
use crate::wire::{decode_request_traced, encode_reply, read_frame};

/// A TCP server for a [`MapcompService`] backend.
pub struct Server {
    listener: TcpListener,
    shutdown: AtomicBool,
    /// Drop a connection whose peer stays silent this long between frames
    /// (`None` = keep idle connections forever, the default).
    idle_timeout: Option<Duration>,
    /// Emit structured connection/request log lines on stderr in this
    /// format (`None` = silent, the default and the historical behaviour).
    log_format: Option<LogFormat>,
    /// Log any request slower than this even when `log_format` is off
    /// (`None` = no slow-request logging, the default).
    slow_threshold: Option<Duration>,
    telemetry: ServerTelemetry,
}

/// Transport-level metric handles, registered once per server against the
/// process-global registry.
struct ServerTelemetry {
    connections_accepted: &'static Counter,
    connections_closed: &'static Counter,
    connections_active: &'static Gauge,
    queue_depth: &'static Gauge,
    frame_bytes_read: &'static Counter,
    frame_bytes_written: &'static Counter,
}

impl ServerTelemetry {
    fn new() -> Self {
        let registry = global();
        ServerTelemetry {
            connections_accepted: registry.counter(
                "server_connections_accepted_total",
                "TCP connections accepted by the serve loop.",
                &[],
            ),
            connections_closed: registry.counter(
                "server_connections_closed_total",
                "TCP connections that finished (disconnect, idle reap, or error).",
                &[],
            ),
            connections_active: registry.gauge(
                "server_connections_active",
                "TCP connections currently being served by a pool worker.",
                &[],
            ),
            queue_depth: registry.gauge(
                "server_queue_depth",
                "Accepted connections waiting for a free pool worker.",
                &[],
            ),
            frame_bytes_read: registry.counter(
                "server_frame_bytes_read_total",
                "Request frame bytes read off client connections.",
                &[],
            ),
            frame_bytes_written: registry.counter(
                "server_frame_bytes_written_total",
                "Reply frame bytes written to client connections.",
                &[],
            ),
        }
    }
}

/// The worker pool's shared state: the pending-connection queue and the
/// signal that wakes idle workers.
struct Pool {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port — read the result off [`Server::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            shutdown: AtomicBool::new(false),
            idle_timeout: None,
            log_format: None,
            slow_threshold: None,
            telemetry: ServerTelemetry::new(),
        })
    }

    /// Emit one structured log line per connection event and per request on
    /// stderr, in `format`. `None` (the default) keeps the serve loop
    /// silent, matching the pre-observability behaviour.
    pub fn set_log_format(&mut self, format: Option<LogFormat>) {
        self.log_format = format;
    }

    /// The configured log format.
    pub fn log_format(&self) -> Option<LogFormat> {
        self.log_format
    }

    /// Log any request whose handling exceeds `threshold`, even when
    /// [`Server::set_log_format`] is off (slow lines then use the text
    /// format). `None` (the default) disables slow-request logging.
    pub fn set_slow_threshold(&mut self, threshold: Option<Duration>) {
        self.slow_threshold = threshold;
    }

    /// The configured slow-request threshold.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// Render one log line if logging is on (`force_slow` bypasses the
    /// format gate for slow-request lines).
    fn log(&self, force_slow: bool, event: &str, fields: &[(&str, LogValue<'_>)]) {
        let format = match self.log_format {
            Some(format) => format,
            None if force_slow => LogFormat::Text,
            None => return,
        };
        eprintln!("{}", json_line(format, event, fields));
    }

    /// Reap connections whose peer sends nothing for `timeout` between
    /// frames, freeing their pool worker for queued connections — without
    /// this, a pool of N workers is pinned solid by N abandoned clients.
    /// The timeout bounds the *gap* between bytes: a frame that starts
    /// arriving resets it, but a peer that stalls mid-frame is dropped too
    /// (its connection is torn mid-stream either way). `None` disables
    /// reaping (the default).
    pub fn set_idle_timeout(&mut self, timeout: Option<Duration>) {
        self.idle_timeout = timeout;
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Has a shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from outside a connection (tests, signal handlers):
    /// stops the accept loop via a self-connection.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop; the dummy connection is dropped by
            // whoever receives it.
            if let Ok(addr) = self.listener.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1));
            }
        }
    }

    /// Serve until a [`Request::Shutdown`] arrives (or
    /// [`Server::begin_shutdown`] is called), with `workers` scoped
    /// connection-handler threads. Blocks the calling thread; connections
    /// already accepted when shutdown starts are served to completion.
    pub fn run<S: MapcompService + Sync>(
        &self,
        service: &S,
        workers: usize,
    ) -> std::io::Result<()> {
        let workers = workers.max(1);
        let pool = Pool { queue: Mutex::new(VecDeque::new()), available: Condvar::new() };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&pool, service));
            }
            for stream in self.listener.incoming() {
                if self.is_shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.telemetry.connections_accepted.incr();
                let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
                queue.push_back(stream);
                self.telemetry.queue_depth.set(queue.len() as i64);
                drop(queue);
                pool.available.notify_one();
            }
            // Accepting is over; wake every idle worker so it can observe
            // the flag (workers drain the queue before exiting).
            pool.available.notify_all();
        });
        Ok(())
    }

    /// One worker: pop connections until shutdown *and* an empty queue.
    fn worker_loop<S: MapcompService>(&self, pool: &Pool, service: &S) {
        loop {
            let stream = {
                let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(stream) = queue.pop_front() {
                        self.telemetry.queue_depth.set(queue.len() as i64);
                        break Some(stream);
                    }
                    if self.is_shutting_down() {
                        break None;
                    }
                    queue = pool.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(stream) = stream else { return };
            // A connection-level I/O failure abandons that connection only.
            let _ = self.handle_connection(stream, pool, service);
        }
    }

    /// Serve frames off one connection until the peer disconnects.
    fn handle_connection<S: MapcompService>(
        &self,
        stream: TcpStream,
        pool: &Pool,
        service: &S,
    ) -> std::io::Result<()> {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.idle_timeout);
        let peer = stream.peer_addr().map_or_else(|_| "?".into(), |a| a.to_string());
        self.telemetry.connections_active.add(1);
        self.log(false, "connection-open", &[("peer", LogValue::Str(&peer))]);
        let outcome = self.serve_frames(stream, pool, service, &peer);
        self.telemetry.connections_active.add(-1);
        self.telemetry.connections_closed.incr();
        self.log(
            false,
            "connection-close",
            &[("peer", LogValue::Str(&peer)), ("ok", LogValue::Bool(outcome.is_ok()))],
        );
        outcome
    }

    /// The frame loop of [`Server::handle_connection`], split out so the
    /// lifecycle bookkeeping above runs on every exit path.
    fn serve_frames<S: MapcompService>(
        &self,
        stream: TcpStream,
        pool: &Pool,
        service: &S,
        peer: &str,
    ) -> std::io::Result<()> {
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(Some(frame)) => frame,
                // Clean disconnect.
                Ok(None) => break,
                // Idle timeout fired (reported as WouldBlock or TimedOut
                // depending on the platform): reap the connection so the
                // worker can serve someone else.
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(error) => return Err(error),
            };
            self.telemetry.frame_bytes_read.add(frame.len() as u64);
            let started = Instant::now();
            let mut kind = "?";
            let mut trace_id = None;
            let reply = match decode_request_traced(&frame) {
                Ok((request, trace)) => {
                    kind = request.kind();
                    trace_id = trace;
                    if self.is_shutting_down() && !matches!(request, Request::Shutdown) {
                        Err(ServiceError::new(
                            crate::api::ErrorCode::Unavailable,
                            "server is shutting down",
                        ))
                    } else {
                        service.call_traced(request, trace)
                    }
                }
                // A malformed frame is reported to the peer; the connection
                // survives (frames are line-delimited, so the stream is
                // already re-synchronised at the next frame boundary).
                Err(error) => Err(error),
            };
            let encoded = encode_reply(&reply);
            writer.write_all(encoded.as_bytes())?;
            writer.flush()?;
            self.telemetry.frame_bytes_written.add(encoded.len() as u64);
            let elapsed = started.elapsed();
            let slow = self.slow_threshold.is_some_and(|threshold| elapsed >= threshold);
            if self.log_format.is_some() || slow {
                let trace = trace_id.map(|id| format!("{id:016x}"));
                let mut fields = vec![
                    ("peer", LogValue::Str(peer)),
                    ("kind", LogValue::Str(kind)),
                    ("ms", LogValue::F64(elapsed.as_secs_f64() * 1e3)),
                    ("ok", LogValue::Bool(reply.is_ok())),
                ];
                if let Some(trace) = &trace {
                    fields.push(("trace", LogValue::Str(trace)));
                }
                if slow {
                    fields.push(("slow", LogValue::Bool(true)));
                }
                self.log(slow, if slow { "slow-request" } else { "request" }, &fields);
            }
            if matches!(reply, Ok(Response::ShuttingDown)) {
                self.begin_shutdown();
                pool.available.notify_all();
                break;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("idle_timeout", &self.idle_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;
    use crate::client::Client;
    use crate::service::LocalService;
    use mapcomp_catalog::Catalog;

    fn chain_catalog(hops: usize) -> Catalog {
        use mapcomp_algebra::{parse_constraints, Signature};
        let mut catalog = Catalog::new();
        for i in 0..=hops {
            catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..hops {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn server_round_trips_requests_and_shuts_down_cleanly() {
        let service = LocalService::new(chain_catalog(4), 2);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 2).unwrap());

            let client = Client::connect(&addr).unwrap();
            assert_eq!(client.call(Request::Ping).unwrap(), Response::Pong);

            // The remote composition matches the in-process one byte for
            // byte (fresh local backend, same catalog, same request).
            let remote =
                client.call(Request::ComposePath { from: "v0".into(), to: "v4".into() }).unwrap();
            let local = LocalService::new(chain_catalog(4), 2)
                .call(Request::ComposePath { from: "v0".into(), to: "v4".into() })
                .unwrap();
            assert_eq!(remote, local);

            // Errors travel with their codes.
            let error = client
                .call(Request::ComposePath { from: "v4".into(), to: "v0".into() })
                .unwrap_err();
            assert_eq!(error.code, ErrorCode::NoPath);

            // A second concurrent connection works while the first is open.
            let second = Client::connect(&addr).unwrap();
            assert_eq!(second.call(Request::Ping).unwrap(), Response::Pong);

            assert_eq!(client.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });
        assert!(server.is_shutting_down());
    }

    #[test]
    fn idle_connections_are_reaped_to_free_pool_workers() {
        let service = LocalService::new(chain_catalog(2), 1);
        let mut server = Server::bind("127.0.0.1:0").unwrap();
        server.set_idle_timeout(Some(std::time::Duration::from_millis(80)));
        let addr = server.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            // One worker: without idle reaping, an abandoned first
            // connection would pin it and starve every later client.
            scope.spawn(move || server.run(service, 1).unwrap());

            let abandoned = Client::connect(&addr).unwrap();
            assert_eq!(abandoned.call(Request::Ping).unwrap(), Response::Pong);
            // Let the first connection idle past the timeout; the lone
            // worker is only free to serve a second client if it was
            // reaped.
            std::thread::sleep(std::time::Duration::from_millis(250));
            let second = Client::connect(&addr).unwrap();
            assert_eq!(second.call(Request::Ping).unwrap(), Response::Pong);

            // The reaped connection is gone: its next call fails.
            let error = abandoned.call(Request::Ping).unwrap_err();
            assert_eq!(error.code, ErrorCode::Transport);

            assert_eq!(second.call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });
    }

    #[test]
    fn malformed_frames_get_protocol_errors_without_killing_the_connection() {
        let service = LocalService::new(Catalog::new(), 1);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = &server;
            let service = &service;
            scope.spawn(move || server.run(service, 1).unwrap());

            let raw = TcpStream::connect(addr).unwrap();
            let mut writer = raw.try_clone().unwrap();
            let mut reader = BufReader::new(raw);
            writer.write_all(b"garbage frame\nend\n").unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            let reply = crate::wire::decode_reply(&frame).unwrap();
            assert_eq!(reply.unwrap_err().code, ErrorCode::Protocol);

            // The same connection still serves well-formed frames.
            writer.write_all(crate::wire::encode_request(&Request::Ping).as_bytes()).unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&frame).unwrap().unwrap(), Response::Pong);

            writer.write_all(crate::wire::encode_request(&Request::Shutdown).as_bytes()).unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(crate::wire::decode_reply(&frame).unwrap().unwrap(), Response::ShuttingDown);
        });
    }
}
