//! The hand-rolled, line-oriented wire codec.
//!
//! A frame is a block of text lines in the spirit of the repo's plain-text
//! task format:
//!
//! ```text
//! mapcomp-service 1 request compose-path
//! from %73%310          (escaped tokens)
//! to sigma3
//! end
//! ```
//!
//! The first line names the protocol, its version, the direction
//! (`request`/`response`) and the kind keyword; field lines follow, one
//! `key value…` pair per line; a literal `end` line terminates the frame.
//! Request frames may carry two optional fields recognised for *every*
//! request kind, before kind-specific parsing: `trace <16-hex>` (the
//! caller's trace ID, so server-side spans correlate with the client that
//! caused them) and `auth <token>` (a percent-escaped shared secret for
//! non-loopback deployments; servers configured with a token refuse
//! requests until a connection has presented it). The canonical field
//! order is `trace`, then `auth`, then kind-specific fields, and encoders
//! emit each field only when set — so a new client talking to an old
//! server sends exactly the old frames.
//! Every value token is percent-escaped ([`escape`]) so arbitrary strings —
//! embedded spaces, newlines, `%`, the empty string — survive the
//! whitespace-separated grammar, and multi-valued fields simply repeat the
//! line or the token. Batch items nest recursively: each item is a complete
//! reply frame escaped into a single token.
//!
//! Decoding is strict where structure is concerned (unknown kinds, missing
//! or duplicated fields, bad numbers and truncated frames all fail with
//! [`ErrorCode::Protocol`]) because a service boundary that silently guesses
//! is worse than one that rejects; round-trip coverage lives in the crate's
//! property suite.

use std::io::BufRead;

use crate::api::{
    AnalysisPayload, CacheInfoPayload, ChainPayload, DeltaChunkPayload, ErrorCode, MappingInfo,
    MigratePayload, ReplicationInfo, Request, Response, SegmentCacheInfo, ServiceError,
    SnapshotPayload, StatsPayload,
};
use mapcomp_catalog::{CacheStats, Position, SessionStats};

/// Protocol name and version, the first two tokens of every frame.
pub const PROTOCOL: &str = "mapcomp-service 1";

/// The frame terminator line.
pub const FRAME_END: &str = "end";

// ---------------------------------------------------------------------------
// Token escaping
// ---------------------------------------------------------------------------

/// Escape an arbitrary string into a single whitespace-free token: `%` and
/// every whitespace or control character (Unicode included — the grammar
/// tokenises with `split_whitespace`) become `%XX` byte escapes of their
/// UTF-8 encoding, and the empty string becomes the marker `%e` (which no
/// non-empty escape ever produces, since a literal `%` escapes to `%25`).
///
/// This is the same escaping the sidecar's delta records use
/// ([`mapcomp_catalog::escape_field`] — one implementation, so the two
/// grammars cannot silently diverge).
pub fn escape(text: &str) -> String {
    mapcomp_catalog::escape_field(text)
}

/// Undo [`escape`]. Fails with [`ErrorCode::Protocol`] on truncated or
/// non-hex escapes and on invalid UTF-8.
pub fn unescape(token: &str) -> Result<String, ServiceError> {
    mapcomp_catalog::unescape_field(token)
        .ok_or_else(|| ServiceError::protocol(format!("malformed escape in token `{token}`")))
}

// ---------------------------------------------------------------------------
// Frame reading
// ---------------------------------------------------------------------------

/// The largest frame [`read_frame`] will buffer (64 MiB) — far above any
/// legitimate catalog payload, low enough that one connection cannot grow
/// the peer's memory without bound.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// Read one frame (everything up to and including the `end` line) from a
/// buffered reader. Returns `Ok(None)` on a clean end-of-stream before any
/// frame content, `Err(UnexpectedEof)` when the stream ends mid-frame, and
/// `Err(InvalidData)` when a frame exceeds [`MAX_FRAME_BYTES`] (the
/// connection is no longer in sync and should be dropped).
pub fn read_frame(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut limited = std::io::Read::take(&mut *reader, MAX_FRAME_BYTES);
    let mut frame = String::new();
    loop {
        let mut line = String::new();
        let read = limited.read_line(&mut line)?;
        if read == 0 {
            return if frame.is_empty() && line.is_empty() && limited.limit() > 0 {
                Ok(None)
            } else if limited.limit() == 0 {
                Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame exceeds the {MAX_FRAME_BYTES}-byte bound"),
                ))
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            };
        }
        let terminal = line.trim_end_matches(['\n', '\r']) == FRAME_END;
        frame.push_str(&line);
        if terminal {
            return Ok(Some(frame));
        }
    }
}

// ---------------------------------------------------------------------------
// Field-line helpers
// ---------------------------------------------------------------------------

/// Split a frame into its header tokens and field lines, verifying the
/// protocol header, the direction and the trailing `end`.
fn frame_lines<'a>(
    text: &'a str,
    direction: &str,
) -> Result<(&'a str, Vec<&'a str>), ServiceError> {
    let mut lines: Vec<&str> =
        text.lines().map(str::trim).filter(|line| !line.is_empty()).collect();
    match lines.pop() {
        Some(FRAME_END) => {}
        _ => return Err(ServiceError::protocol("frame does not terminate with `end`")),
    }
    if lines.is_empty() {
        return Err(ServiceError::protocol("frame is missing its header line"));
    }
    let header = lines.remove(0);
    let rest =
        header.strip_prefix(PROTOCOL).and_then(|rest| rest.strip_prefix(' ')).ok_or_else(|| {
            ServiceError::protocol(format!("unrecognised protocol header `{header}`"))
        })?;
    let kind =
        rest.strip_prefix(direction).and_then(|rest| rest.strip_prefix(' ')).ok_or_else(|| {
            ServiceError::protocol(format!("expected a {direction} frame, got `{rest}`"))
        })?;
    if kind.is_empty() || kind.contains(' ') {
        return Err(ServiceError::protocol(format!("malformed frame kind `{kind}`")));
    }
    Ok((kind, lines))
}

fn parse_usize(value: &str, field: &str) -> Result<usize, ServiceError> {
    value
        .parse()
        .map_err(|_| ServiceError::protocol(format!("field `{field}` has a bad count `{value}`")))
}

fn parse_u64_hex(value: &str, field: &str) -> Result<u64, ServiceError> {
    u64::from_str_radix(value, 16)
        .map_err(|_| ServiceError::protocol(format!("field `{field}` has a bad hash `{value}`")))
}

fn parse_u64_dec(value: &str, field: &str) -> Result<u64, ServiceError> {
    value
        .parse()
        .map_err(|_| ServiceError::protocol(format!("field `{field}` has a bad count `{value}`")))
}

/// Parse a `<generation> <seq>` log-position value (two decimal tokens).
fn parse_position(value: &str, field: &str) -> Result<Position, ServiceError> {
    let tokens: Vec<&str> = value.split_whitespace().collect();
    let [generation, seq] = tokens.as_slice() else {
        return Err(ServiceError::protocol(format!(
            "field `{field}` does not hold a `<generation> <seq>` position"
        )));
    };
    Ok(Position::new(parse_u64_dec(generation, field)?, parse_u64_dec(seq, field)?))
}

/// One `key value…` field line, split on the first space.
fn split_field(line: &str) -> (&str, &str) {
    match line.split_once(' ') {
        Some((key, value)) => (key, value),
        None => (line, ""),
    }
}

fn missing(field: &str) -> ServiceError {
    ServiceError::protocol(format!("frame is missing the `{field}` field"))
}

fn unknown_field(kind: &str, line: &str) -> ServiceError {
    ServiceError::protocol(format!("unknown field line `{line}` in a `{kind}` frame"))
}

/// Unescape every whitespace-separated token of a multi-token field value.
fn unescape_tokens(value: &str) -> Result<Vec<String>, ServiceError> {
    value.split_whitespace().map(unescape).collect()
}

fn escape_tokens(values: &[String]) -> String {
    values.iter().map(|value| escape(value)).collect::<Vec<_>>().join(" ")
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encode a request as a complete frame (terminated by `end`), with no
/// trace or auth field — byte-identical to what older builds emit.
pub fn encode_request(request: &Request) -> String {
    encode_request_frame(request, None, None)
}

/// Encode a request as a complete frame, carrying `trace` as the optional
/// `trace <16-hex>` field (always the first field line) when set.
pub fn encode_request_traced(request: &Request, trace: Option<u64>) -> String {
    encode_request_frame(request, trace, None)
}

/// Encode a request as a complete frame with both optional envelope
/// fields: `trace <16-hex>` first, then `auth <escaped-token>`, then the
/// kind-specific fields. Either may be omitted; with both `None` the frame
/// is byte-identical to [`encode_request`]'s output.
pub fn encode_request_frame(request: &Request, trace: Option<u64>, auth: Option<&str>) -> String {
    let mut out = format!("{PROTOCOL} request {}\n", request.kind());
    if let Some(trace_id) = trace {
        out.push_str(&format!("trace {trace_id:016x}\n"));
    }
    if let Some(token) = auth {
        out.push_str(&format!("auth {}\n", escape(token)));
    }
    match request {
        Request::Ping
        | Request::Stats
        | Request::CacheInfo
        | Request::Metrics
        | Request::Compact
        | Request::Snapshot
        | Request::Shutdown => {}
        Request::Subscribe { from_generation, from_seq } => {
            out.push_str(&format!("generation {from_generation}\n"));
            out.push_str(&format!("seq {from_seq}\n"));
        }
        Request::AddDocument { text } => {
            out.push_str(&format!("text {}\n", escape(text)));
        }
        Request::ComposePath { from, to } => {
            out.push_str(&format!("from {}\n", escape(from)));
            out.push_str(&format!("to {}\n", escape(to)));
        }
        Request::ComposeNames { names } => {
            for name in names {
                out.push_str(&format!("name {}\n", escape(name)));
            }
        }
        Request::ComposeBatch { requests, workers } => {
            out.push_str(&format!("workers {workers}\n"));
            for (from, to) in requests {
                out.push_str(&format!("pair {} {}\n", escape(from), escape(to)));
            }
        }
        Request::Invalidate { mapping } => {
            out.push_str(&format!("mapping {}\n", escape(mapping)));
        }
        Request::MigrateDelta { from, to, updates } => {
            out.push_str(&format!("from {}\n", escape(from)));
            out.push_str(&format!("to {}\n", escape(to)));
            for update in updates {
                out.push_str(&format!("update {}\n", escape(update)));
            }
        }
        Request::Analyze { mapping } => {
            if let Some(mapping) = mapping {
                out.push_str(&format!("mapping {}\n", escape(mapping)));
            }
        }
    }
    out.push_str(FRAME_END);
    out.push('\n');
    out
}

/// Decode a request frame, discarding any trace or auth field (see
/// [`decode_request_frame`] to keep them).
pub fn decode_request(text: &str) -> Result<Request, ServiceError> {
    decode_request_frame(text).map(|(request, _, _)| request)
}

/// Decode a request frame along with its optional `trace` field, discarding
/// any auth field (see [`decode_request_frame`] to keep it too).
pub fn decode_request_traced(text: &str) -> Result<(Request, Option<u64>), ServiceError> {
    decode_request_frame(text).map(|(request, trace, _)| (request, trace))
}

/// Decode a request frame along with its optional `trace` and `auth`
/// envelope fields. Both lines are recognised for every request kind and
/// stripped before kind-specific parsing, so kinds with no fields of their
/// own still accept them; at most one of each may appear.
pub fn decode_request_frame(
    text: &str,
) -> Result<(Request, Option<u64>, Option<String>), ServiceError> {
    let (kind, lines) = frame_lines(text, "request")?;
    let mut trace = None;
    let mut auth = None;
    let mut fields = Vec::with_capacity(lines.len());
    for line in lines {
        match split_field(line) {
            ("trace", value) if trace.is_none() => {
                trace = Some(parse_u64_hex(value, "trace")?);
            }
            ("trace", _) => {
                return Err(ServiceError::protocol("frame carries more than one `trace` field"))
            }
            ("auth", value) if auth.is_none() => {
                if value.is_empty() {
                    return Err(ServiceError::protocol("`auth` field is missing its token"));
                }
                auth = Some(unescape(value)?);
            }
            ("auth", _) => {
                return Err(ServiceError::protocol("frame carries more than one `auth` field"))
            }
            _ => fields.push(line),
        }
    }
    Ok((decode_request_fields(kind, fields)?, trace, auth))
}

/// Decode the kind-specific field lines of a request frame (trace already
/// stripped). Strict: unknown or duplicated fields are protocol errors.
fn decode_request_fields(kind: &str, lines: Vec<&str>) -> Result<Request, ServiceError> {
    match kind {
        "ping" | "stats" | "cache-info" | "metrics" | "compact" | "snapshot" | "shutdown" => {
            if let Some(line) = lines.first() {
                return Err(unknown_field(kind, line));
            }
            Ok(match kind {
                "ping" => Request::Ping,
                "stats" => Request::Stats,
                "cache-info" => Request::CacheInfo,
                "metrics" => Request::Metrics,
                "compact" => Request::Compact,
                "snapshot" => Request::Snapshot,
                _ => Request::Shutdown,
            })
        }
        "subscribe" => {
            let (mut generation, mut seq) = (None, None);
            for line in lines {
                match split_field(line) {
                    ("generation", value) if generation.is_none() => {
                        generation = Some(parse_u64_dec(value, "generation")?);
                    }
                    ("seq", value) if seq.is_none() => {
                        seq = Some(parse_u64_dec(value, "seq")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::Subscribe {
                from_generation: generation.ok_or_else(|| missing("generation"))?,
                from_seq: seq.ok_or_else(|| missing("seq"))?,
            })
        }
        "add-document" => {
            let mut text = None;
            for line in lines {
                match split_field(line) {
                    ("text", value) if text.is_none() => text = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::AddDocument { text: text.ok_or_else(|| missing("text"))? })
        }
        "compose-path" => {
            let (mut from, mut to) = (None, None);
            for line in lines {
                match split_field(line) {
                    ("from", value) if from.is_none() => from = Some(unescape(value)?),
                    ("to", value) if to.is_none() => to = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::ComposePath {
                from: from.ok_or_else(|| missing("from"))?,
                to: to.ok_or_else(|| missing("to"))?,
            })
        }
        "compose-names" => {
            let mut names = Vec::new();
            for line in lines {
                match split_field(line) {
                    ("name", value) => names.push(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::ComposeNames { names })
        }
        "compose-batch" => {
            let mut workers = None;
            let mut requests = Vec::new();
            for line in lines {
                match split_field(line) {
                    ("workers", value) if workers.is_none() => {
                        workers = Some(parse_usize(value, "workers")?);
                    }
                    ("pair", value) => {
                        let tokens = unescape_tokens(value)?;
                        let [from, to] = tokens.as_slice() else {
                            return Err(ServiceError::protocol(format!(
                                "batch pair line `{line}` does not hold two tokens"
                            )));
                        };
                        requests.push((from.clone(), to.clone()));
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::ComposeBatch {
                requests,
                workers: workers.ok_or_else(|| missing("workers"))?,
            })
        }
        "invalidate" => {
            let mut mapping = None;
            for line in lines {
                match split_field(line) {
                    ("mapping", value) if mapping.is_none() => mapping = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::Invalidate { mapping: mapping.ok_or_else(|| missing("mapping"))? })
        }
        "migrate-delta" => {
            let (mut from, mut to) = (None, None);
            let mut updates = Vec::new();
            for line in lines {
                match split_field(line) {
                    ("from", value) if from.is_none() => from = Some(unescape(value)?),
                    ("to", value) if to.is_none() => to = Some(unescape(value)?),
                    ("update", value) => updates.push(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::MigrateDelta {
                from: from.ok_or_else(|| missing("from"))?,
                to: to.ok_or_else(|| missing("to"))?,
                updates,
            })
        }
        "analyze" => {
            let mut mapping = None;
            for line in lines {
                match split_field(line) {
                    ("mapping", value) if mapping.is_none() => mapping = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Request::Analyze { mapping })
        }
        other => Err(ServiceError::protocol(format!("unknown request kind `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

fn write_chain(out: &mut String, payload: &ChainPayload) {
    out.push_str(&format!("source {}\n", escape(&payload.source)));
    out.push_str(&format!("target {}\n", escape(&payload.target)));
    out.push_str(&format!("path {}\n", escape_tokens(&payload.path)));
    out.push_str(&format!("deps {}\n", escape_tokens(&payload.deps)));
    out.push_str(&format!("hash {:016x}\n", payload.hash));
    out.push_str(&format!("calls {}\n", payload.compose_calls));
    out.push_str(&format!("hits {}\n", payload.cache_hits));
    let plan: Vec<String> = payload.plan.iter().map(usize::to_string).collect();
    out.push_str(&format!("plan {}\n", plan.join(" ")));
    out.push_str(&format!("document {}\n", escape(&payload.document)));
}

struct ChainFields {
    source: Option<String>,
    target: Option<String>,
    path: Option<Vec<String>>,
    deps: Option<Vec<String>>,
    hash: Option<u64>,
    calls: Option<usize>,
    hits: Option<usize>,
    plan: Option<Vec<usize>>,
    document: Option<String>,
}

impl ChainFields {
    fn new() -> Self {
        ChainFields {
            source: None,
            target: None,
            path: None,
            deps: None,
            hash: None,
            calls: None,
            hits: None,
            plan: None,
            document: None,
        }
    }

    /// Absorb one field line; `Ok(false)` when the key is not a chain field.
    fn absorb(&mut self, line: &str) -> Result<bool, ServiceError> {
        let (key, value) = split_field(line);
        match key {
            "source" if self.source.is_none() => self.source = Some(unescape(value)?),
            "target" if self.target.is_none() => self.target = Some(unescape(value)?),
            "path" if self.path.is_none() => self.path = Some(unescape_tokens(value)?),
            "deps" if self.deps.is_none() => self.deps = Some(unescape_tokens(value)?),
            "hash" if self.hash.is_none() => self.hash = Some(parse_u64_hex(value, "hash")?),
            "calls" if self.calls.is_none() => self.calls = Some(parse_usize(value, "calls")?),
            "hits" if self.hits.is_none() => self.hits = Some(parse_usize(value, "hits")?),
            "plan" if self.plan.is_none() => {
                self.plan = Some(
                    value
                        .split_whitespace()
                        .map(|token| parse_usize(token, "plan"))
                        .collect::<Result<_, _>>()?,
                );
            }
            "document" if self.document.is_none() => self.document = Some(unescape(value)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn finish(self) -> Result<ChainPayload, ServiceError> {
        Ok(ChainPayload {
            source: self.source.ok_or_else(|| missing("source"))?,
            target: self.target.ok_or_else(|| missing("target"))?,
            path: self.path.ok_or_else(|| missing("path"))?,
            deps: self.deps.ok_or_else(|| missing("deps"))?,
            hash: self.hash.ok_or_else(|| missing("hash"))?,
            compose_calls: self.calls.ok_or_else(|| missing("calls"))?,
            cache_hits: self.hits.ok_or_else(|| missing("hits"))?,
            plan: self.plan.ok_or_else(|| missing("plan"))?,
            document: self.document.ok_or_else(|| missing("document"))?,
        })
    }
}

/// Render a `response error` frame.
fn encode_error_frame(error: &ServiceError) -> String {
    let mut out = format!("{PROTOCOL} response error\n");
    out.push_str(&format!("code {}\n", error.code.as_str()));
    out.push_str(&format!("message {}\n", escape(&error.message)));
    out.push_str(FRAME_END);
    out.push('\n');
    out
}

/// Encode a reply — a successful [`Response`] or a [`ServiceError`] — as a
/// complete frame.
pub fn encode_reply(reply: &Result<Response, ServiceError>) -> String {
    match reply {
        Err(error) => encode_error_frame(error),
        Ok(response) => {
            let mut out = format!("{PROTOCOL} response {}\n", response.kind());
            match response {
                Response::Pong | Response::ShuttingDown => {}
                Response::Added { touched, schemas, mappings } => {
                    for name in touched {
                        out.push_str(&format!("touched {}\n", escape(name)));
                    }
                    out.push_str(&format!("schemas {schemas}\n"));
                    out.push_str(&format!("mappings {mappings}\n"));
                }
                Response::Composed(payload) => write_chain(&mut out, payload),
                Response::Batch(items) => {
                    out.push_str(&format!("count {}\n", items.len()));
                    for item in items {
                        // Encode the nested frame straight from the borrowed
                        // payload — the chain document is the dominant share
                        // of a batch reply, so cloning it per item just to
                        // re-enter `encode_reply` would double the peak
                        // allocation.
                        let nested = match item {
                            Ok(payload) => {
                                let mut inner = format!("{PROTOCOL} response composed\n");
                                write_chain(&mut inner, payload);
                                inner.push_str(FRAME_END);
                                inner.push('\n');
                                inner
                            }
                            Err(error) => encode_error_frame(error),
                        };
                        out.push_str(&format!("item {}\n", escape(&nested)));
                    }
                }
                Response::Invalidated { dropped } => {
                    out.push_str(&format!("dropped {dropped}\n"));
                }
                Response::Migrated(payload) => {
                    out.push_str(&format!("from {}\n", escape(&payload.from)));
                    out.push_str(&format!("to {}\n", escape(&payload.to)));
                    out.push_str(&format!(
                        "batch {} {} {} {} {}\n",
                        payload.applied,
                        payload.inserted,
                        payload.deleted,
                        payload.retracted,
                        payload.rederived
                    ));
                    out.push_str(&format!(
                        "state {} {} {} {}\n",
                        if payload.fallback { "fallback" } else { "incremental" },
                        payload.source_rows,
                        payload.target_rows,
                        payload.support_entries
                    ));
                    out.push_str(&format!("target {}\n", escape(&payload.target)));
                }
                Response::Metrics { text } => {
                    out.push_str(&format!("text {}\n", escape(text)));
                }
                Response::Analysis(payload) => {
                    out.push_str(&format!("proven {}\n", payload.proven));
                    out.push_str(&format!("unknown {}\n", payload.unknown));
                    out.push_str(&format!("diagnostics {}\n", payload.diagnostics));
                    out.push_str(&format!("text {}\n", escape(&payload.text)));
                }
                Response::Compacted { bytes_before, bytes_after } => {
                    out.push_str(&format!("before {bytes_before}\n"));
                    out.push_str(&format!("after {bytes_after}\n"));
                }
                Response::CacheInfo(payload) => {
                    out.push_str(&format!("segments {}\n", payload.segments.len()));
                    for info in &payload.segments {
                        let capacity = match info.capacity {
                            Some(capacity) => capacity.to_string(),
                            None => "-".to_string(),
                        };
                        out.push_str(&format!(
                            "segment {} {} {} {} {} {} {} {}\n",
                            info.segment,
                            info.entries,
                            capacity,
                            info.hits,
                            info.misses,
                            info.insertions,
                            info.invalidated,
                            info.evictions
                        ));
                    }
                }
                Response::Stats(stats) => {
                    out.push_str(&format!("schemas {}\n", stats.schemas));
                    out.push_str(&format!("mappings {}\n", stats.mappings));
                    match stats.cache_capacity {
                        Some(capacity) => out.push_str(&format!("capacity {capacity}\n")),
                        None => out.push_str("capacity unbounded\n"),
                    }
                    for entry in &stats.entries {
                        let history: String =
                            entry.history.iter().map(|(v, h)| format!(" {v}:{h:016x}")).collect();
                        out.push_str(&format!(
                            "entry {} {} {} {} {:016x} {}{history}\n",
                            escape(&entry.name),
                            escape(&entry.source),
                            escape(&entry.target),
                            entry.version,
                            entry.hash,
                            entry.constraints
                        ));
                    }
                    let session = &stats.session;
                    out.push_str(&format!(
                        "session {} {} {} {} {} {} {} {} {}\n",
                        session.compose_calls,
                        session.paths_resolved,
                        session.chains_composed,
                        session.cache_entries,
                        session.cache.hits,
                        session.cache.misses,
                        session.cache.insertions,
                        session.cache.invalidated,
                        session.cache.evictions
                    ));
                    if let Some(replication) = &stats.replication {
                        out.push_str(&format!(
                            "replication {} {} {} {} {}\n",
                            escape(&replication.role),
                            escape(&replication.state),
                            replication.position.generation,
                            replication.position.seq,
                            replication.lag
                        ));
                    }
                }
                Response::Subscribed { position } => {
                    out.push_str(&format!("position {} {}\n", position.generation, position.seq));
                }
                Response::Delta(payload) => {
                    out.push_str(&format!(
                        "first {} {}\n",
                        payload.first.generation, payload.first.seq
                    ));
                    out.push_str(&format!(
                        "last {} {}\n",
                        payload.last.generation, payload.last.seq
                    ));
                    out.push_str(&format!("chunk {}\n", escape(&payload.chunk)));
                }
                Response::Generation { generation } => {
                    out.push_str(&format!("generation {generation}\n"));
                }
                Response::Snapshot(payload) => {
                    out.push_str(&format!(
                        "position {} {}\n",
                        payload.position.generation, payload.position.seq
                    ));
                    out.push_str(&format!("document {}\n", escape(&payload.document)));
                    out.push_str(&format!("sidecar {}\n", escape(&payload.sidecar)));
                }
            }
            out.push_str(FRAME_END);
            out.push('\n');
            out
        }
    }
}

/// Decode a reply frame into a successful [`Response`] or the
/// [`ServiceError`] the serving side reported. The outer `Result` is the
/// *decoder's* verdict: `Err` means the frame itself was malformed.
pub fn decode_reply(text: &str) -> Result<Result<Response, ServiceError>, ServiceError> {
    let (kind, lines) = frame_lines(text, "response")?;
    match kind {
        "error" => {
            let (mut code, mut message) = (None, None);
            for line in lines {
                match split_field(line) {
                    ("code", value) if code.is_none() => {
                        code = Some(ErrorCode::parse(value).ok_or_else(|| {
                            ServiceError::protocol(format!("unknown error code `{value}`"))
                        })?);
                    }
                    ("message", value) if message.is_none() => message = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Err(ServiceError {
                code: code.ok_or_else(|| missing("code"))?,
                message: message.ok_or_else(|| missing("message"))?,
            }))
        }
        "pong" | "shutting-down" => {
            if let Some(line) = lines.first() {
                return Err(unknown_field(kind, line));
            }
            Ok(Ok(if kind == "pong" { Response::Pong } else { Response::ShuttingDown }))
        }
        "added" => {
            let mut touched = Vec::new();
            let (mut schemas, mut mappings) = (None, None);
            for line in lines {
                match split_field(line) {
                    ("touched", value) => touched.push(unescape(value)?),
                    ("schemas", value) if schemas.is_none() => {
                        schemas = Some(parse_usize(value, "schemas")?);
                    }
                    ("mappings", value) if mappings.is_none() => {
                        mappings = Some(parse_usize(value, "mappings")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Added {
                touched,
                schemas: schemas.ok_or_else(|| missing("schemas"))?,
                mappings: mappings.ok_or_else(|| missing("mappings"))?,
            }))
        }
        "composed" => {
            let mut fields = ChainFields::new();
            for line in lines {
                if !fields.absorb(line)? {
                    return Err(unknown_field(kind, line));
                }
            }
            Ok(Ok(Response::Composed(fields.finish()?)))
        }
        "batch" => {
            let mut count = None;
            let mut items = Vec::new();
            for line in lines {
                match split_field(line) {
                    ("count", value) if count.is_none() => {
                        count = Some(parse_usize(value, "count")?);
                    }
                    ("item", value) => {
                        let nested = unescape(value)?;
                        match decode_reply(&nested)? {
                            Ok(Response::Composed(payload)) => items.push(Ok(payload)),
                            Ok(other) => {
                                return Err(ServiceError::protocol(format!(
                                    "batch item holds a `{}` frame",
                                    other.kind()
                                )))
                            }
                            Err(error) => items.push(Err(error)),
                        }
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            let count = count.ok_or_else(|| missing("count"))?;
            if count != items.len() {
                return Err(ServiceError::protocol(format!(
                    "batch frame declares {count} items but carries {}",
                    items.len()
                )));
            }
            Ok(Ok(Response::Batch(items)))
        }
        "invalidated" => {
            let mut dropped = None;
            for line in lines {
                match split_field(line) {
                    ("dropped", value) if dropped.is_none() => {
                        dropped = Some(parse_usize(value, "dropped")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Invalidated { dropped: dropped.ok_or_else(|| missing("dropped"))? }))
        }
        "migrated" => {
            let (mut from, mut to, mut batch, mut state, mut target) =
                (None, None, None, None, None);
            for line in lines {
                match split_field(line) {
                    ("from", value) if from.is_none() => from = Some(unescape(value)?),
                    ("to", value) if to.is_none() => to = Some(unescape(value)?),
                    ("batch", value) if batch.is_none() => {
                        let parts: Vec<&str> = value.split(' ').collect();
                        let [applied, inserted, deleted, retracted, rederived] = parts.as_slice()
                        else {
                            return Err(ServiceError::protocol(format!(
                                "batch line `{line}` does not hold five counters"
                            )));
                        };
                        batch = Some((
                            parse_usize(applied, "applied")?,
                            parse_usize(inserted, "inserted")?,
                            parse_usize(deleted, "deleted")?,
                            parse_usize(retracted, "retracted")?,
                            parse_usize(rederived, "rederived")?,
                        ));
                    }
                    ("state", value) if state.is_none() => {
                        let parts: Vec<&str> = value.split(' ').collect();
                        let [mode, source_rows, target_rows, support_entries] = parts.as_slice()
                        else {
                            return Err(ServiceError::protocol(format!(
                                "state line `{line}` does not hold four fields"
                            )));
                        };
                        let fallback = match *mode {
                            "fallback" => true,
                            "incremental" => false,
                            other => {
                                return Err(ServiceError::protocol(format!(
                                    "unknown migrate mode `{other}`"
                                )))
                            }
                        };
                        state = Some((
                            fallback,
                            parse_usize(source_rows, "source-rows")?,
                            parse_usize(target_rows, "target-rows")?,
                            parse_usize(support_entries, "support-entries")?,
                        ));
                    }
                    ("target", value) if target.is_none() => target = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            let (applied, inserted, deleted, retracted, rederived) =
                batch.ok_or_else(|| missing("batch"))?;
            let (fallback, source_rows, target_rows, support_entries) =
                state.ok_or_else(|| missing("state"))?;
            Ok(Ok(Response::Migrated(MigratePayload {
                from: from.ok_or_else(|| missing("from"))?,
                to: to.ok_or_else(|| missing("to"))?,
                applied,
                inserted,
                deleted,
                retracted,
                rederived,
                fallback,
                source_rows,
                target_rows,
                support_entries,
                target: target.ok_or_else(|| missing("target"))?,
            })))
        }
        "metrics" => {
            let mut text = None;
            for line in lines {
                match split_field(line) {
                    ("text", value) if text.is_none() => text = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Metrics { text: text.ok_or_else(|| missing("text"))? }))
        }
        "analysis" => {
            let (mut proven, mut unknown, mut diagnostics, mut text) = (None, None, None, None);
            for line in lines {
                match split_field(line) {
                    ("proven", value) if proven.is_none() => {
                        proven = Some(parse_usize(value, "proven")?);
                    }
                    ("unknown", value) if unknown.is_none() => {
                        unknown = Some(parse_usize(value, "unknown")?);
                    }
                    ("diagnostics", value) if diagnostics.is_none() => {
                        diagnostics = Some(parse_usize(value, "diagnostics")?);
                    }
                    ("text", value) if text.is_none() => text = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Analysis(AnalysisPayload {
                proven: proven.ok_or_else(|| missing("proven"))?,
                unknown: unknown.ok_or_else(|| missing("unknown"))?,
                diagnostics: diagnostics.ok_or_else(|| missing("diagnostics"))?,
                text: text.ok_or_else(|| missing("text"))?,
            })))
        }
        "compacted" => {
            let (mut before, mut after) = (None, None);
            for line in lines {
                match split_field(line) {
                    ("before", value) if before.is_none() => {
                        before = Some(parse_u64_dec(value, "before")?);
                    }
                    ("after", value) if after.is_none() => {
                        after = Some(parse_u64_dec(value, "after")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Compacted {
                bytes_before: before.ok_or_else(|| missing("before"))?,
                bytes_after: after.ok_or_else(|| missing("after"))?,
            }))
        }
        "cache-info" => {
            let mut declared = None;
            let mut segments = Vec::new();
            for line in lines {
                match split_field(line) {
                    ("segments", value) if declared.is_none() => {
                        declared = Some(parse_usize(value, "segments")?);
                    }
                    ("segment", value) => {
                        let tokens: Vec<&str> = value.split_whitespace().collect();
                        let [segment, entries, capacity, hits, misses, ins, inv, evict] =
                            tokens.as_slice()
                        else {
                            return Err(ServiceError::protocol(format!(
                                "cache-info segment line `{line}` does not hold eight tokens"
                            )));
                        };
                        segments.push(SegmentCacheInfo {
                            segment: parse_usize(segment, "segment")?,
                            entries: parse_usize(entries, "entries")?,
                            capacity: if *capacity == "-" {
                                None
                            } else {
                                Some(parse_usize(capacity, "capacity")?)
                            },
                            hits: parse_usize(hits, "hits")?,
                            misses: parse_usize(misses, "misses")?,
                            insertions: parse_usize(ins, "insertions")?,
                            invalidated: parse_usize(inv, "invalidated")?,
                            evictions: parse_usize(evict, "evictions")?,
                        });
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            let declared = declared.ok_or_else(|| missing("segments"))?;
            if declared != segments.len() {
                return Err(ServiceError::protocol(format!(
                    "cache-info frame declares {declared} segments but carries {}",
                    segments.len()
                )));
            }
            Ok(Ok(Response::CacheInfo(CacheInfoPayload { segments })))
        }
        "stats" => {
            let (mut schemas, mut mappings, mut session) = (None, None, None);
            let mut capacity = None;
            let mut entries = Vec::new();
            let mut replication = None;
            for line in lines {
                match split_field(line) {
                    ("schemas", value) if schemas.is_none() => {
                        schemas = Some(parse_usize(value, "schemas")?);
                    }
                    ("mappings", value) if mappings.is_none() => {
                        mappings = Some(parse_usize(value, "mappings")?);
                    }
                    ("capacity", value) if capacity.is_none() => {
                        capacity = Some(if value == "unbounded" {
                            None
                        } else {
                            Some(parse_usize(value, "capacity")?)
                        });
                    }
                    ("entry", value) => {
                        let tokens: Vec<&str> = value.split_whitespace().collect();
                        let [name, source, target, version, hash, constraints, history @ ..] =
                            tokens.as_slice()
                        else {
                            return Err(ServiceError::protocol(format!(
                                "stats entry line `{line}` holds fewer than six tokens"
                            )));
                        };
                        let history = history
                            .iter()
                            .map(|token| {
                                let (v, h) = token.split_once(':').ok_or_else(|| {
                                    ServiceError::protocol(format!("bad history token `{token}`"))
                                })?;
                                Ok((
                                    v.parse().map_err(|_| {
                                        ServiceError::protocol(format!("bad history version `{v}`"))
                                    })?,
                                    parse_u64_hex(h, "history hash")?,
                                ))
                            })
                            .collect::<Result<Vec<(u64, u64)>, ServiceError>>()?;
                        entries.push(MappingInfo {
                            name: unescape(name)?,
                            source: unescape(source)?,
                            target: unescape(target)?,
                            version: version.parse().map_err(|_| {
                                ServiceError::protocol(format!("bad version `{version}`"))
                            })?,
                            hash: parse_u64_hex(hash, "entry hash")?,
                            constraints: parse_usize(constraints, "entry constraints")?,
                            history,
                        });
                    }
                    ("session", value) if session.is_none() => {
                        let numbers: Vec<usize> = value
                            .split_whitespace()
                            .map(|token| parse_usize(token, "session"))
                            .collect::<Result<_, _>>()?;
                        let &[calls, paths, chains, entries, hits, misses, ins, inv, evict] =
                            numbers.as_slice()
                        else {
                            return Err(ServiceError::protocol(
                                "session line does not hold nine counters",
                            ));
                        };
                        session = Some(SessionStats {
                            compose_calls: calls,
                            paths_resolved: paths,
                            chains_composed: chains,
                            cache_entries: entries,
                            cache: CacheStats {
                                hits,
                                misses,
                                insertions: ins,
                                invalidated: inv,
                                evictions: evict,
                            },
                        });
                    }
                    ("replication", value) if replication.is_none() => {
                        let tokens: Vec<&str> = value.split_whitespace().collect();
                        let [role, state, generation, seq, lag] = tokens.as_slice() else {
                            return Err(ServiceError::protocol(format!(
                                "stats replication line `{line}` does not hold five tokens"
                            )));
                        };
                        replication = Some(ReplicationInfo {
                            role: unescape(role)?,
                            state: unescape(state)?,
                            position: Position::new(
                                parse_u64_dec(generation, "replication generation")?,
                                parse_u64_dec(seq, "replication seq")?,
                            ),
                            lag: parse_u64_dec(lag, "replication lag")?,
                        });
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Stats(StatsPayload {
                schemas: schemas.ok_or_else(|| missing("schemas"))?,
                mappings: mappings.ok_or_else(|| missing("mappings"))?,
                entries,
                session: session.ok_or_else(|| missing("session"))?,
                cache_capacity: capacity.ok_or_else(|| missing("capacity"))?,
                replication,
            })))
        }
        "subscribed" => {
            let mut position = None;
            for line in lines {
                match split_field(line) {
                    ("position", value) if position.is_none() => {
                        position = Some(parse_position(value, "position")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Subscribed { position: position.ok_or_else(|| missing("position"))? }))
        }
        "delta-chunk" => {
            let (mut first, mut last, mut chunk) = (None, None, None);
            for line in lines {
                match split_field(line) {
                    ("first", value) if first.is_none() => {
                        first = Some(parse_position(value, "first")?);
                    }
                    ("last", value) if last.is_none() => {
                        last = Some(parse_position(value, "last")?);
                    }
                    ("chunk", value) if chunk.is_none() => chunk = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Delta(DeltaChunkPayload {
                first: first.ok_or_else(|| missing("first"))?,
                last: last.ok_or_else(|| missing("last"))?,
                chunk: chunk.ok_or_else(|| missing("chunk"))?,
            })))
        }
        "generation" => {
            let mut generation = None;
            for line in lines {
                match split_field(line) {
                    ("generation", value) if generation.is_none() => {
                        generation = Some(parse_u64_dec(value, "generation")?);
                    }
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Generation {
                generation: generation.ok_or_else(|| missing("generation"))?,
            }))
        }
        "snapshot" => {
            let (mut position, mut document, mut sidecar) = (None, None, None);
            for line in lines {
                match split_field(line) {
                    ("position", value) if position.is_none() => {
                        position = Some(parse_position(value, "position")?);
                    }
                    ("document", value) if document.is_none() => {
                        document = Some(unescape(value)?);
                    }
                    ("sidecar", value) if sidecar.is_none() => sidecar = Some(unescape(value)?),
                    _ => return Err(unknown_field(kind, line)),
                }
            }
            Ok(Ok(Response::Snapshot(SnapshotPayload {
                position: position.ok_or_else(|| missing("position"))?,
                document: document.ok_or_else(|| missing("document"))?,
                sidecar: sidecar.ok_or_else(|| missing("sidecar"))?,
            })))
        }
        other => Err(ServiceError::protocol(format!("unknown response kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_awkward_strings() {
        for text in ["", " ", "a b", "%", "%e", "line\nbreak", "tab\there", "plain", "σ→τ"] {
            let token = escape(text);
            assert!(!token.contains(' ') && !token.contains('\n'), "token `{token}`");
            assert_eq!(unescape(&token).unwrap(), text, "via `{token}`");
        }
    }

    #[test]
    fn unescape_rejects_truncated_escapes() {
        assert!(unescape("%2").is_err());
        assert!(unescape("abc%").is_err());
        assert!(unescape("%GG").is_err());
    }

    #[test]
    fn simple_request_round_trip() {
        let request = Request::ComposePath { from: "a schema".into(), to: "σ2".into() };
        let frame = encode_request(&request);
        assert!(frame.ends_with("end\n"));
        assert_eq!(decode_request(&frame).unwrap(), request);
    }

    #[test]
    fn traced_requests_round_trip_and_untraced_stay_identical() {
        let request = Request::ComposePath { from: "s1".into(), to: "s3".into() };
        // No trace: traced and untraced encoders agree byte for byte.
        assert_eq!(encode_request_traced(&request, None), encode_request(&request));
        // With a trace: the field survives the round trip on every kind,
        // including kinds with no fields of their own.
        for request in [request, Request::Ping, Request::Metrics, Request::Shutdown] {
            let frame = encode_request_traced(&request, Some(0xdead_beef));
            assert!(frame.contains("trace 00000000deadbeef\n"), "frame {frame:?}");
            let (decoded, trace) = decode_request_traced(&frame).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(trace, Some(0xdead_beef));
            // The trace-unaware decoder accepts and discards the field.
            assert_eq!(decode_request(&frame).unwrap(), request);
        }
    }

    #[test]
    fn duplicate_trace_fields_are_rejected() {
        let frame = "mapcomp-service 1 request ping\ntrace 1\ntrace 2\nend\n";
        let error = decode_request(frame).unwrap_err();
        assert_eq!(error.code, ErrorCode::Protocol);
    }

    #[test]
    fn auth_fields_round_trip_on_every_kind_and_follow_the_trace_line() {
        for request in [
            Request::Ping,
            Request::CacheInfo,
            Request::ComposePath { from: "s1".into(), to: "s3".into() },
        ] {
            let frame = encode_request_frame(&request, Some(0xabc), Some("s3cret token"));
            // Canonical order: trace first, auth second, kind fields after.
            let lines: Vec<&str> = frame.lines().collect();
            assert!(lines[1].starts_with("trace "), "frame {frame:?}");
            assert!(lines[2].starts_with("auth "), "frame {frame:?}");
            let (decoded, trace, auth) = decode_request_frame(&frame).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(trace, Some(0xabc));
            assert_eq!(auth.as_deref(), Some("s3cret token"));
            // Auth-unaware decoders accept and discard the field.
            assert_eq!(decode_request(&frame).unwrap(), request);
            let (via_traced, _) = decode_request_traced(&frame).unwrap();
            assert_eq!(via_traced, request);
        }
        // Without either envelope field the frame is the legacy encoding.
        let request = Request::Stats;
        assert_eq!(encode_request_frame(&request, None, None), encode_request(&request));
    }

    #[test]
    fn duplicate_auth_fields_are_rejected() {
        let frame = "mapcomp-service 1 request ping\nauth a\nauth b\nend\n";
        let error = decode_request(frame).unwrap_err();
        assert_eq!(error.code, ErrorCode::Protocol);
    }

    #[test]
    fn cache_info_replies_round_trip_and_validate_their_count() {
        let reply = Ok(Response::CacheInfo(crate::api::CacheInfoPayload {
            segments: vec![
                crate::api::SegmentCacheInfo {
                    segment: 0,
                    entries: 3,
                    capacity: Some(64),
                    hits: 10,
                    misses: 4,
                    insertions: 4,
                    invalidated: 1,
                    evictions: 0,
                },
                crate::api::SegmentCacheInfo {
                    segment: 1,
                    entries: 0,
                    capacity: None,
                    hits: 0,
                    misses: 0,
                    insertions: 0,
                    invalidated: 0,
                    evictions: 0,
                },
            ],
        }));
        let frame = encode_reply(&reply);
        assert_eq!(decode_reply(&frame).unwrap(), reply);
        // A count that disagrees with the segment lines is a protocol error.
        let lying = frame.replace("segments 2", "segments 3");
        assert_eq!(decode_reply(&lying).unwrap_err().code, ErrorCode::Protocol);
    }

    #[test]
    fn metrics_reply_round_trips_multiline_exposition() {
        let text = "# HELP a A.\n# TYPE a counter\na{kind=\"x\"} 3\n".to_string();
        let reply = Ok(Response::Metrics { text });
        let frame = encode_reply(&reply);
        assert_eq!(decode_reply(&frame).unwrap(), reply);
    }

    #[test]
    fn analyze_round_trips_with_and_without_a_mapping() {
        for mapping in [None, Some("m12".to_string())] {
            let request = Request::Analyze { mapping };
            let frame = encode_request(&request);
            assert_eq!(decode_request(&frame).unwrap(), request);
        }
        let reply = Ok(Response::Analysis(crate::api::AnalysisPayload {
            proven: 2,
            unknown: 1,
            diagnostics: 3,
            text: "mapping m: proven rank=0 positions=2 rules=1\n".into(),
        }));
        let frame = encode_reply(&reply);
        assert_eq!(decode_reply(&frame).unwrap(), reply);
    }

    #[test]
    fn subscribe_and_snapshot_requests_round_trip() {
        for request in [
            Request::Subscribe { from_generation: 0, from_seq: 0 },
            Request::Subscribe { from_generation: 7, from_seq: 4096 },
            Request::Snapshot,
        ] {
            let frame = encode_request(&request);
            assert_eq!(decode_request(&frame).unwrap(), request, "frame:\n{frame}");
        }
        // Both position fields are mandatory on subscribe.
        let partial = "mapcomp-service 1 request subscribe\ngeneration 3\nend\n";
        assert_eq!(decode_request(partial).unwrap_err().code, ErrorCode::Protocol);
    }

    #[test]
    fn replication_replies_round_trip() {
        let replies = [
            Ok(Response::Subscribed { position: Position::new(3, 17) }),
            Ok(Response::Delta(crate::api::DeltaChunkPayload {
                first: Position::new(3, 17),
                last: Position::new(3, 19),
                chunk: "delta 3 17 invalidate m%20one\nversion m1 4\n".into(),
            })),
            Ok(Response::Generation { generation: 4 }),
            Ok(Response::Snapshot(crate::api::SnapshotPayload {
                position: Position::new(4, 0),
                document: "schema s { R/1; }\n".into(),
                sidecar: "generation 4 0\nstats 0 0 0 0 0\n".into(),
            })),
        ];
        for reply in replies {
            let frame = encode_reply(&reply);
            assert_eq!(decode_reply(&frame).unwrap(), reply, "frame:\n{frame}");
        }
        // A one-token position is malformed.
        let bad = "mapcomp-service 1 response subscribed\nposition 3\nend\n";
        assert_eq!(decode_reply(bad).unwrap_err().code, ErrorCode::Protocol);
    }

    #[test]
    fn stats_replication_line_is_optional_and_round_trips() {
        let mut stats = crate::api::StatsPayload::default();
        let frame = encode_reply(&Ok(Response::Stats(stats.clone())));
        assert!(!frame.contains("\nreplication "), "frame:\n{frame}");
        stats.replication = Some(crate::api::ReplicationInfo {
            role: "follower".into(),
            state: "streaming".into(),
            position: Position::new(2, 40),
            lag: 3,
        });
        let reply = Ok(Response::Stats(stats));
        let frame = encode_reply(&reply);
        assert_eq!(decode_reply(&frame).unwrap(), reply, "frame:\n{frame}");
    }

    #[test]
    fn readonly_and_stale_error_codes_round_trip() {
        for code in [ErrorCode::Readonly, ErrorCode::Stale] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            let reply: Result<Response, ServiceError> =
                Err(ServiceError::new(code, "writes go to the leader at 127.0.0.1:7070"));
            let frame = encode_reply(&reply);
            assert_eq!(decode_reply(&frame).unwrap(), reply);
        }
    }

    #[test]
    fn frames_read_off_a_stream_one_at_a_time() {
        let mut wire = String::new();
        wire.push_str(&encode_request(&Request::Ping));
        wire.push_str(&encode_request(&Request::Stats));
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(decode_request(&first).unwrap(), Request::Ping);
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(decode_request(&second).unwrap(), Request::Stats);
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut reader = std::io::BufReader::new("mapcomp-service 1 request ping\n".as_bytes());
        let error = read_frame(&mut reader).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_frames_are_rejected_with_protocol_errors() {
        for bad in [
            "",
            "end\n",
            "mapcomp-service 9 request ping\nend\n",
            "mapcomp-service 1 response ping\nend\n",
            "mapcomp-service 1 request warble\nend\n",
            "mapcomp-service 1 request ping\nstray field\nend\n",
            "mapcomp-service 1 request compose-path\nfrom a\nend\n",
            "mapcomp-service 1 request compose-batch\nworkers x\nend\n",
        ] {
            let error = decode_request(bad).unwrap_err();
            assert_eq!(error.code, ErrorCode::Protocol, "input {bad:?} gave {error}");
        }
    }
}
