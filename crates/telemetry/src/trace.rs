//! Structured tracing: spans with parent links, per-request trace IDs, a
//! bounded ring of recent spans, and a slow-span ring above a configurable
//! threshold.
//!
//! The span tree is built from a thread-local stack: [`start_trace`] opens
//! a root span (fresh trace ID, or one carried in over the wire),
//! [`start_span`] opens a child of whatever span is innermost on the
//! current thread, and dropping the [`Span`] guard records a [`SpanRecord`]
//! with monotonic start/duration timings into the process-wide ring. The
//! trace ID travels across the TCP boundary as the optional `trace` frame
//! field (`docs/WIRE_PROTOCOL.md`), so a server-side span tree can be
//! correlated with the client that caused it.
//!
//! Everything honours the [`crate::metrics::set_enabled`] kill switch: with
//! telemetry off, guards are inert and nothing is recorded.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::metrics::enabled;

/// How many finished spans the recent-span ring retains.
const RING_CAPACITY: usize = 1024;

/// How many slow root spans the slow ring retains.
const SLOW_RING_CAPACITY: usize = 256;

/// One finished span, as recorded in the rings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request-scoped trace this span belongs to.
    pub trace_id: u64,
    /// This span's own ID (unique within the process).
    pub span_id: u64,
    /// The enclosing span on the same thread, `None` for a root span.
    pub parent_id: Option<u64>,
    /// Static span name, e.g. `request/compose-path`.
    pub name: &'static str,
    /// Microseconds from the tracer epoch (process start of tracing) to the
    /// span opening — monotonic, not wall-clock.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

struct Tracer {
    epoch: Instant,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    slow_threshold_ms: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
    slow_ring: Mutex<VecDeque<SpanRecord>>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        epoch: Instant::now(),
        next_span: AtomicU64::new(1),
        next_trace: AtomicU64::new(1),
        slow_threshold_ms: AtomicU64::new(0),
        ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        slow_ring: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
    })
}

thread_local! {
    /// Innermost-last stack of (trace ID, span ID) for the current thread.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// splitmix64 finaliser: spreads a sequential counter into an id that does
/// not collide across processes once mixed with the pid.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generate a fresh non-zero trace ID (process ID mixed with a counter, so
/// IDs from a client and a server on one machine stay distinct).
pub fn next_trace_id() -> u64 {
    let t = tracer();
    let counter = t.next_trace.fetch_add(1, Ordering::Relaxed);
    let mixed = mix(counter.wrapping_shl(32) ^ u64::from(std::process::id()));
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// Set the slow-span threshold in milliseconds (0 disables the slow ring).
pub fn set_slow_threshold_ms(ms: u64) {
    tracer().slow_threshold_ms.store(ms, Ordering::Relaxed);
}

/// The current slow-span threshold in milliseconds (0 = disabled).
pub fn slow_threshold_ms() -> u64 {
    tracer().slow_threshold_ms.load(Ordering::Relaxed)
}

/// The most recent finished spans, oldest first (bounded ring).
pub fn recent_spans() -> Vec<SpanRecord> {
    let ring = tracer().ring.lock().unwrap_or_else(PoisonError::into_inner);
    ring.iter().cloned().collect()
}

/// Recent root spans whose duration met the slow threshold, oldest first.
pub fn recent_slow_spans() -> Vec<SpanRecord> {
    let ring = tracer().slow_ring.lock().unwrap_or_else(PoisonError::into_inner);
    ring.iter().cloned().collect()
}

/// An open span; dropping it records the [`SpanRecord`].
///
/// Guards must drop in reverse open order on a thread (the natural shape of
/// RAII scopes); the thread-local stack is repaired defensively if they do
/// not.
#[derive(Debug)]
pub struct Span {
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'static str,
    started: Option<Instant>,
}

impl Span {
    /// The trace this span belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's ID.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

fn open(name: &'static str, trace_id: u64, parent_id: Option<u64>) -> Span {
    let t = tracer();
    let span_id = t.next_span.fetch_add(1, Ordering::Relaxed);
    STACK.with(|stack| stack.borrow_mut().push((trace_id, span_id)));
    Span { trace_id, span_id, parent_id, name, started: Some(Instant::now()) }
}

fn inert(name: &'static str, trace_id: u64) -> Span {
    Span { trace_id, span_id: 0, parent_id: None, name, started: None }
}

/// Open a root span for a new request. `trace_id` is the ID carried in over
/// the wire, or `None` to mint a fresh one. Inert while telemetry is
/// disabled (the returned guard still reports a usable trace ID).
pub fn start_trace(name: &'static str, trace_id: Option<u64>) -> Span {
    let trace_id = trace_id.unwrap_or_else(next_trace_id);
    if !enabled() {
        return inert(name, trace_id);
    }
    open(name, trace_id, None)
}

/// Open a child span of the innermost span on this thread; with no
/// enclosing span, it becomes the root of a fresh trace (so deep
/// instrumentation never needs to know whether a request is above it).
pub fn start_span(name: &'static str) -> Span {
    if !enabled() {
        return inert(name, 0);
    }
    let top = STACK.with(|stack| stack.borrow().last().copied());
    match top {
        Some((trace_id, parent_id)) => open(name, trace_id, Some(parent_id)),
        None => open(name, next_trace_id(), None),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return; // inert guard
        };
        let t = tracer();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normal RAII order: our frame is on top. Repair out-of-order
            // drops by removing our frame wherever it is.
            if let Some(position) = stack.iter().rposition(|&(_, span_id)| span_id == self.span_id)
            {
                stack.remove(position);
            }
        });
        let record = SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            start_us: started.duration_since(t.epoch).as_micros() as u64,
            duration_us: started.elapsed().as_micros() as u64,
        };
        let threshold_ms = t.slow_threshold_ms.load(Ordering::Relaxed);
        if self.parent_id.is_none()
            && threshold_ms > 0
            && record.duration_us >= threshold_ms.saturating_mul(1_000)
        {
            let mut slow = t.slow_ring.lock().unwrap_or_else(PoisonError::into_inner);
            if slow.len() == SLOW_RING_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(record.clone());
        }
        let mut ring = t.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_with_parent_links() {
        let root = start_trace("test/root", Some(0xfeed_0001));
        let root_span = root.span_id();
        {
            let child = start_span("test/child");
            assert_eq!(child.trace_id(), 0xfeed_0001);
            let grandchild = start_span("test/grandchild");
            assert_eq!(grandchild.trace_id(), 0xfeed_0001);
            drop(grandchild);
            drop(child);
        }
        drop(root);
        let spans: Vec<SpanRecord> =
            recent_spans().into_iter().filter(|s| s.trace_id == 0xfeed_0001).collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2].name, "test/root");
        assert_eq!(spans[2].parent_id, None);
        assert_eq!(spans[1].name, "test/child");
        assert_eq!(spans[1].parent_id, Some(root_span));
        assert_eq!(spans[0].name, "test/grandchild");
        assert_eq!(spans[0].parent_id, Some(spans[1].span_id));
        assert!(spans[2].duration_us >= spans[1].duration_us);
    }

    #[test]
    fn fresh_trace_ids_are_distinct_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn orphan_child_span_becomes_a_root() {
        let span = start_span("test/orphan");
        let trace_id = span.trace_id();
        drop(span);
        let spans: Vec<SpanRecord> =
            recent_spans().into_iter().filter(|s| s.trace_id == trace_id).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, None);
    }

    #[test]
    fn slow_ring_captures_only_slow_roots() {
        set_slow_threshold_ms(1);
        {
            let _slow = start_trace("test/slow-root", Some(0xfeed_0002));
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        {
            let _fast = start_trace("test/fast-root", Some(0xfeed_0003));
        }
        set_slow_threshold_ms(0);
        let slow = recent_slow_spans();
        assert!(slow.iter().any(|s| s.trace_id == 0xfeed_0002));
        assert!(!slow.iter().any(|s| s.trace_id == 0xfeed_0003));
    }
}
