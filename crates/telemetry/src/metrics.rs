//! Lock-free metric primitives and the process-wide registry.
//!
//! The cost model is the whole point: *registration* (naming a metric) is a
//! cold path that takes a mutex and leaks one small allocation so the handle
//! can be `&'static`; *updating* a registered handle is a single relaxed
//! atomic RMW, safe to leave on the hottest paths in the workspace. Relaxed
//! ordering is sufficient because metrics are monotone tallies read after
//! the fact — no metric update is used for cross-thread synchronisation.
//!
//! Rendering ([`MetricsRegistry::render`]) emits Prometheus text exposition
//! (`# HELP` / `# TYPE` headers, `name{label="value"} 123` samples,
//! `_bucket`/`_sum`/`_count` series for histograms); the grammar is written
//! down in `docs/OBSERVABILITY.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Process-wide telemetry kill switch (default on). When off, every metric
/// update and span recording degrades to one relaxed load — the baseline the
/// fig11 overhead comparison runs against.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn telemetry recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Bucket upper bounds (microseconds) for request-latency histograms:
/// 100µs to 10s in decades.
pub const LATENCY_BOUNDS_US: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bucket upper bounds for size-ish histograms (frontier sizes, batch
/// sizes): powers of four from 1 to 16384.
pub const SIZE_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter (no-op while telemetry is disabled).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (active connections, queue
/// depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Add `delta` (may be negative; no-op while telemetry is disabled).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Set the gauge to `value` (no-op while telemetry is disabled).
    pub fn set(&self, value: i64) {
        if enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (latencies in
/// microseconds, sizes in elements — the caller picks the unit and says so
/// in the metric name).
///
/// Buckets are *inclusive* upper bounds plus an implicit `+Inf` overflow
/// bucket, matching Prometheus `le` semantics; [`Histogram::observe`] is
/// three relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must strictly increase");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation (no-op while telemetry is disabled).
    pub fn observe(&self, value: u64) {
        if !enabled() {
            return;
        }
        let index = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (upper bound, non-cumulative count) pairs; the final entry
    /// has bound `None` (the `+Inf` overflow bucket).
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.bounds
            .iter()
            .map(|&bound| Some(bound))
            .chain([None])
            .zip(self.buckets.iter().map(|bucket| bucket.load(Ordering::Relaxed)))
            .collect()
    }
}

/// One metric's identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Inner {
    /// name → (help text, metric type). One entry per family, shared by all
    /// label combinations.
    families: BTreeMap<String, (String, &'static str)>,
    metrics: BTreeMap<MetricKey, Handle>,
}

/// A collection of named metrics that renders Prometheus text exposition.
///
/// The process has one [`global`] registry that all built-in
/// instrumentation targets by default; tests (which share one process
/// across threads) build private registries with [`MetricsRegistry::new`] +
/// [`MetricsRegistry::leak`] and inject them where isolation matters.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Leak the registry to get the `&'static` lifetime its handles need.
    /// Intended for test-isolated registries; the global one lives in a
    /// `OnceLock` already.
    pub fn leak(self) -> &'static MetricsRegistry {
        Box::leak(Box::new(self))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> &'static T,
        wrap: impl Fn(&'static T) -> Handle,
        unwrap: impl Fn(&Handle) -> Option<&'static T>,
    ) -> &'static T {
        let key = MetricKey {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        };
        let mut inner = self.lock();
        if let Some(existing) = inner.metrics.get(&key) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` re-registered as a different type ({})",
                    existing.type_name()
                )
            });
        }
        let handle = make();
        let family_type = wrap(handle).type_name();
        if let Some((_, registered)) = inner.families.get(&key.name) {
            assert_eq!(
                *registered, family_type,
                "metric family `{name}` registered with conflicting types"
            );
        } else {
            inner.families.insert(key.name.clone(), (help.to_string(), family_type));
        }
        inner.metrics.insert(key, wrap(handle));
        handle
    }

    /// Register (or fetch the existing) counter `name` with `labels`.
    /// Re-registration with the same identity returns the same handle, so
    /// call sites need no coordination.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Counter {
        self.register(
            name,
            help,
            labels,
            || Box::leak(Box::new(Counter::default())),
            Handle::Counter,
            |handle| match handle {
                Handle::Counter(counter) => Some(counter),
                _ => None,
            },
        )
    }

    /// Register (or fetch the existing) gauge `name` with `labels`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Gauge {
        self.register(
            name,
            help,
            labels,
            || Box::leak(Box::new(Gauge::default())),
            Handle::Gauge,
            |handle| match handle {
                Handle::Gauge(gauge) => Some(gauge),
                _ => None,
            },
        )
    }

    /// Register (or fetch the existing) histogram `name` with `labels` and
    /// inclusive upper `bounds` (see [`LATENCY_BOUNDS_US`],
    /// [`SIZE_BOUNDS`]). Bounds are fixed by the first registration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> &'static Histogram {
        self.register(
            name,
            help,
            labels,
            || Box::leak(Box::new(Histogram::new(bounds))),
            Handle::Histogram,
            |handle| match handle {
                Handle::Histogram(histogram) => Some(histogram),
                _ => None,
            },
        )
    }

    /// Render the whole registry as Prometheus text exposition: families in
    /// name order, each preceded by `# HELP` and `# TYPE`, label sets in
    /// lexicographic order. Deterministic for a given set of values — the
    /// telemetry tests compare expositions byte-for-byte.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for (key, handle) in &inner.metrics {
            if last_family != Some(key.name.as_str()) {
                let (help, metric_type) =
                    inner.families.get(&key.name).map_or(("", ""), |(h, t)| (h.as_str(), *t));
                let _ = writeln!(out, "# HELP {} {}", key.name, help);
                let _ = writeln!(out, "# TYPE {} {}", key.name, metric_type);
                last_family = Some(key.name.as_str());
            }
            match handle {
                Handle::Counter(counter) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels),
                        counter.get()
                    );
                }
                Handle::Gauge(gauge) => {
                    let _ =
                        writeln!(out, "{}{} {}", key.name, render_labels(&key.labels), gauge.get());
                }
                Handle::Histogram(histogram) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in histogram.buckets() {
                        cumulative += count;
                        let le = bound.map_or_else(|| "+Inf".to_string(), |b| b.to_string());
                        let mut labels = key.labels.clone();
                        labels.push(("le".to_string(), le));
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            render_labels(&labels),
                            cumulative
                        );
                    }
                    let labels = render_labels(&key.labels);
                    let _ = writeln!(out, "{}_sum{} {}", key.name, labels, histogram.sum());
                    let _ = writeln!(out, "{}_count{} {}", key.name, labels, histogram.count());
                }
            }
        }
        out
    }
}

/// `{k1="v1",k2="v2"}`, or the empty string for a label-free metric. Label
/// values escape `\`, `"` and newline per the Prometheus text format.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The process-wide default registry: all built-in instrumentation lands
/// here unless a component was handed a private registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The kill switch is process-wide, so tests that assert exact counts
    /// serialise against the test that toggles it.
    fn switch_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let _guard = switch_guard();
        let registry = MetricsRegistry::new().leak();
        let counter = registry.counter("t_requests_total", "Requests.", &[("kind", "ping")]);
        counter.add(3);
        assert_eq!(counter.get(), 3);
        let gauge = registry.gauge("t_active", "Active.", &[]);
        gauge.add(2);
        gauge.add(-1);
        assert_eq!(gauge.get(), 1);
        let histogram = registry.histogram("t_latency_us", "Latency.", &[], &[10, 100]);
        histogram.observe(5);
        histogram.observe(10); // inclusive upper bound
        histogram.observe(50);
        histogram.observe(1_000);
        assert_eq!(histogram.count(), 4);
        assert_eq!(histogram.sum(), 1_065);
        assert_eq!(histogram.buckets(), vec![(Some(10), 2), (Some(100), 1), (None, 1)]);
    }

    #[test]
    fn reregistration_returns_the_same_handle() {
        let _guard = switch_guard();
        let registry = MetricsRegistry::new().leak();
        let first = registry.counter("t_shared_total", "Shared.", &[("segment", "0")]);
        let second = registry.counter("t_shared_total", "Shared.", &[("segment", "0")]);
        first.incr();
        second.incr();
        assert!(std::ptr::eq(first, second));
        assert_eq!(first.get(), 2);
    }

    #[test]
    fn render_is_sorted_and_prometheus_shaped() {
        let _guard = switch_guard();
        let registry = MetricsRegistry::new().leak();
        registry.counter("t_b_total", "B.", &[("kind", "y")]).add(2);
        registry.counter("t_b_total", "B.", &[("kind", "x")]).add(1);
        registry.gauge("t_a_gauge", "A.", &[]).set(7);
        let histogram = registry.histogram("t_c_us", "C.", &[], &[10]);
        histogram.observe(4);
        histogram.observe(40);
        let text = registry.render();
        let expected = "# HELP t_a_gauge A.\n\
                        # TYPE t_a_gauge gauge\n\
                        t_a_gauge 7\n\
                        # HELP t_b_total B.\n\
                        # TYPE t_b_total counter\n\
                        t_b_total{kind=\"x\"} 1\n\
                        t_b_total{kind=\"y\"} 2\n\
                        # HELP t_c_us C.\n\
                        # TYPE t_c_us histogram\n\
                        t_c_us_bucket{le=\"10\"} 1\n\
                        t_c_us_bucket{le=\"+Inf\"} 2\n\
                        t_c_us_sum 44\n\
                        t_c_us_count 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _guard = switch_guard();
        let registry = MetricsRegistry::new().leak();
        let counter = registry.counter("t_killswitch_total", "K.", &[]);
        counter.incr();
        set_enabled(false);
        counter.incr();
        set_enabled(true);
        counter.incr();
        assert_eq!(counter.get(), 2);
    }
}
