//! Minimal structured-log helpers for the serve path.
//!
//! `mapcomp serve --log-format json` emits one JSON object per event on
//! stderr; these helpers render those lines without any external JSON
//! dependency. The line shape is documented in `docs/OBSERVABILITY.md`.

use std::fmt::Write as _;

/// Output format for serve-path logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable `key=value` lines.
    Text,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("invalid log format `{other}` (expected `text` or `json`)")),
        }
    }
}

/// A loggable field value.
#[derive(Clone, Copy, Debug)]
pub enum LogValue<'a> {
    /// A string (JSON-escaped on render).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with enough precision to round-trip).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_value(out: &mut String, value: &LogValue<'_>) {
    match value {
        LogValue::Str(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
        LogValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        LogValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        LogValue::F64(f) => {
            let _ = write!(out, "{f}");
        }
        LogValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Render one log line in `format`: JSON gives
/// `{"event":"<event>","k":v,…}`; text gives `event=<event> k=v …`.
/// Neither includes a trailing newline.
pub fn json_line(format: LogFormat, event: &str, fields: &[(&str, LogValue<'_>)]) -> String {
    let mut out = String::new();
    match format {
        LogFormat::Json => {
            out.push_str("{\"event\":\"");
            out.push_str(&json_escape(event));
            out.push('"');
            for (key, value) in fields {
                out.push_str(",\"");
                out.push_str(&json_escape(key));
                out.push_str("\":");
                render_value(&mut out, value);
            }
            out.push('}');
        }
        LogFormat::Text => {
            let _ = write!(out, "event={event}");
            for (key, value) in fields {
                let _ = write!(out, " {key}=");
                match value {
                    LogValue::Str(s) if s.contains(' ') => {
                        let _ = write!(out, "{s:?}");
                    }
                    _ => render_value(&mut out, value),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_escaped_objects() {
        let line = json_line(
            LogFormat::Json,
            "request",
            &[
                ("kind", LogValue::Str("compose-path")),
                ("trace", LogValue::Str("00000000deadbeef")),
                ("ms", LogValue::F64(1.5)),
                ("ok", LogValue::Bool(true)),
                ("note", LogValue::Str("a \"quoted\"\nline")),
            ],
        );
        assert_eq!(
            line,
            "{\"event\":\"request\",\"kind\":\"compose-path\",\
             \"trace\":\"00000000deadbeef\",\"ms\":1.5,\"ok\":true,\
             \"note\":\"a \\\"quoted\\\"\\nline\"}"
        );
    }

    #[test]
    fn text_lines_are_key_value_pairs() {
        let line = json_line(
            LogFormat::Text,
            "connection",
            &[("peer", LogValue::Str("127.0.0.1:9")), ("active", LogValue::I64(3))],
        );
        assert_eq!(line, "event=connection peer=\"127.0.0.1:9\" active=3");
    }
}
