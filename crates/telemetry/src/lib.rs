//! # mapcomp-telemetry
//!
//! Offline observability primitives for the workspace, built with the same
//! shim discipline as `crates/shims`: no external dependencies, `std` only,
//! cheap enough to leave enabled on hot paths.
//!
//! Two halves:
//!
//! * [`metrics`] — lock-free atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s behind a [`MetricsRegistry`] that renders
//!   Prometheus-style text exposition. Handles are `&'static`: registration
//!   takes a lock once, after which every update is a single relaxed atomic
//!   operation. A process-wide kill switch ([`set_enabled`]) turns every
//!   update into one relaxed load, which is what the fig11 overhead
//!   comparison measures against.
//! * [`trace`] — structured spans with parent links and monotonic timings,
//!   a per-request trace ID that the service wire protocol propagates as an
//!   optional frame field, a bounded ring of recent spans, and a slow-span
//!   ring fed by a configurable threshold.
//!
//! [`log`] holds the tiny structured-log helpers (JSON escaping and line
//! rendering) the serve path uses for `--log-format json`.
//!
//! The metric name catalog, exposition grammar, trace frame field and
//! slow-log format are specified in `docs/OBSERVABILITY.md` and executed by
//! `tests/docs_examples.rs`.
//!
//! ```
//! use mapcomp_telemetry::metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new().leak();
//! let requests = registry.counter("demo_requests_total", "Requests served.", &[("kind", "ping")]);
//! requests.incr();
//! let text = registry.render();
//! assert!(text.contains("demo_requests_total{kind=\"ping\"} 1"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod metrics;
pub mod trace;

pub use log::{json_escape, json_line, LogFormat, LogValue};
pub use metrics::{
    enabled, global, set_enabled, Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BOUNDS_US,
    SIZE_BOUNDS,
};
pub use trace::{
    next_trace_id, recent_slow_spans, recent_spans, set_slow_threshold_ms, slow_threshold_ms,
    start_span, start_trace, Span, SpanRecord,
};
