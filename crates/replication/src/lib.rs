//! # mapcomp-replication
//!
//! The leader side of delta-log replication: a [`ReplicationHub`] that the
//! service layer's persistence path publishes every appended sidecar chunk
//! into, and that `Subscribe` connections drain — first a replay of the
//! chunks retained for the current compaction generation, then a live tail
//! over an in-process channel.
//!
//! The unit of streaming is the **chunk**: the exact bytes one
//! state-changing request appended to the leader's sidecar (positioned
//! `delta` records, `version` lines, memo `entry` blocks — see
//! `docs/PERSISTENCE.md`). A chunk carries the [`Position`] range of the
//! delta records inside it; a follower applies chunks in order, records the
//! last applied position, and appends the same bytes verbatim to its own
//! sidecar, so its resume position after a restart falls out of the normal
//! sidecar load.
//!
//! ## Generations and compaction
//!
//! The hub retains chunks for the *current* compaction generation only.
//! When the leader compacts, [`ReplicationHub::compacted`] — called inside
//! the same persistence critical section that rewrites the sidecar — clears
//! the retained log, advances the generation, and broadcasts a
//! [`StreamEvent::Generation`] boundary to every live subscriber. Because
//! publishes and the boundary are ordered by one lock, a subscriber that
//! was mid-stream has already received every pre-compaction chunk when the
//! boundary arrives: compaction can neither drop nor duplicate deltas under
//! an active subscription. A subscriber arriving *after* the boundary with
//! a pre-compaction position gets [`SubscribeError::Stale`] and falls back
//! to snapshot bootstrap (the `Snapshot` wire request).
//!
//! The full stream grammar, position semantics and the follower lifecycle
//! live in `docs/REPLICATION.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};

pub use mapcomp_catalog::persist::Position;

/// One contiguous sidecar append: the byte-exact chunk the leader wrote,
/// plus the position range of the delta records inside it.
#[derive(Debug, Clone)]
pub struct LogChunk {
    /// Position of the first delta record in the chunk.
    pub first: Position,
    /// Position of the last delta record in the chunk (`>= first`).
    pub last: Position,
    /// The chunk bytes, verbatim sidecar grammar (newline-terminated).
    pub text: Arc<str>,
}

impl LogChunk {
    /// How many delta records the chunk's position range spans.
    pub fn records(&self) -> u64 {
        self.last.seq.saturating_sub(self.first.seq).saturating_add(1)
    }
}

/// One event on a subscription stream.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A chunk of appended sidecar lines to apply and persist.
    Chunk(LogChunk),
    /// The leader compacted: the log restarts at `(generation, 0)`. Every
    /// chunk of the previous generation was already delivered.
    Generation(u64),
}

/// Why a subscription could not be opened at the requested position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// The position predates the oldest retained generation (or lies beyond
    /// the leader's log — a follower with a corrupt sidecar). The follower
    /// must bootstrap from a snapshot; the payload is the position the
    /// leader's log currently ends at.
    Stale(Position),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Stale(position) => {
                write!(f, "position predates the oldest retained generation (leader at {position})")
            }
        }
    }
}

struct Subscriber {
    id: u64,
    sender: Sender<StreamEvent>,
    /// Called after enqueuing events so a parked event loop re-polls.
    wake: Arc<dyn Fn() + Send + Sync>,
}

struct HubState {
    /// The position the *next* published delta record will carry.
    next: Position,
    /// Chunks of the current generation, in publish order.
    chunks: Vec<LogChunk>,
    subscribers: Vec<Subscriber>,
    next_id: u64,
}

/// Leader-side publish/subscribe over sidecar log chunks. One hub per
/// serving catalog; the persistence path calls [`ReplicationHub::publish`]
/// and [`ReplicationHub::compacted`] under its own state lock, which gives
/// the stream its total order.
pub struct ReplicationHub {
    state: Mutex<HubState>,
    telemetry: HubTelemetry,
}

struct HubTelemetry {
    deltas_streamed: &'static mapcomp_telemetry::metrics::Counter,
    snapshots_served: &'static mapcomp_telemetry::metrics::Counter,
    subscribers: &'static mapcomp_telemetry::metrics::Gauge,
}

impl HubTelemetry {
    fn new() -> HubTelemetry {
        let registry = mapcomp_telemetry::metrics::global();
        HubTelemetry {
            deltas_streamed: registry.counter(
                "replication_deltas_streamed_total",
                "Delta records delivered to subscribers (replay and live tail).",
                &[],
            ),
            snapshots_served: registry.counter(
                "replication_snapshots_served_total",
                "Snapshot bootstraps served to new or lagging followers.",
                &[],
            ),
            subscribers: registry.gauge(
                "replication_subscribers",
                "Live replication subscriptions on this leader.",
                &[],
            ),
        }
    }
}

impl std::fmt::Debug for ReplicationHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("ReplicationHub")
            .field("next", &state.next)
            .field("chunks", &state.chunks.len())
            .field("subscribers", &state.subscribers.len())
            .finish()
    }
}

impl Default for ReplicationHub {
    fn default() -> Self {
        ReplicationHub::new()
    }
}

impl ReplicationHub {
    /// A hub whose log starts at [`Position::ZERO`]. Call
    /// [`ReplicationHub::compacted`] with the real post-compaction position
    /// when replication is enabled over an existing sidecar.
    pub fn new() -> ReplicationHub {
        ReplicationHub {
            state: Mutex::new(HubState {
                next: Position::ZERO,
                chunks: Vec::new(),
                subscribers: Vec::new(),
                next_id: 0,
            }),
            telemetry: HubTelemetry::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The position the next published delta record will carry.
    pub fn position(&self) -> Position {
        self.lock().next
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.lock().subscribers.len()
    }

    /// Publish one appended chunk to the retained log and every live
    /// subscriber. Must be called in append order (the caller's persistence
    /// lock provides that); `chunk.first` must continue the hub's position.
    pub fn publish(&self, chunk: LogChunk) {
        let mut state = self.lock();
        state.next = chunk.last.next();
        state.chunks.push(chunk.clone());
        let records = chunk.records();
        let delivered = broadcast(&mut state, StreamEvent::Chunk(chunk), &self.telemetry);
        self.telemetry.deltas_streamed.add(records.saturating_mul(delivered));
    }

    /// The leader compacted its sidecar: drop the retained log, restart at
    /// `position` (the new generation, sequence 0), and hand every live
    /// subscriber the generation boundary. Called inside the persistence
    /// critical section that performed the rewrite, so no publish can
    /// interleave between the rewrite and the boundary.
    pub fn compacted(&self, position: Position) {
        let mut state = self.lock();
        state.next = position;
        state.chunks.clear();
        broadcast(&mut state, StreamEvent::Generation(position.generation), &self.telemetry);
    }

    /// Record one snapshot bootstrap served (the service layer calls this
    /// when it answers a `Snapshot` request).
    pub fn note_snapshot_served(&self) {
        self.telemetry.snapshots_served.incr();
    }

    /// Open a subscription resuming at `from` (the first position the
    /// subscriber has *not* applied). Replay chunks — those containing
    /// records at or after `from` — are returned eagerly; later events
    /// arrive on the subscription's channel. Fails with
    /// [`SubscribeError::Stale`] when `from` predates the current generation
    /// (compaction discarded the records) or lies beyond the log's end.
    pub fn subscribe(
        self: &Arc<Self>,
        from: Position,
        wake: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Subscription, SubscribeError> {
        let mut state = self.lock();
        if from.generation != state.next.generation || from > state.next {
            return Err(SubscribeError::Stale(state.next));
        }
        let replay: Vec<LogChunk> =
            state.chunks.iter().filter(|chunk| chunk.last >= from).cloned().collect();
        let replayed: u64 = replay.iter().map(LogChunk::records).sum();
        self.telemetry.deltas_streamed.add(replayed);
        let (sender, receiver) = channel();
        let id = state.next_id;
        state.next_id += 1;
        state.subscribers.push(Subscriber { id, sender, wake });
        self.telemetry.subscribers.add(1);
        Ok(Subscription { hub: Arc::clone(self), id, ack: state.next, replay, receiver })
    }

    fn unsubscribe(&self, id: u64) {
        let mut state = self.lock();
        let before = state.subscribers.len();
        state.subscribers.retain(|subscriber| subscriber.id != id);
        let dropped = before - state.subscribers.len();
        self.telemetry.subscribers.add(-(dropped as i64));
    }
}

/// Send an event to every subscriber, dropping the ones whose receiver is
/// gone; returns how many deliveries succeeded. Caller holds the hub lock.
fn broadcast(state: &mut HubState, event: StreamEvent, telemetry: &HubTelemetry) -> u64 {
    let mut delivered = 0u64;
    state.subscribers.retain(|subscriber| {
        if subscriber.sender.send(event.clone()).is_ok() {
            (subscriber.wake)();
            delivered += 1;
            true
        } else {
            telemetry.subscribers.add(-1);
            false
        }
    });
    delivered
}

/// One open subscription: the eager replay, the live-tail channel, and the
/// leader's position at subscribe time (the initial lag reference).
/// Dropping the subscription unregisters it from the hub.
pub struct Subscription {
    hub: Arc<ReplicationHub>,
    id: u64,
    /// The leader's log-end position when the subscription was opened.
    pub ack: Position,
    /// Retained chunks containing records at or after the requested
    /// position, in publish order. Drain these before polling the channel.
    pub replay: Vec<LogChunk>,
    /// Live-tail events, in publish order after the replay.
    pub receiver: Receiver<StreamEvent>,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("ack", &self.ack)
            .field("replay", &self.replay.len())
            .finish()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.hub.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(generation: u64, first: u64, last: u64) -> LogChunk {
        LogChunk {
            first: Position::new(generation, first),
            last: Position::new(generation, last),
            text: Arc::from(format!("delta {generation} {first} invalidate m\n").as_str()),
        }
    }

    fn subscribe(hub: &Arc<ReplicationHub>, from: Position) -> Subscription {
        hub.subscribe(from, Arc::new(|| {})).expect("subscribe")
    }

    #[test]
    fn replay_then_tail_preserves_order() {
        let hub = Arc::new(ReplicationHub::new());
        hub.compacted(Position::new(1, 0));
        hub.publish(chunk(1, 0, 1));
        hub.publish(chunk(1, 2, 2));
        let subscription = subscribe(&hub, Position::new(1, 1));
        // Chunk (0,1) overlaps the requested position; chunk (2,2) follows.
        assert_eq!(subscription.replay.len(), 2);
        assert_eq!(subscription.ack, Position::new(1, 3));
        hub.publish(chunk(1, 3, 4));
        match subscription.receiver.try_recv().expect("tail event") {
            StreamEvent::Chunk(chunk) => assert_eq!(chunk.last, Position::new(1, 4)),
            other => panic!("expected chunk, got {other:?}"),
        }
        assert_eq!(hub.position(), Position::new(1, 5));
        assert_eq!(hub.subscriber_count(), 1);
        drop(subscription);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn compaction_hands_live_subscribers_the_boundary() {
        let hub = Arc::new(ReplicationHub::new());
        hub.compacted(Position::new(1, 0));
        let subscription = subscribe(&hub, Position::new(1, 0));
        hub.publish(chunk(1, 0, 0));
        hub.compacted(Position::new(2, 0));
        hub.publish(chunk(2, 0, 0));
        let kinds: Vec<String> = std::iter::from_fn(|| subscription.receiver.try_recv().ok())
            .map(|event| match event {
                StreamEvent::Chunk(chunk) => format!("chunk@{}", chunk.first),
                StreamEvent::Generation(generation) => format!("generation:{generation}"),
            })
            .collect();
        // Every pre-compaction chunk arrives before the boundary: nothing
        // dropped, nothing duplicated.
        assert_eq!(kinds, ["chunk@1:0", "generation:2", "chunk@2:0"]);
    }

    #[test]
    fn stale_positions_are_rejected_toward_snapshot_bootstrap() {
        let hub = Arc::new(ReplicationHub::new());
        hub.compacted(Position::new(3, 0));
        hub.publish(chunk(3, 0, 1));
        // Pre-compaction generation: stale.
        let err = hub.subscribe(Position::new(2, 7), Arc::new(|| {})).unwrap_err();
        assert_eq!(err, SubscribeError::Stale(Position::new(3, 2)));
        // Beyond the log's end: also stale (corrupt follower state).
        assert!(hub.subscribe(Position::new(3, 9), Arc::new(|| {})).is_err());
        // Exactly at the end: an empty replay, pure tail.
        let subscription = subscribe(&hub, Position::new(3, 2));
        assert!(subscription.replay.is_empty());
    }

    #[test]
    fn dropped_receivers_are_pruned_on_publish() {
        let hub = Arc::new(ReplicationHub::new());
        hub.compacted(Position::new(1, 0));
        let subscription = subscribe(&hub, Position::new(1, 0));
        // Simulate a dead follower: drop only the receiver half.
        let Subscription { receiver, .. } = &subscription;
        let _ = receiver; // receiver drops with the subscription below
        drop(subscription);
        hub.publish(chunk(1, 0, 0));
        assert_eq!(hub.subscriber_count(), 0);
    }
}
