//! Differential chase: incremental maintenance of an exchanged target
//! instance under signed source updates.
//!
//! [`crate::exchange`](mod@crate::exchange) materialises a target once; this module keeps that
//! materialisation live as the source changes. A batch of `+tuple`/`-tuple`
//! edits ([`Update`]) is normalised into net effective inserts and deletes
//! and propagated through the same compiled premise plans
//! ([`crate::plan::PremisePlan`]) the semi-naive chase uses:
//!
//! * **Insertions** run the semi-naive path — delta joins anchored at the
//!   new rows, firing premise tuples not yet fired.
//! * **Deletions** run delete-and-rederive (DRed) with exact support
//!   counts: every target tuple records how many active rule firings
//!   derive it; retracting a source row retracts the firings it anchored,
//!   decrements supports, cascades through tuples whose support reaches
//!   zero, then rederives any retracted firing still derivable from the
//!   surviving state ([`crate::plan::PremisePlan::supports`]).
//!
//! # The Skolem chase and byte-identity
//!
//! Incremental maintenance can only be proven *byte-identical* to a cold
//! re-chase if the chase itself is confluent — the result must not depend
//! on firing order, or on which rows arrived first. The engine therefore
//! runs the *oblivious Skolem chase*: every derivable premise tuple fires
//! exactly once (no satisfaction check), and each existential variable is
//! named content-addressably from the firing that invents it — a hash of
//! (rule index, variable, premise tuple) rather than a sequence number.
//! The final state is then the least fixpoint of a monotone operator: a
//! pure function of the source instance, reached in any order. A fresh
//! [`DifferentialChase::new`] over the updated source *is* the oracle, and
//! `tests/differential_chase.rs` holds every batch to that standard.
//!
//! This canonical solution is homomorphically equivalent to
//! [`crate::exchange`](crate::exchange())'s (which numbers nulls sequentially and skips
//! already-satisfied premises) but not byte-equal to it; the two engines
//! serve different workloads and are tested against their own oracles.
//!
//! On any evaluation error — budget exhaustion, an unplannable premise, a
//! diverging existential cycle hitting `max_nulls` — the engine falls back
//! to a deterministic full recompute over the updated source, so the
//! oracle obligation holds even off the fast path.

use std::collections::{BTreeMap, BTreeSet};

use mapcomp_algebra::{
    AlgebraError, Constraint, DeltaInstance, Evaluator, Expr, Instance, Signature, Tuple, Value,
};

use crate::cq::{expr_to_conjunctive, Conjunctive, Term};
use crate::exchange::ExchangeConfig;
use crate::plan::{PremisePlan, TupleIndex, WorkBudget};
use crate::registry::Registry;

/// Direction of a signed source update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sign {
    /// `+rel(...)`: insert the tuple into the source relation.
    Insert,
    /// `-rel(...)`: remove the tuple from the source relation.
    Delete,
}

/// One signed source update: a tuple to add to or remove from a source
/// relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Update {
    /// Insert or delete.
    pub sign: Sign,
    /// The source relation the tuple belongs to.
    pub rel: String,
    /// The tuple itself.
    pub tuple: Tuple,
}

impl Update {
    /// An insertion.
    pub fn insert(rel: impl Into<String>, tuple: Tuple) -> Self {
        Update { sign: Sign::Insert, rel: rel.into(), tuple }
    }

    /// A deletion.
    pub fn delete(rel: impl Into<String>, tuple: Tuple) -> Self {
        Update { sign: Sign::Delete, rel: rel.into(), tuple }
    }

    /// Render in the signed-update grammar (`+R(1,'a',null)`), the inverse
    /// of [`parse_update`].
    pub fn render(&self) -> String {
        let sign = match self.sign {
            Sign::Insert => '+',
            Sign::Delete => '-',
        };
        let values: Vec<String> = self.tuple.iter().map(std::string::ToString::to_string).collect();
        format!("{sign}{}({})", self.rel, values.join(","))
    }
}

impl std::fmt::Display for Update {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Parse one signed update: `+rel(v1,...,vn)` or `-rel(v1,...,vn)` where
/// each value is an integer, a single-quoted string (no embedded quotes),
/// or the keyword `null`. `+R()` inserts a zero-arity tuple.
pub fn parse_update(text: &str) -> Result<Update, String> {
    let text = text.trim();
    let sign = match text.chars().next() {
        Some('+') => Sign::Insert,
        Some('-') => Sign::Delete,
        _ => return Err(format!("update `{text}` must start with '+' or '-'")),
    };
    let rest = &text[1..];
    let open = rest.find('(').ok_or_else(|| format!("update `{text}` is missing '('"))?;
    let rel = rest[..open].trim();
    if rel.is_empty()
        || !rel.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        || !rel.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(format!("update `{text}` has an invalid relation name `{rel}`"));
    }
    let close = rest.rfind(')').ok_or_else(|| format!("update `{text}` is missing ')'"))?;
    if close < open || !rest[close + 1..].trim().is_empty() {
        return Err(format!("update `{text}` has trailing input after ')'"));
    }
    let inner = rest[open + 1..close].trim();
    let mut tuple: Tuple = Vec::new();
    if !inner.is_empty() {
        // Split on top-level commas; commas inside quoted strings bind to
        // the string.
        let mut field = String::new();
        let mut quoted = false;
        let mut fields: Vec<String> = Vec::new();
        for c in inner.chars() {
            match c {
                '\'' => {
                    quoted = !quoted;
                    field.push(c);
                }
                ',' if !quoted => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
        if quoted {
            return Err(format!("update `{text}` has an unterminated string"));
        }
        fields.push(field);
        for field in fields {
            tuple.push(parse_value(field.trim(), text)?);
        }
    }
    Ok(Update { sign, rel: rel.to_string(), tuple })
}

/// Parse a sequence of updates, one per input string.
pub fn parse_updates<S: AsRef<str>>(texts: &[S]) -> Result<Vec<Update>, String> {
    texts.iter().map(|text| parse_update(text.as_ref())).collect()
}

fn parse_value(field: &str, context: &str) -> Result<Value, String> {
    if field == "null" {
        return Ok(Value::Null);
    }
    if let Some(body) = field.strip_prefix('\'') {
        let body = body
            .strip_suffix('\'')
            .ok_or_else(|| format!("update `{context}` has an unterminated string"))?;
        if body.contains('\'') {
            return Err(format!("update `{context}` has a quote inside a string value"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    field
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("update `{context}` has an unparsable value `{field}`"))
}

/// Render an instance as canonical text: one `rel(v1,...,vn);` line per
/// tuple, relations and tuples in sorted order, empty relations omitted.
/// Byte-identity of two instances is byte-identity of this rendering.
pub fn render_instance(instance: &Instance) -> String {
    let mut out = String::new();
    for name in instance.names() {
        let Some(relation) = instance.get_ref(&name) else { continue };
        for tuple in relation.iter() {
            let values: Vec<String> = tuple.iter().map(std::string::ToString::to_string).collect();
            out.push_str(&format!("{name}({});\n", values.join(",")));
        }
    }
    out
}

/// What one [`DifferentialChase::apply`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Effective updates after net normalisation (a `+t` and a `-t` of the
    /// same tuple in one batch cancel; re-inserting a present tuple or
    /// deleting an absent one is a no-op).
    pub applied: usize,
    /// Source rows inserted.
    pub inserted: usize,
    /// Source rows deleted.
    pub deleted: usize,
    /// Rule firings retracted by the delete cascade (overdeletion).
    pub retracted: usize,
    /// Retracted firings restored by the support check (rederivation).
    pub rederived: usize,
    /// New rule firings from insertion propagation.
    pub fired: usize,
    /// Target rows added by this batch.
    pub target_added: usize,
    /// Target rows removed by this batch.
    pub target_removed: usize,
    /// Did the batch fall back to a full recompute?
    pub fallback: bool,
    /// Binding rows charged while evaluating this batch (the work measure
    /// `fig14` compares against a full re-chase).
    pub work: usize,
}

/// A chase rule: compiled premise plan plus conjunctive conclusion.
struct DiffRule {
    premise: Expr,
    conclusion: Conjunctive,
    /// `None` when the premise is outside the plannable fragment; such a
    /// rule forces full-recompute mode.
    plan: Option<PremisePlan>,
}

/// The maintained chase state: target, live frontier index, per-rule fired
/// sets, and per-target-tuple support counts.
struct ChaseState {
    target: Instance,
    /// Hash-indexed live rows of every plan-read relation (source ∪
    /// target), updated in place.
    live: TupleIndex,
    /// Premise tuples fired, per rule. A firing is active while its premise
    /// tuple is derivable; DRed retracts and rederives entries here.
    fired: Vec<BTreeSet<Tuple>>,
    /// Active derivation count per target tuple, counting one per
    /// (rule, premise tuple, conclusion atom) occurrence. A tuple lives in
    /// the target iff its support is positive.
    support: BTreeMap<(String, Tuple), usize>,
    /// Labelled nulls currently alive (minted minus retracted).
    nulls: usize,
    /// Binding rows charged building this state.
    work: usize,
    /// Did the build reach a fixpoint (as opposed to a limit)?
    converged: bool,
    /// Was any rule dropped (evaluation error) while building?
    degraded: bool,
}

impl ChaseState {
    fn empty(source: &Instance, read_rels: &BTreeSet<String>) -> ChaseState {
        ChaseState {
            target: Instance::new(),
            live: TupleIndex::from_layers(&[source], read_rels.iter()),
            fired: Vec::new(),
            support: BTreeMap::new(),
            nulls: 0,
            work: 0,
            converged: false,
            degraded: false,
        }
    }
}

/// An incrementally-maintained data-exchange target.
///
/// Built once from constraints and an initial source instance (the build is
/// itself a full Skolem chase), then kept current by [`apply`]-ing signed
/// update batches. A fresh `DifferentialChase` over the same constraints
/// and the current source always reproduces the maintained state exactly —
/// the oracle property the differential test suite enforces.
///
/// [`apply`]: DifferentialChase::apply
pub struct DifferentialChase {
    rules: Vec<DiffRule>,
    full_sig: Signature,
    target_sig: Signature,
    registry: Registry,
    config: ExchangeConfig,
    /// Relations read by any compiled premise plan: the live index covers
    /// exactly these.
    read_rels: BTreeSet<String>,
    /// Constraints that could not be chased (with reasons).
    skipped: Vec<(Constraint, String)>,
    /// Any rule outside the plannable fragment? Incremental maintenance is
    /// disabled; every batch recomputes in full.
    unplannable: bool,
    /// Does the premise→conclusion relation graph contain a cycle? A cyclic
    /// rule set lets target rows support each other transitively, and
    /// counting-based retraction can never drive a mutually-supporting
    /// cycle to zero — so batches with effective deletions retreat to the
    /// full re-chase fallback. Insertions are a monotone fixpoint and stay
    /// incremental either way.
    recursive: bool,
    source: Instance,
    state: ChaseState,
}

impl DifferentialChase {
    /// Build the engine and chase `source` to the initial fixpoint.
    pub fn new(
        constraints: &[Constraint],
        full_sig: &Signature,
        target_sig: &Signature,
        source: Instance,
        registry: &Registry,
        config: &ExchangeConfig,
    ) -> Self {
        let mut rules = Vec::new();
        let mut skipped = Vec::new();
        for constraint in constraints {
            for containment in constraint.as_containments() {
                let mentions_target =
                    containment.rhs.relations().iter().any(|name| target_sig.contains(name));
                if !mentions_target {
                    continue;
                }
                match expr_to_conjunctive(&containment.rhs, full_sig) {
                    Ok(conclusion) => {
                        if conclusion.head.iter().any(Term::has_func) {
                            skipped.push((
                                containment.clone(),
                                "conclusion contains Skolem functions".to_string(),
                            ));
                            continue;
                        }
                        let plan = PremisePlan::compile(&containment.lhs, full_sig)
                            .map(|plan| plan.with_order(config.join_order));
                        rules.push(DiffRule { premise: containment.lhs.clone(), conclusion, plan });
                    }
                    Err(reason) => skipped.push((containment.clone(), reason)),
                }
            }
        }
        let read_rels: BTreeSet<String> = rules
            .iter()
            .filter_map(|rule| rule.plan.as_ref())
            .flat_map(|plan| plan.relations().iter().cloned())
            .collect();
        let unplannable = rules.iter().any(|rule| rule.plan.is_none());
        // Relation-level dependency graph: an edge from every relation a
        // rule reads to every relation its conclusion writes. A cycle means
        // some derived row can transitively support itself (e.g. the
        // mutually-containing `S1 <= S2; S2 <= S1`), which is exactly the
        // shape support counting cannot retract.
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut recursive = false;
        for rule in &rules {
            let writes: BTreeSet<String> =
                rule.conclusion.atoms.iter().map(|atom| atom.rel.clone()).collect();
            let reads = match &rule.plan {
                Some(plan) => plan.relations().clone(),
                None => rule.premise.relations(),
            };
            for read in reads {
                edges.entry(read).or_default().extend(writes.iter().cloned());
            }
        }
        for start in edges.keys() {
            if reaches(&edges, start, start) {
                recursive = true;
                break;
            }
        }
        let mut engine = DifferentialChase {
            rules,
            full_sig: full_sig.clone(),
            target_sig: target_sig.clone(),
            registry: registry.clone(),
            config: config.clone(),
            read_rels,
            skipped,
            unplannable,
            recursive,
            source,
            state: ChaseState::empty(&Instance::new(), &BTreeSet::new()),
        };
        engine.rebuild();
        engine
    }

    /// The current source instance (initial source plus every applied
    /// batch).
    pub fn source(&self) -> &Instance {
        &self.source
    }

    /// The maintained target instance.
    pub fn target(&self) -> &Instance {
        &self.state.target
    }

    /// The canonical rendering of the maintained target (the byte-identity
    /// oracle compares these).
    pub fn rendered_target(&self) -> String {
        render_instance(&self.state.target)
    }

    /// The support table: active derivation count per target tuple.
    pub fn support(&self) -> &BTreeMap<(String, Tuple), usize> {
        &self.state.support
    }

    /// Labelled nulls currently alive in the target.
    pub fn nulls(&self) -> usize {
        self.state.nulls
    }

    /// Binding rows charged building the current state. After a
    /// [`rebuild`](Self::rebuild) this is the cost of a full re-chase over
    /// the current source — the baseline the `fig14` bench compares
    /// incremental batch cost against.
    pub fn chase_work(&self) -> usize {
        self.state.work
    }

    /// Did the last build or batch reach a fixpoint?
    pub fn converged(&self) -> bool {
        self.state.converged
    }

    /// Constraints that could not be chased, with reasons.
    pub fn skipped(&self) -> &[(Constraint, String)] {
        &self.skipped
    }

    /// Will the next batch take the incremental path (as opposed to a
    /// forced full recompute)?
    pub fn incremental_ready(&self) -> bool {
        !self.unplannable && !self.state.degraded && self.state.converged
    }

    /// Can some target relation transitively derive itself? Deletion
    /// batches over a recursive rule graph always take the full-re-chase
    /// fallback (see the field docs); insert-only batches stay incremental.
    pub fn recursive(&self) -> bool {
        self.recursive
    }

    /// Recompute the state from scratch over the current source. The
    /// deterministic fallback for every error path, and the oracle the
    /// incremental path is tested against.
    pub fn rebuild(&mut self) {
        self.state = full_chase(
            &self.rules,
            &self.full_sig,
            &self.target_sig,
            &self.read_rels,
            &self.source,
            &self.registry,
            &self.config,
        );
    }

    /// Apply one batch of signed updates, incrementally maintaining the
    /// target. Returns what was done, or an error if an update is malformed
    /// with respect to the schema (unknown relation, target relation, wrong
    /// arity) — rejected batches leave the state untouched.
    pub fn apply(&mut self, updates: &[Update]) -> Result<DeltaReport, String> {
        let metrics = delta_metrics();
        // Validate against the schema before touching any state.
        for update in updates {
            if !self.full_sig.contains(&update.rel) {
                return Err(format!("unknown relation `{}`", update.rel));
            }
            if self.target_sig.contains(&update.rel) {
                return Err(format!(
                    "relation `{}` is a target relation; only source relations can be updated",
                    update.rel
                ));
            }
            let arity = self.full_sig.arity(&update.rel).map_err(|e| e.to_string())?;
            if update.tuple.len() != arity {
                return Err(format!(
                    "relation `{}` has arity {arity}, update `{update}` has {}",
                    update.rel,
                    update.tuple.len()
                ));
            }
        }
        // Net normalisation: per tuple, insertions and deletions cancel;
        // only the net sign survives, and only when it changes membership.
        let mut net: BTreeMap<(String, Tuple), i64> = BTreeMap::new();
        for update in updates {
            let slot = net.entry((update.rel.clone(), update.tuple.clone())).or_default();
            *slot += match update.sign {
                Sign::Insert => 1,
                Sign::Delete => -1,
            };
        }
        let mut deletes: Vec<(String, Tuple)> = Vec::new();
        let mut inserts: Vec<(String, Tuple)> = Vec::new();
        for ((rel, tuple), sign) in net {
            if sign > 0 && !self.source.contains(&rel, &tuple) {
                inserts.push((rel, tuple));
            } else if sign < 0 && self.source.contains(&rel, &tuple) {
                deletes.push((rel, tuple));
            }
        }
        let mut report = DeltaReport {
            applied: deletes.len() + inserts.len(),
            inserted: inserts.len(),
            deleted: deletes.len(),
            ..DeltaReport::default()
        };
        metrics.batches.incr();
        metrics.inserts.add(inserts.len() as u64);
        metrics.deletes.add(deletes.len() as u64);
        if report.applied == 0 {
            return Ok(report);
        }
        // Mutate the source first: both the incremental path and the full
        // fallback define their result over the updated source.
        for (rel, tuple) in &deletes {
            self.source.remove(rel, tuple);
        }
        for (rel, tuple) in &inserts {
            self.source.insert(rel, tuple.clone());
        }
        let before = self.state.target.total_tuples();
        // Deletions over a recursive rule graph cannot be retracted by
        // support counting (a mutually-supporting cycle keeps every member
        // alive), so they force the fallback; insertions stay incremental.
        let deletions_retractable = deletes.is_empty() || !self.recursive;
        if self.incremental_ready() && deletions_retractable {
            match self.incremental(&deletes, &inserts, &mut report) {
                Ok(()) => {}
                Err(_) => {
                    // Partial mutations do not matter: the fallback rebuilds
                    // every piece of state from the updated source.
                    report = DeltaReport {
                        retracted: 0,
                        rederived: 0,
                        fired: 0,
                        fallback: true,
                        ..report
                    };
                    self.rebuild();
                    report.work = self.state.work;
                }
            }
        } else {
            report.fallback = true;
            self.rebuild();
            report.work = self.state.work;
        }
        let after = self.state.target.total_tuples();
        report.target_added = after.saturating_sub(before);
        report.target_removed = before.saturating_sub(after);
        if report.fallback {
            metrics.fallbacks.incr();
        }
        metrics.retracted.add(report.retracted as u64);
        metrics.rederived.add(report.rederived as u64);
        metrics.work.observe(report.work as u64);
        Ok(report)
    }

    /// The incremental path: support-counted deletion cascade, rederivation,
    /// then semi-naive insertion propagation. Any `Err` aborts to the full
    /// fallback.
    fn incremental(
        &mut self,
        deletes: &[(String, Tuple)],
        inserts: &[(String, Tuple)],
        report: &mut DeltaReport,
    ) -> Result<(), AlgebraError> {
        let mut work = WorkBudget::new(self.config.eval_budget);
        let state = &mut self.state;
        // ---- Overdeletion cascade -------------------------------------
        // Wave 0 is the deleted source rows; each later wave is the target
        // rows whose support reached zero in the previous one. Lost firings
        // are computed with the wave rows still live (their join partners
        // must be visible), then the rows are unindexed.
        let mut lost: BTreeSet<(usize, Tuple)> = BTreeSet::new();
        let mut wave: Vec<(String, Tuple)> =
            deletes.iter().filter(|(rel, _)| self.read_rels.contains(rel)).cloned().collect();
        while !wave.is_empty() {
            let delta = index_rows(&wave);
            let mut wave_lost: Vec<(usize, Tuple)> = Vec::new();
            for (index, rule) in self.rules.iter().enumerate() {
                let plan = rule.plan.as_ref().expect("incremental mode has only planned rules");
                if !wave.iter().any(|(rel, _)| plan.relations().contains(rel)) {
                    continue;
                }
                for tuple in plan.eval_delta(&state.live, None, &delta, &mut work)? {
                    if state.fired[index].contains(&tuple) {
                        wave_lost.push((index, tuple));
                    }
                }
            }
            for (rel, row) in &wave {
                state.live.remove_row(rel, row);
            }
            let mut next: Vec<(String, Tuple)> = Vec::new();
            for (index, tuple) in wave_lost {
                if !state.fired[index].remove(&tuple) {
                    continue;
                }
                lost.insert((index, tuple.clone()));
                let (rows, minted) =
                    fire_skolem(index, &self.rules[index], &tuple, &self.target_sig);
                state.nulls = state.nulls.saturating_sub(minted);
                for (rel, row) in rows {
                    let key = (rel, row);
                    let Some(count) = state.support.get_mut(&key) else {
                        // The support table is out of sync: abort to the
                        // full fallback rather than guess.
                        return Err(AlgebraError::EvalBudgetExceeded { budget: 0 });
                    };
                    *count -= 1;
                    if *count == 0 {
                        state.support.remove(&key);
                        let (rel, row) = key;
                        state.target.remove(&rel, &row);
                        // A row shadowed by an identical source tuple stays
                        // live (and joinable) even with no derivation left.
                        if self.read_rels.contains(&rel) && !self.source.contains(&rel, &row) {
                            next.push((rel, row));
                        }
                    }
                }
            }
            report.retracted = lost.len();
            wave = next;
        }
        // ---- Rederivation ---------------------------------------------
        // Premises are monotone joins, so a retracted firing is derivable
        // again iff its premise tuple reproduces over the surviving state;
        // firings that need freshly (re)derived rows are caught below by
        // the insertion propagation instead.
        let mut seeds: Vec<(String, Tuple)> = Vec::new();
        for (index, tuple) in &lost {
            if tuple.contains(&Value::Null) {
                // A genuine SQL-style null in a premise head would not
                // rejoin through the indexed plans; take the fallback.
                return Err(AlgebraError::EvalBudgetExceeded { budget: 0 });
            }
            let plan = self.rules[*index].plan.as_ref().expect("planned rule");
            if plan.supports(&state.live, tuple, &mut work)? {
                report.rederived += 1;
                refire(
                    *index,
                    &self.rules[*index],
                    tuple,
                    &self.target_sig,
                    &self.read_rels,
                    &self.config,
                    state,
                    &mut seeds,
                )?;
            }
        }
        // ---- Insertion propagation ------------------------------------
        for (rel, tuple) in inserts {
            if self.read_rels.contains(rel) && state.live.insert_row(rel, tuple.clone()) {
                seeds.push((rel.clone(), tuple.clone()));
            }
        }
        let mut delta_rows = seeds;
        while !delta_rows.is_empty() {
            let delta = index_rows(&delta_rows);
            let mut next: Vec<(String, Tuple)> = Vec::new();
            for (index, rule) in self.rules.iter().enumerate() {
                let plan = rule.plan.as_ref().expect("planned rule");
                if !delta_rows.iter().any(|(rel, _)| plan.relations().contains(rel)) {
                    continue;
                }
                for tuple in plan.eval_delta(&state.live, None, &delta, &mut work)? {
                    if state.fired[index].contains(&tuple) {
                        continue;
                    }
                    report.fired += 1;
                    refire(
                        index,
                        rule,
                        &tuple,
                        &self.target_sig,
                        &self.read_rels,
                        &self.config,
                        state,
                        &mut next,
                    )?;
                }
            }
            delta_rows = next;
        }
        state.work += work.used();
        report.work = work.used();
        Ok(())
    }
}

/// Is `goal` reachable from `start` by one or more edges of the rule
/// dependency graph? (With `start == goal` this asks whether the relation
/// sits on a cycle.) Iterative worklist — rule graphs are tiny, but the
/// recursion depth should not hang off user input either way.
fn reaches(edges: &BTreeMap<String, BTreeSet<String>>, start: &str, goal: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&str> =
        edges.get(start).map(|next| next.iter().map(String::as_str).collect()).unwrap_or_default();
    while let Some(node) = work.pop() {
        if node == goal {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = edges.get(node) {
            work.extend(next.iter().map(String::as_str));
        }
    }
    false
}

/// Fire one rule on one premise tuple under Skolem-null semantics: head
/// variables take the premise values, constants bind from the conclusion,
/// and every remaining (existential) variable takes a content-addressed
/// labelled null. Returns the target rows (one entry per conclusion atom
/// occurrence — support counts one each) and the number of nulls minted.
fn fire_skolem(
    rule_index: usize,
    rule: &DiffRule,
    premise_tuple: &Tuple,
    target_sig: &Signature,
) -> (Vec<(String, Tuple)>, usize) {
    let mut binding: BTreeMap<usize, Value> = BTreeMap::new();
    for (term, value) in rule.conclusion.head.iter().zip(premise_tuple) {
        if let Term::Var(var) = term {
            binding.insert(*var, value.clone());
        }
    }
    for (var, constant) in &rule.conclusion.const_of {
        binding.entry(*var).or_insert_with(|| constant.clone());
    }
    let mut minted = 0usize;
    for var in rule.conclusion.body_vars() {
        binding.entry(var).or_insert_with(|| {
            minted += 1;
            Value::Str(skolem_null(rule_index, var, premise_tuple))
        });
    }
    let mut out = Vec::new();
    for atom in &rule.conclusion.atoms {
        if !target_sig.contains(&atom.rel) {
            // Conclusion atoms over source relations cannot be chased into.
            continue;
        }
        let tuple: Tuple =
            atom.args.iter().map(|var| binding.get(var).cloned().unwrap_or(Value::Null)).collect();
        out.push((atom.rel.clone(), tuple));
    }
    (out, minted)
}

/// The content-addressed labelled-null name for (rule, existential
/// variable, premise tuple): two chained FNV-1a hashes over the rendered
/// firing identity. Stable across engine instances, so a rebuilt or
/// re-chased state names every null identically.
fn skolem_null(rule_index: usize, var: usize, premise_tuple: &Tuple) -> String {
    let mut payload = format!("{rule_index}\u{1f}{var}");
    for value in premise_tuple {
        payload.push('\u{1f}');
        payload.push_str(&value.to_string());
    }
    let h1 = fnv1a(0xcbf2_9ce4_8422_2325, payload.as_bytes());
    let h2 = fnv1a(h1 ^ 0x9e37_79b9_7f4a_7c15, payload.as_bytes());
    format!("_null{h1:016x}{h2:016x}")
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Register a firing as active: record it in the fired set, mint its
/// nulls, bump supports, and materialise newly-supported rows (into the
/// target, the live index, and the caller's delta seed list).
#[allow(clippy::too_many_arguments)]
fn refire(
    rule_index: usize,
    rule: &DiffRule,
    premise_tuple: &Tuple,
    target_sig: &Signature,
    read_rels: &BTreeSet<String>,
    config: &ExchangeConfig,
    state: &mut ChaseState,
    seeds: &mut Vec<(String, Tuple)>,
) -> Result<(), AlgebraError> {
    let (rows, minted) = fire_skolem(rule_index, rule, premise_tuple, target_sig);
    if state.nulls + minted > config.max_nulls {
        // A (possibly diverging) existential cascade: hand the batch to the
        // full fallback, which truncates deterministically.
        return Err(AlgebraError::EvalBudgetExceeded { budget: config.max_nulls });
    }
    state.fired[rule_index].insert(premise_tuple.clone());
    state.nulls += minted;
    for (rel, row) in rows {
        let count = state.support.entry((rel.clone(), row.clone())).or_insert(0);
        *count += 1;
        if *count == 1 {
            state.target.insert(&rel, row.clone());
            if read_rels.contains(&rel) && state.live.insert_row(&rel, row.clone()) {
                seeds.push((rel, row));
            }
        }
    }
    Ok(())
}

/// Index a row list by relation.
fn index_rows(rows: &[(String, Tuple)]) -> TupleIndex {
    let mut grouped: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for (rel, tuple) in rows {
        grouped.entry(rel.clone()).or_default().push(tuple.clone());
    }
    TupleIndex::from_rows(grouped)
}

/// The full Skolem chase from scratch: the initial build, the error
/// fallback, and the oracle. Semi-naive internally, but the result is the
/// order-independent least fixpoint, so only determinism (not order)
/// matters here.
fn full_chase(
    rules: &[DiffRule],
    full_sig: &Signature,
    target_sig: &Signature,
    read_rels: &BTreeSet<String>,
    source: &Instance,
    registry: &Registry,
    config: &ExchangeConfig,
) -> ChaseState {
    let mut state = ChaseState::empty(source, read_rels);
    state.fired = vec![BTreeSet::new(); rules.len()];
    let mut dropped = vec![false; rules.len()];
    let mut rounds = 0usize;
    // Rows inserted in the previous round (planned rules join only these);
    // `None` forces the initial full evaluation.
    let mut delta_rows: Option<Vec<(String, Tuple)>> = None;
    while rounds < config.max_rounds {
        rounds += 1;
        let mut seeds: Vec<(String, Tuple)> = Vec::new();
        let mut fired_any = false;
        let delta = delta_rows.as_deref().map(index_rows);
        for (index, rule) in rules.iter().enumerate() {
            if dropped[index] {
                continue;
            }
            let mut work = WorkBudget::new(config.eval_budget);
            let candidates: BTreeSet<Tuple> = match &rule.plan {
                Some(plan) => {
                    let evaluated = match (&delta, &delta_rows) {
                        (Some(delta), Some(rows)) => {
                            if rows.iter().any(|(rel, _)| plan.relations().contains(rel)) {
                                plan.eval_delta(&state.live, None, delta, &mut work)
                            } else {
                                Ok(BTreeSet::new())
                            }
                        }
                        _ => plan.eval_full(&state.live, None, &mut work),
                    };
                    state.work += work.used();
                    match evaluated {
                        Ok(candidates) => candidates,
                        Err(_) => {
                            dropped[index] = true;
                            state.degraded = true;
                            continue;
                        }
                    }
                }
                None => {
                    // Unplannable premise: full expression evaluation over
                    // the layered source-plus-target view, every round.
                    let view = DeltaInstance::new(source, &state.target);
                    let mut domain: BTreeSet<Value> = source.active_domain();
                    domain.extend(state.target.active_domain());
                    let evaluator = Evaluator::with_parts(
                        full_sig,
                        registry.operators(),
                        &view,
                        domain.into_iter().collect(),
                        Some(config.eval_budget),
                    );
                    match evaluator.eval(&rule.premise) {
                        Ok(relation) => relation.iter().cloned().collect(),
                        Err(_) => {
                            dropped[index] = true;
                            state.degraded = true;
                            continue;
                        }
                    }
                }
            };
            for tuple in candidates {
                if state.fired[index].contains(&tuple) {
                    continue;
                }
                if refire(
                    index, rule, &tuple, target_sig, read_rels, config, &mut state, &mut seeds,
                )
                .is_err()
                {
                    // Null budget exhausted: deterministic truncation.
                    return state;
                }
                fired_any = true;
            }
        }
        if !fired_any {
            state.converged = true;
            break;
        }
        delta_rows = Some(seeds);
    }
    state
}

/// The `chase_delta_*` metrics, registered on the global registry.
struct DeltaMetrics {
    batches: &'static mapcomp_telemetry::metrics::Counter,
    inserts: &'static mapcomp_telemetry::metrics::Counter,
    deletes: &'static mapcomp_telemetry::metrics::Counter,
    retracted: &'static mapcomp_telemetry::metrics::Counter,
    rederived: &'static mapcomp_telemetry::metrics::Counter,
    fallbacks: &'static mapcomp_telemetry::metrics::Counter,
    work: &'static mapcomp_telemetry::metrics::Histogram,
}

fn delta_metrics() -> DeltaMetrics {
    let registry = mapcomp_telemetry::metrics::global();
    DeltaMetrics {
        batches: registry.counter(
            "chase_delta_batches_total",
            "Signed-update batches applied to differential chase engines.",
            &[],
        ),
        inserts: registry.counter(
            "chase_delta_updates_total",
            "Effective source-tuple updates applied, by operation.",
            &[("op", "insert")],
        ),
        deletes: registry.counter(
            "chase_delta_updates_total",
            "Effective source-tuple updates applied, by operation.",
            &[("op", "delete")],
        ),
        retracted: registry.counter(
            "chase_delta_retracted_total",
            "Rule firings retracted by the overdeletion cascade.",
            &[],
        ),
        rederived: registry.counter(
            "chase_delta_rederived_total",
            "Retracted rule firings restored by the support check.",
            &[],
        ),
        fallbacks: registry.counter(
            "chase_delta_fallbacks_total",
            "Update batches that fell back to a full recompute.",
            &[],
        ),
        work: registry.histogram(
            "chase_delta_apply_work",
            "Binding rows charged per applied update batch.",
            &[],
            mapcomp_telemetry::metrics::SIZE_BOUNDS,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, tuple};

    fn registry() -> Registry {
        Registry::standard()
    }

    fn movies_engine() -> (Vec<Constraint>, Signature, Signature, Instance) {
        let full = Signature::from_arities([("Movies", 4), ("Names", 2), ("Years", 2)]);
        let target = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let constraints = parse_constraints(
            "project[0,1](select[#3 = 5](Movies)) <= Names; \
             project[0,2](select[#3 = 5](Movies)) <= Years",
        )
        .unwrap()
        .into_vec();
        let mut source = Instance::new();
        source.insert("Movies", tuple([1i64, 100, 1999, 5]));
        source.insert("Movies", tuple([2i64, 200, 2001, 3]));
        source.insert("Movies", tuple([3i64, 300, 2003, 5]));
        (constraints, full, target, source)
    }

    /// The oracle check: the maintained state must render byte-identically
    /// to a cold re-chase over the same source.
    fn assert_oracle(engine: &DifferentialChase, constraints: &[Constraint]) {
        let oracle = DifferentialChase::new(
            constraints,
            &engine.full_sig,
            &engine.target_sig,
            engine.source.clone(),
            &engine.registry,
            &engine.config,
        );
        assert_eq!(engine.rendered_target(), oracle.rendered_target());
        assert_eq!(engine.support(), oracle.support());
        assert_eq!(engine.nulls(), oracle.nulls());
    }

    #[test]
    fn parse_render_roundtrip() {
        for text in ["+R(1,2)", "-S('a b',null,-7)", "+T()"] {
            let update = parse_update(text).unwrap();
            assert_eq!(update.render(), text);
        }
        assert!(parse_update("R(1)").is_err());
        assert!(parse_update("+R(1").is_err());
        assert!(parse_update("+R(1) x").is_err());
        assert!(parse_update("+R('a)").is_err());
        assert!(parse_update("+1R(1)").is_err());
        assert!(parse_update("+R(x)").is_err());
    }

    #[test]
    fn insert_then_delete_restores_state() {
        let (constraints, full, target, source) = movies_engine();
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(engine.incremental_ready());
        let before_target = engine.rendered_target();
        let before_support = engine.support().clone();
        let row = Update::insert("Movies", tuple([9i64, 900, 2009, 5]));
        let report = engine.apply(std::slice::from_ref(&row)).unwrap();
        assert!(!report.fallback);
        assert_eq!(report.inserted, 1);
        assert!(engine.target().get("Names").contains(&tuple([9i64, 900])));
        assert_oracle(&engine, &constraints);
        let report = engine.apply(&[Update::delete("Movies", row.tuple.clone())]).unwrap();
        assert!(!report.fallback);
        assert_eq!(report.deleted, 1);
        assert_eq!(engine.rendered_target(), before_target);
        assert_eq!(engine.support(), &before_support);
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn net_zero_batch_is_a_no_op() {
        let (constraints, full, target, source) = movies_engine();
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        let before = engine.rendered_target();
        let row = tuple([9i64, 900, 2009, 5]);
        let report = engine
            .apply(&[
                Update::insert("Movies", row.clone()),
                Update::delete("Movies", row.clone()),
                Update::delete("Movies", tuple([4i64, 0, 0, 0])),
            ])
            .unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(engine.rendered_target(), before);
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn shared_support_survives_partial_deletion() {
        // Two source rows derive the same premise tuple (the projection
        // dedups them); deleting one retracts the firing and the support
        // check immediately rederives it from the surviving row.
        let full = Signature::from_arities([("R", 2), ("S", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let constraints = parse_constraints("project[0](R) <= S").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([1i64, 10]));
        source.insert("R", tuple([1i64, 20]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert_eq!(engine.support().get(&("S".to_string(), tuple([1i64]))), Some(&1));
        let report = engine.apply(&[Update::delete("R", tuple([1i64, 10]))]).unwrap();
        assert!(!report.fallback);
        assert_eq!(report.rederived, 1);
        assert!(engine.target().get("S").contains(&tuple([1i64])));
        assert_eq!(engine.support().get(&("S".to_string(), tuple([1i64]))), Some(&1));
        assert_oracle(&engine, &constraints);
        engine.apply(&[Update::delete("R", tuple([1i64, 20]))]).unwrap();
        assert!(engine.target().get("S").is_empty());
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn deletion_cascades_through_target_chains() {
        // R <= S, project[0](S) <= T: deleting the R row must retract both
        // derived tuples.
        let full = Signature::from_arities([("R", 2), ("S", 2), ("T", 1)]);
        let target = Signature::from_arities([("S", 2), ("T", 1)]);
        let constraints = parse_constraints("R <= S; project[0](S) <= T").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([4i64, 40]));
        source.insert("R", tuple([5i64, 50]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        let report = engine.apply(&[Update::delete("R", tuple([4i64, 40]))]).unwrap();
        assert!(!report.fallback);
        assert!(report.retracted >= 2);
        assert!(!engine.target().get("S").contains(&tuple([4i64, 40])));
        assert!(!engine.target().get("T").contains(&tuple([4i64])));
        assert!(engine.target().get("T").contains(&tuple([5i64])));
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn rederivation_restores_alternately_derivable_rows() {
        // S is derivable from either R1 or R2; deleting the R1 row must
        // keep S alive via the R2 derivation (the support check rederives
        // the R2 firing's conclusion rows after the cascade).
        let full = Signature::from_arities([("R1", 1), ("R2", 1), ("S", 1), ("T", 1)]);
        let target = Signature::from_arities([("S", 1), ("T", 1)]);
        let constraints = parse_constraints("R1 <= S; R2 <= S; S <= T").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R1", tuple([1i64]));
        source.insert("R2", tuple([1i64]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        let report = engine.apply(&[Update::delete("R1", tuple([1i64]))]).unwrap();
        assert!(!report.fallback);
        assert!(engine.target().get("S").contains(&tuple([1i64])));
        assert!(engine.target().get("T").contains(&tuple([1i64])));
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn existential_nulls_are_content_addressed() {
        let full = Signature::from_arities([("R", 1), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("R <= project[0](S)").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([7i64]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        let first = engine.rendered_target();
        assert_eq!(engine.nulls(), 1);
        // Insert and retract an unrelated row: the surviving null keeps its
        // name, so the rendering is byte-stable.
        engine.apply(&[Update::insert("R", tuple([8i64]))]).unwrap();
        assert_eq!(engine.nulls(), 2);
        engine.apply(&[Update::delete("R", tuple([8i64]))]).unwrap();
        assert_eq!(engine.rendered_target(), first);
        assert_eq!(engine.nulls(), 1);
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn unplannable_rules_force_full_recompute() {
        let full = Signature::from_arities([("A", 1), ("B", 1), ("S", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let constraints = parse_constraints("A - B <= S").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("A", tuple([1i64]));
        source.insert("A", tuple([2i64]));
        source.insert("B", tuple([2i64]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(!engine.incremental_ready());
        assert!(engine.target().get("S").contains(&tuple([1i64])));
        // Deleting the B row makes A(2) migrate; the non-monotone premise
        // is handled by the fallback.
        let report = engine.apply(&[Update::delete("B", tuple([2i64]))]).unwrap();
        assert!(report.fallback);
        assert!(engine.target().get("S").contains(&tuple([2i64])));
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn recursive_rule_graphs_fall_back_on_deletion() {
        // `S1 <= S2; S2 <= S1` makes the two target copies support each
        // other, so support counting alone can never retract the cycle.
        // Deletions must retreat to a full re-chase; insert-only batches
        // stay on the incremental path (monotone fixpoints are cycle-safe).
        let full = Signature::from_arities([("R", 1), ("S1", 1), ("S2", 1)]);
        let target = Signature::from_arities([("S1", 1), ("S2", 1)]);
        let constraints = parse_constraints("R <= S1; S1 <= S2; S2 <= S1").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([1i64]));
        source.insert("R", tuple([2i64]));
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(engine.recursive());
        assert!(engine.incremental_ready());
        let report = engine.apply(&[Update::insert("R", tuple([3i64]))]).unwrap();
        assert!(!report.fallback);
        assert_oracle(&engine, &constraints);
        // A deletion over the recursive graph forces the fallback; the
        // cyclic supports would otherwise keep S1(1)/S2(1) alive forever.
        let report = engine.apply(&[Update::delete("R", tuple([1i64]))]).unwrap();
        assert!(report.fallback);
        assert!(!engine.target().get("S1").contains(&tuple([1i64])));
        assert!(!engine.target().get("S2").contains(&tuple([1i64])));
        assert_oracle(&engine, &constraints);
    }

    #[test]
    fn updates_to_target_relations_are_rejected() {
        let (constraints, full, target, source) = movies_engine();
        let mut engine = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            source,
            &registry(),
            &ExchangeConfig::default(),
        );
        let before = engine.rendered_target();
        assert!(engine.apply(&[Update::insert("Names", tuple([1i64, 2]))]).is_err());
        assert!(engine.apply(&[Update::insert("Nope", tuple([1i64]))]).is_err());
        assert!(engine.apply(&[Update::insert("Movies", tuple([1i64]))]).is_err());
        assert_eq!(engine.rendered_target(), before);
    }
}
