//! Data exchange: materialise a target instance from a source instance and a
//! mapping.
//!
//! The paper motivates composition with data migration ("With this mapping,
//! the designer can now migrate data from the old schema to the new schema",
//! Example 1) and cites data exchange as the application of the
//! second-order-tgd line of work [5]. This module provides that downstream
//! consumer: a chase-style engine that, given a source instance and a set of
//! algebraic constraints, computes a canonical target instance satisfying
//! every supported constraint, inventing labelled nulls for
//! existentially-required values.
//!
//! Supported constraints are containments `E1 ⊆ E2` (equalities contribute
//! their left-to-right direction) whose right-hand side converts to
//! conjunctive form over target relations (select–project–join shapes, the
//! same fragment deskolemization handles). Constraints that do not fit are
//! reported, not silently dropped.

use std::collections::BTreeSet;

use mapcomp_algebra::{Constraint, Evaluator, Expr, Instance, Signature, Tuple, Value};

use crate::cq::{expr_to_conjunctive, Conjunctive, Term};
use crate::registry::Registry;

/// Configuration of the chase.
#[derive(Debug, Clone)]
pub struct ExchangeConfig {
    /// Maximum number of chase rounds (a round applies every constraint
    /// once). Target-to-target constraints may need several rounds; purely
    /// source-to-target mappings converge in one.
    pub max_rounds: usize,
    /// Hard cap on the number of labelled nulls, as a safety valve against
    /// non-terminating chases.
    pub max_nulls: usize,
    /// Per-evaluation tuple budget for premises and satisfaction checks.
    /// Active-domain powers and products grow combinatorially as the chase
    /// invents nulls; rules whose evaluation exceeds this budget are skipped
    /// (and reported) instead of exhausting memory.
    pub eval_budget: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig { max_rounds: 16, max_nulls: 10_000, eval_budget: 1_000_000 }
    }
}

/// Result of a data-exchange run.
#[derive(Debug, Clone)]
pub struct ExchangeResult {
    /// The computed target instance (a canonical solution).
    pub target: Instance,
    /// Number of labelled nulls invented.
    pub nulls_created: usize,
    /// Number of chase rounds executed.
    pub rounds: usize,
    /// Constraints that could not be used for exchange (with the reason).
    pub skipped: Vec<(Constraint, String)>,
    /// Did the chase reach a fixpoint (as opposed to hitting a limit)?
    pub converged: bool,
}

/// A constraint prepared for chasing: an evaluable premise and a conjunctive
/// conclusion over target relations.
struct ChaseRule {
    /// The containment this rule was built from (for skip reporting).
    origin: Constraint,
    premise: Expr,
    conclusion: Conjunctive,
    /// Expression recomputing the currently-derivable conclusion heads, used
    /// to test whether a premise tuple is already satisfied.
    conclusion_check: Expr,
    /// Set once the rule has been dropped (e.g. it exceeded the evaluation
    /// budget) so it is reported exactly once and not retried.
    dropped: bool,
}

/// Compute a canonical target instance for `constraints` from `source`.
///
/// `full_sig` must cover every relation mentioned by the constraints;
/// `target_sig` lists the relations to be populated (anything not in
/// `target_sig` is treated as source data and read from `source`).
pub fn exchange(
    constraints: &[Constraint],
    full_sig: &Signature,
    target_sig: &Signature,
    source: &Instance,
    registry: &Registry,
    config: &ExchangeConfig,
) -> ExchangeResult {
    let mut skipped = Vec::new();
    let mut rules = Vec::new();

    for constraint in constraints {
        for containment in constraint.as_containments() {
            // Only directions that can populate the target are chase rules:
            // the conclusion must mention at least one target relation and
            // convert to conjunctive form.
            let mentions_target =
                containment.rhs.relations().iter().any(|name| target_sig.contains(name));
            if !mentions_target {
                continue;
            }
            match expr_to_conjunctive(&containment.rhs, full_sig) {
                Ok(conclusion) => {
                    if conclusion.head.iter().any(Term::has_func) {
                        skipped.push((
                            containment.clone(),
                            "conclusion contains Skolem functions".to_string(),
                        ));
                        continue;
                    }
                    let conclusion_check = match conclusion.to_expr() {
                        Ok(expr) => expr,
                        Err(reason) => {
                            skipped.push((containment.clone(), reason));
                            continue;
                        }
                    };
                    rules.push(ChaseRule {
                        origin: containment.clone(),
                        premise: containment.lhs.clone(),
                        conclusion,
                        conclusion_check,
                        dropped: false,
                    });
                }
                Err(reason) => skipped.push((containment.clone(), reason)),
            }
        }
    }

    let mut target = Instance::new();
    let mut nulls_created = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;

    while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;
        for rule in &mut rules {
            if rule.dropped {
                continue;
            }
            let combined = source.merge(&target);
            let evaluator = Evaluator::with_budget(
                full_sig,
                registry.operators(),
                &combined,
                config.eval_budget,
            );
            let premise_tuples = match evaluator.eval(&rule.premise) {
                Ok(relation) => relation,
                Err(reason) => {
                    rule.dropped = true;
                    skipped.push((rule.origin.clone(), format!("premise not evaluable: {reason}")));
                    continue;
                }
            };
            if premise_tuples.is_empty() {
                continue;
            }
            let satisfied = match evaluator.eval(&rule.conclusion_check) {
                Ok(relation) => relation,
                Err(reason) => {
                    rule.dropped = true;
                    skipped.push((
                        rule.origin.clone(),
                        format!("satisfaction check not evaluable: {reason}"),
                    ));
                    continue;
                }
            };
            for tuple in premise_tuples.iter() {
                if satisfied.contains(tuple) {
                    continue;
                }
                if nulls_created >= config.max_nulls {
                    return ExchangeResult {
                        target,
                        nulls_created,
                        rounds,
                        skipped,
                        converged: false,
                    };
                }
                fire(rule, tuple, target_sig, &mut target, &mut nulls_created);
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    ExchangeResult { target, nulls_created, rounds, skipped, converged }
}

/// Insert the tuples required by one rule firing: head variables take the
/// premise tuple's values, other body variables take fresh labelled nulls.
fn fire(
    rule: &ChaseRule,
    premise_tuple: &Tuple,
    target_sig: &Signature,
    target: &mut Instance,
    nulls_created: &mut usize,
) {
    use std::collections::BTreeMap;
    let mut binding: BTreeMap<usize, Value> = BTreeMap::new();
    for (term, value) in rule.conclusion.head.iter().zip(premise_tuple) {
        if let Term::Var(var) = term {
            binding.insert(*var, value.clone());
        }
    }
    for (var, constant) in &rule.conclusion.const_of {
        binding.entry(*var).or_insert_with(|| constant.clone());
    }
    // Fresh labelled nulls for the remaining (existential) variables.
    let body_vars: BTreeSet<usize> = rule.conclusion.body_vars();
    for var in body_vars {
        binding.entry(var).or_insert_with(|| {
            *nulls_created += 1;
            Value::Str(format!("_null{}", *nulls_created))
        });
    }
    for atom in &rule.conclusion.atoms {
        if !target_sig.contains(&atom.rel) {
            // Atoms over source relations in the conclusion cannot be chased
            // into; they act as additional conditions and are ignored here
            // (the premise check keeps the result sound for s-t constraints).
            continue;
        }
        let tuple: Tuple =
            atom.args.iter().map(|var| binding.get(var).cloned().unwrap_or(Value::Null)).collect();
        target.insert(&atom.rel, tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, tuple, ConstraintSet};

    fn registry() -> Registry {
        Registry::standard()
    }

    #[test]
    fn example_1_migration_populates_names_and_years() {
        // The composed Example 1 mapping migrates five-star movies into the
        // evolved schema.
        let full = Signature::from_arities([("Movies", 4), ("Names", 2), ("Years", 2)]);
        let target = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let constraints = parse_constraints(
            "project[0,1](select[#3 = 5](Movies)) <= Names; \
             project[0,2](select[#3 = 5](Movies)) <= Years",
        )
        .unwrap()
        .into_vec();
        let mut source = Instance::new();
        source.insert("Movies", tuple([1i64, 100, 1999, 5]));
        source.insert("Movies", tuple([2i64, 200, 2001, 3]));
        source.insert("Movies", tuple([3i64, 300, 2003, 5]));

        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(result.converged);
        assert!(result.skipped.is_empty());
        assert_eq!(result.nulls_created, 0);
        assert_eq!(result.target.get("Names").len(), 2);
        assert!(result.target.get("Names").contains(&tuple([1i64, 100])));
        assert!(result.target.get("Years").contains(&tuple([3i64, 2003])));
        assert!(!result.target.get("Names").contains(&tuple([2i64, 200])));

        // The produced instance satisfies the mapping.
        let merged = source.merge(&result.target);
        let set = ConstraintSet::from_constraints(constraints);
        assert!(set.satisfied_by(&full, registry().operators(), &merged).unwrap());
    }

    #[test]
    fn existential_columns_get_labelled_nulls() {
        // R(x) → ∃y S(x, y): the second column of S is invented.
        let full = Signature::from_arities([("R", 1), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("R <= project[0](S)").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([7i64]));
        source.insert("R", tuple([8i64]));

        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(result.converged);
        assert_eq!(result.target.get("S").len(), 2);
        assert_eq!(result.nulls_created, 2);
        let merged = source.merge(&result.target);
        let set = ConstraintSet::from_constraints(constraints);
        assert!(set.satisfied_by(&full, registry().operators(), &merged).unwrap());
    }

    #[test]
    fn join_conclusions_populate_both_relations() {
        // Movies(m,n,y) → Names(m,n) ⋈ Years(m,y) written as a single
        // conclusion over a join expression.
        let full = Signature::from_arities([("Movies", 3), ("Names", 2), ("Years", 2)]);
        let target = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let conclusion = Expr::rel("Names").join_on(Expr::rel("Years"), &[(0, 0)], 2, 2);
        let constraints =
            vec![Constraint::containment(Expr::rel("Movies").project(vec![0, 1, 2]), conclusion)];
        let mut source = Instance::new();
        source.insert("Movies", tuple([1i64, 10, 1990]));

        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(result.converged);
        assert!(result.target.get("Names").contains(&tuple([1i64, 10])));
        assert!(result.target.get("Years").contains(&tuple([1i64, 1990])));
    }

    #[test]
    fn target_to_target_constraints_chase_to_fixpoint() {
        // Source copies into S, and an inclusion constraint on the target
        // side requires every S key to appear in T as well.
        let full = Signature::from_arities([("R", 2), ("S", 2), ("T", 1)]);
        let target = Signature::from_arities([("S", 2), ("T", 1)]);
        let constraints = parse_constraints("R <= S; project[0](S) <= T").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([4i64, 40]));

        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(result.converged);
        assert!(result.rounds >= 2);
        assert!(result.target.get("S").contains(&tuple([4i64, 40])));
        assert!(result.target.get("T").contains(&tuple([4i64])));
    }

    #[test]
    fn already_satisfied_premises_do_not_fire() {
        let full = Signature::from_arities([("R", 1), ("S", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let constraints = parse_constraints("R <= S").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([1i64]));
        let first = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        // Chasing again over source ∪ previously-computed target changes
        // nothing: idempotence.
        let merged_source = source.merge(&first.target);
        let second = exchange(
            &constraints,
            &full,
            &target,
            &merged_source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(second.target.get("S").is_subset(&first.target.get("S")));
        assert_eq!(second.nulls_created, 0);
    }

    #[test]
    fn unsupported_conclusions_are_reported() {
        // A union on the right cannot be chased; the constraint is reported
        // in `skipped` rather than silently ignored.
        let full = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let target = Signature::from_arities([("S", 1), ("T", 1)]);
        let constraints = parse_constraints("R <= S + T").unwrap().into_vec();
        let source = {
            let mut inst = Instance::new();
            inst.insert("R", tuple([1i64]));
            inst
        };
        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert_eq!(result.skipped.len(), 1);
        assert!(result.target.get("S").is_empty() && result.target.get("T").is_empty());
    }

    #[test]
    fn equalities_contribute_their_forward_direction() {
        let full = Signature::from_arities([("R", 2), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("S = R").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([5i64, 6]));
        let result = exchange(
            &constraints,
            &full,
            &target,
            &source,
            &registry(),
            &ExchangeConfig::default(),
        );
        assert!(result.target.get("S").contains(&tuple([5i64, 6])));
    }
}
