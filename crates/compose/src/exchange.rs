//! Data exchange: materialise a target instance from a source instance and a
//! mapping.
//!
//! The paper motivates composition with data migration ("With this mapping,
//! the designer can now migrate data from the old schema to the new schema",
//! Example 1) and cites data exchange as the application of the
//! second-order-tgd line of work \[5\]. This module provides that downstream
//! consumer: a chase-style engine that, given a source instance and a set of
//! algebraic constraints, computes a canonical target instance satisfying
//! every supported constraint, inventing labelled nulls for
//! existentially-required values.
//!
//! Supported constraints are containments `E1 ⊆ E2` (equalities contribute
//! their left-to-right direction) whose right-hand side converts to
//! conjunctive form over target relations (select–project–join shapes, the
//! same fragment deskolemization handles). Constraints that do not fit are
//! reported, not silently dropped.
//!
//! # Chase strategies
//!
//! Two fixpoint strategies are provided behind
//! [`ExchangeConfig::strategy`]:
//!
//! * [`ChaseStrategy::Naive`] — the textbook loop: every round re-evaluates
//!   every rule's full premise and satisfaction check over a fresh
//!   `source.merge(&target)` clone.
//! * [`ChaseStrategy::SemiNaive`] (the default) — delta-driven evaluation.
//!   Each rule's premise is compiled once into an indexed conjunctive plan
//!   ([`crate::plan::PremisePlan`]); per round the engine snapshots the
//!   frontier once into hash-indexed form and evaluates each rule only
//!   against its *delta* — the tuples inserted since the rule last ran, with
//!   at least one premise atom bound to those new tuples. Rules whose premise
//!   relations saw no insertions (in particular every source-to-target rule
//!   after round one) are skipped outright. Premises outside the conjunctive
//!   fragment fall back to full expression evaluation over a copy-free
//!   [`DeltaInstance`] layered view, and satisfaction checks run over the
//!   same view, so the per-rule `merge` clone is gone entirely.
//!
//! The two strategies fire the same premise tuples in the same order, so
//! they produce identical targets (including labelled-null numbering),
//! identical `skipped` reports and identical convergence behaviour whenever
//! evaluation stays within the tuple budget; `tests/chase_equivalence.rs`
//! asserts this across the paper examples, the literature corpus and the
//! evolution simulator.

use std::collections::{BTreeMap, BTreeSet};

use mapcomp_algebra::{
    Constraint, DeltaInstance, Evaluator, Expr, Instance, Relation, Signature, Tuple, Value,
};

use crate::cq::{expr_to_conjunctive, Conjunctive, Term};
use crate::plan::{JoinOrder, PremisePlan, TupleIndex, WorkBudget};
use crate::registry::Registry;

/// Fixpoint evaluation strategy of the chase (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseStrategy {
    /// Re-evaluate every rule from scratch each round over a merged clone.
    Naive,
    /// Delta-driven rule evaluation with per-round hash-indexed frontiers.
    #[default]
    SemiNaive,
}

/// A static chase-termination verdict attached to a run by the caller.
///
/// The chase itself does no analysis — `mapcomp-analysis` (which depends on
/// this crate) proves weak acyclicity and derives budgets; catalog-level
/// callers record the verdict here so [`ExchangeResult`] can report which
/// guarantee the run executed under. Plain data by design: compose must not
/// depend on the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationVerdict {
    /// No static analysis was consulted; the run relies on runtime limits.
    #[default]
    Unanalyzed,
    /// Weak acyclicity was proven and `eval_budget` was derived from the
    /// polynomial bound (the same value stored in
    /// [`ExchangeConfig::eval_budget`]).
    Proven {
        /// The analysis-derived per-evaluation budget.
        eval_budget: usize,
    },
    /// Analysis ran but could not prove termination; runtime limits guard
    /// the run.
    Unknown,
}

/// Configuration of the chase.
#[derive(Debug, Clone)]
pub struct ExchangeConfig {
    /// Maximum number of chase rounds (a round applies every constraint
    /// once). Target-to-target constraints may need several rounds; purely
    /// source-to-target mappings converge in one.
    pub max_rounds: usize,
    /// Hard cap on the number of labelled nulls, as a safety valve against
    /// non-terminating chases.
    pub max_nulls: usize,
    /// Per-evaluation tuple budget for premises and satisfaction checks.
    /// Active-domain powers and products grow combinatorially as the chase
    /// invents nulls; rules whose evaluation exceeds this budget are skipped
    /// (and reported) instead of exhausting memory.
    pub eval_budget: usize,
    /// Fixpoint evaluation strategy (default: semi-naive).
    pub strategy: ChaseStrategy,
    /// Atom join-order policy for indexed premise plans (default: greedy
    /// smallest-relation-first). [`JoinOrder::SourceOrder`] restores the
    /// historical left-to-right order — and with it the exact budget-charging
    /// sequence — for strict-parity comparisons.
    pub join_order: JoinOrder,
    /// The static termination verdict this run executes under, set by the
    /// caller (typically from `mapcomp-analysis`); copied verbatim into
    /// [`ExchangeResult::verdict`]. Purely informational to the engine.
    pub verdict: TerminationVerdict,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            max_rounds: 16,
            max_nulls: 10_000,
            eval_budget: 1_000_000,
            strategy: ChaseStrategy::default(),
            join_order: JoinOrder::default(),
            verdict: TerminationVerdict::default(),
        }
    }
}

impl ExchangeConfig {
    /// This configuration with a different chase strategy.
    pub fn with_strategy(mut self, strategy: ChaseStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// This configuration with a different join-order policy.
    pub fn with_join_order(mut self, join_order: JoinOrder) -> Self {
        self.join_order = join_order;
        self
    }
}

/// Result of a data-exchange run.
#[derive(Debug, Clone)]
pub struct ExchangeResult {
    /// The computed target instance (a canonical solution).
    pub target: Instance,
    /// Number of labelled nulls invented.
    pub nulls_created: usize,
    /// Number of chase rounds executed.
    pub rounds: usize,
    /// Constraints that could not be used for exchange (with the reason).
    pub skipped: Vec<(Constraint, String)>,
    /// Did the chase reach a fixpoint (as opposed to hitting a limit)?
    pub converged: bool,
    /// The static termination verdict the run executed under, copied from
    /// [`ExchangeConfig::verdict`].
    pub verdict: TerminationVerdict,
    /// Rows materialised into the semi-naive engine's persistent frontier
    /// index: the one-time source snapshot plus one in-place insert per
    /// novel target tuple. Each live tuple is indexed exactly once for the
    /// whole run — per-round allocation no longer scales with instance size
    /// (the per-round snapshot clone this replaced cost
    /// `rounds × |source ∪ target|`). Always 0 under the naive strategy,
    /// which keeps no frontier index.
    pub frontier_rows: usize,
}

/// A constraint prepared for chasing: an evaluable premise and a conjunctive
/// conclusion over target relations.
struct ChaseRule {
    /// The containment this rule was built from (for skip reporting).
    origin: Constraint,
    premise: Expr,
    conclusion: Conjunctive,
    /// Expression recomputing the currently-derivable conclusion heads, used
    /// to test whether a premise tuple is already satisfied.
    conclusion_check: Expr,
    /// Set once the rule has been dropped (e.g. it exceeded the evaluation
    /// budget) so it is reported exactly once and not retried.
    dropped: bool,
    /// Indexed conjunctive plan for the premise (semi-naive only; `None`
    /// when the premise is outside the plannable fragment).
    plan: Option<PremisePlan>,
    /// Position in the insertion log up to which this rule has seen the
    /// target (semi-naive bookkeeping).
    cursor: usize,
    /// Premise tuples fired but not yet re-confirmed as satisfied; they are
    /// rechecked (and, for conclusions over source relations, refired) on
    /// the next round, exactly as the naive strategy would.
    pending: BTreeSet<Tuple>,
    /// Has the premise been evaluated in full at least once?
    initialized: bool,
}

/// Compute a canonical target instance for `constraints` from `source`.
///
/// `full_sig` must cover every relation mentioned by the constraints;
/// `target_sig` lists the relations to be populated (anything not in
/// `target_sig` is treated as source data and read from `source`).
pub fn exchange(
    constraints: &[Constraint],
    full_sig: &Signature,
    target_sig: &Signature,
    source: &Instance,
    registry: &Registry,
    config: &ExchangeConfig,
) -> ExchangeResult {
    let mut skipped = Vec::new();
    let mut rules = Vec::new();

    for constraint in constraints {
        for containment in constraint.as_containments() {
            // Only directions that can populate the target are chase rules:
            // the conclusion must mention at least one target relation and
            // convert to conjunctive form.
            let mentions_target =
                containment.rhs.relations().iter().any(|name| target_sig.contains(name));
            if !mentions_target {
                continue;
            }
            match expr_to_conjunctive(&containment.rhs, full_sig) {
                Ok(conclusion) => {
                    if conclusion.head.iter().any(Term::has_func) {
                        skipped.push((
                            containment.clone(),
                            "conclusion contains Skolem functions".to_string(),
                        ));
                        continue;
                    }
                    let conclusion_check = match conclusion.to_expr() {
                        Ok(expr) => expr,
                        Err(reason) => {
                            skipped.push((containment.clone(), reason));
                            continue;
                        }
                    };
                    let plan = PremisePlan::compile(&containment.lhs, full_sig)
                        .map(|plan| plan.with_order(config.join_order));
                    rules.push(ChaseRule {
                        origin: containment.clone(),
                        premise: containment.lhs.clone(),
                        conclusion,
                        conclusion_check,
                        dropped: false,
                        plan,
                        cursor: 0,
                        pending: BTreeSet::new(),
                        initialized: false,
                    });
                }
                Err(reason) => skipped.push((containment.clone(), reason)),
            }
        }
    }

    match config.strategy {
        ChaseStrategy::Naive => {
            exchange_naive(rules, full_sig, target_sig, source, registry, config, skipped)
        }
        ChaseStrategy::SemiNaive => {
            exchange_semi_naive(rules, full_sig, target_sig, source, registry, config, skipped)
        }
    }
}

/// The textbook chase loop: full re-evaluation over a merged clone each
/// round. Kept verbatim as the reference implementation the semi-naive
/// engine is tested against.
fn exchange_naive(
    mut rules: Vec<ChaseRule>,
    full_sig: &Signature,
    target_sig: &Signature,
    source: &Instance,
    registry: &Registry,
    config: &ExchangeConfig,
    mut skipped: Vec<(Constraint, String)>,
) -> ExchangeResult {
    let mut target = Instance::new();
    let mut nulls_created = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;
    let (rounds_metric, frontier_metric) = chase_telemetry("naive");

    while rounds < config.max_rounds {
        rounds += 1;
        rounds_metric.incr();
        let mut fired_this_round = 0u64;
        let mut changed = false;
        for rule in &mut rules {
            if rule.dropped {
                continue;
            }
            let combined = source.merge(&target);
            let evaluator = Evaluator::with_budget(
                full_sig,
                registry.operators(),
                &combined,
                config.eval_budget,
            );
            let premise_tuples = match evaluator.eval(&rule.premise) {
                Ok(relation) => relation,
                Err(reason) => {
                    rule.dropped = true;
                    skipped.push((rule.origin.clone(), format!("premise not evaluable: {reason}")));
                    continue;
                }
            };
            if premise_tuples.is_empty() {
                continue;
            }
            let satisfied = match evaluator.eval(&rule.conclusion_check) {
                Ok(relation) => relation,
                Err(reason) => {
                    rule.dropped = true;
                    skipped.push((
                        rule.origin.clone(),
                        format!("satisfaction check not evaluable: {reason}"),
                    ));
                    continue;
                }
            };
            for tuple in premise_tuples.iter() {
                if satisfied.contains(tuple) {
                    continue;
                }
                if nulls_created >= config.max_nulls {
                    return ExchangeResult {
                        target,
                        nulls_created,
                        rounds,
                        skipped,
                        converged: false,
                        verdict: config.verdict,
                        frontier_rows: 0,
                    };
                }
                for (rel, row) in fire(rule, tuple, target_sig, &mut nulls_created) {
                    target.insert(&rel, row);
                }
                fired_this_round += 1;
                changed = true;
            }
        }
        frontier_metric.observe(fired_this_round);
        if !changed {
            converged = true;
            break;
        }
    }

    ExchangeResult {
        target,
        nulls_created,
        rounds,
        skipped,
        converged,
        verdict: config.verdict,
        frontier_rows: 0,
    }
}

/// The semi-naive chase: one persistent hash-indexed frontier updated in
/// place, per-rule delta evaluation, layered-view satisfaction checks. Fires
/// the same tuples in the same order as [`exchange_naive`].
fn exchange_semi_naive(
    mut rules: Vec<ChaseRule>,
    full_sig: &Signature,
    target_sig: &Signature,
    source: &Instance,
    registry: &Registry,
    config: &ExchangeConfig,
    mut skipped: Vec<(Constraint, String)>,
) -> ExchangeResult {
    // Relations any indexed plan reads: only these need snapshotting and
    // insertion logging.
    let plan_rels: BTreeSet<String> = rules
        .iter()
        .filter_map(|rule| rule.plan.as_ref())
        .flat_map(|plan| plan.relations().iter().cloned())
        .collect();

    let mut target = Instance::new();
    // Append-only record of insertions into plan-read relations that are
    // novel to the live frontier (source ∪ target); each rule's delta is
    // the suffix after its own cursor.
    let mut log: Vec<(String, Tuple)> = Vec::new();
    // The persistent live frontier: source rows of plan-read relations,
    // indexed once up front, then updated in place as firings land. Replaces
    // the per-round `source ∪ target` snapshot clone — per-round allocation
    // no longer scales with instance size.
    let mut live = TupleIndex::from_layers(&[source], plan_rels.iter());
    let mut frontier_rows: usize = plan_rels.iter().map(|rel| live.row_count(rel)).sum();
    // Active domain of source ∪ target, maintained incrementally.
    let mut domain: BTreeSet<Value> = source.active_domain();
    let mut nulls_created = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;
    let (rounds_metric, frontier_metric) = chase_telemetry("semi-naive");

    while rounds < config.max_rounds {
        rounds += 1;
        rounds_metric.incr();
        let mut changed = false;
        let round_start = log.len();
        for rule in &mut rules {
            if rule.dropped {
                continue;
            }
            let view = DeltaInstance::new(source, &target);
            // Cloning the active domain is only needed when an Evaluator is
            // actually built; most planned-rule visits never do.
            let domain_vec = || -> Vec<Value> { domain.iter().cloned().collect() };
            let mut drop_reason: Option<String> = None;
            let mut candidates: BTreeSet<Tuple> = BTreeSet::new();
            let mut satisfied: Option<Relation> = None;
            match &rule.plan {
                Some(plan) => {
                    let mut work = WorkBudget::new(config.eval_budget);
                    if !rule.initialized {
                        // First evaluation: a full indexed join over the live
                        // frontier (already up to date with every firing).
                        match plan.eval_full(&live, None, &mut work) {
                            Ok(new) => candidates = new,
                            Err(reason) => {
                                drop_reason = Some(format!("premise not evaluable: {reason}"));
                            }
                        }
                    } else {
                        let delta_live = log[rule.cursor..]
                            .iter()
                            .any(|(rel, _)| plan.relations().contains(rel));
                        if delta_live {
                            let delta = slice_index(&log, rule.cursor).expect("non-empty slice");
                            // Non-delta atoms range over the live frontier,
                            // which holds each row exactly once; the delta
                            // rows overlap it by design (they anchor the
                            // join, the frontier supplies the partners).
                            match plan.eval_delta(&live, None, &delta, &mut work) {
                                Ok(new) => candidates = new,
                                Err(reason) => {
                                    drop_reason = Some(format!("premise not evaluable: {reason}"));
                                }
                            }
                        }
                        if drop_reason.is_none() {
                            candidates.extend(rule.pending.iter().cloned());
                        }
                    }
                }
                None => {
                    // Unplannable premise: full expression evaluation over
                    // the layered view, sharing one budget with the
                    // satisfaction check exactly like the naive strategy.
                    let evaluator = Evaluator::with_parts(
                        full_sig,
                        registry.operators(),
                        &view,
                        domain_vec(),
                        Some(config.eval_budget),
                    );
                    match evaluator.eval(&rule.premise) {
                        Ok(premise_tuples) => {
                            if !premise_tuples.is_empty() {
                                match evaluator.eval(&rule.conclusion_check) {
                                    Ok(check) => {
                                        candidates = premise_tuples.into_iter().collect();
                                        satisfied = Some(check);
                                    }
                                    Err(reason) => {
                                        drop_reason = Some(format!(
                                            "satisfaction check not evaluable: {reason}"
                                        ));
                                    }
                                }
                            }
                        }
                        Err(reason) => {
                            drop_reason = Some(format!("premise not evaluable: {reason}"));
                        }
                    }
                }
            }
            if let Some(reason) = drop_reason {
                rule.dropped = true;
                skipped.push((rule.origin.clone(), reason));
                continue;
            }
            let cursor = log.len();
            rule.initialized = true;
            if candidates.is_empty() {
                rule.cursor = cursor;
                continue;
            }
            let satisfied = match satisfied {
                Some(relation) => relation,
                None => {
                    let evaluator = Evaluator::with_parts(
                        full_sig,
                        registry.operators(),
                        &view,
                        domain_vec(),
                        Some(config.eval_budget),
                    );
                    match evaluator.eval(&rule.conclusion_check) {
                        Ok(relation) => relation,
                        Err(reason) => {
                            rule.dropped = true;
                            skipped.push((
                                rule.origin.clone(),
                                format!("satisfaction check not evaluable: {reason}"),
                            ));
                            continue;
                        }
                    }
                }
            };
            // Decide firings against the pre-firing state (like the naive
            // loop, which computes `satisfied` once per rule per round).
            let mut to_insert: Vec<(String, Tuple)> = Vec::new();
            let mut confirmed: Vec<Tuple> = Vec::new();
            let mut fired: Vec<Tuple> = Vec::new();
            let mut exhausted = false;
            for tuple in &candidates {
                if satisfied.contains(tuple) {
                    confirmed.push(tuple.clone());
                    continue;
                }
                if nulls_created >= config.max_nulls {
                    exhausted = true;
                    break;
                }
                to_insert.extend(fire(rule, tuple, target_sig, &mut nulls_created));
                fired.push(tuple.clone());
            }
            rule.cursor = cursor;
            for tuple in confirmed {
                rule.pending.remove(&tuple);
            }
            if rule.plan.is_some() {
                rule.pending.extend(fired.iter().cloned());
            }
            if !fired.is_empty() {
                changed = true;
            }
            for (rel, row) in to_insert {
                let novel = !target.get_ref(&rel).is_some_and(|existing| existing.contains(&row));
                if novel {
                    domain.extend(row.iter().cloned());
                    // Rows already live (a target tuple duplicating a source
                    // tuple) add nothing to any join: they are kept out of
                    // the frontier and the delta log alike.
                    if plan_rels.contains(&rel) && live.insert_row(&rel, row.clone()) {
                        frontier_rows += 1;
                        log.push((rel.clone(), row.clone()));
                    }
                    target.insert(&rel, row);
                }
            }
            if exhausted {
                return ExchangeResult {
                    target,
                    nulls_created,
                    rounds,
                    skipped,
                    converged: false,
                    verdict: config.verdict,
                    frontier_rows,
                };
            }
        }
        frontier_metric.observe((log.len() - round_start) as u64);
        if !changed {
            converged = true;
            break;
        }
    }

    ExchangeResult {
        target,
        nulls_created,
        rounds,
        skipped,
        converged,
        verdict: config.verdict,
        frontier_rows,
    }
}

/// The chase-progress metrics for one strategy: rounds executed and the
/// per-round frontier size (novel tuples a round hands to the next one).
fn chase_telemetry(
    strategy: &'static str,
) -> (&'static mapcomp_telemetry::metrics::Counter, &'static mapcomp_telemetry::metrics::Histogram)
{
    let registry = mapcomp_telemetry::metrics::global();
    let labels = [("strategy", strategy)];
    (
        registry.counter("chase_rounds_total", "Chase rounds executed, per strategy.", &labels),
        registry.histogram(
            "chase_frontier_size",
            "Novel tuples produced per chase round, per strategy.",
            &labels,
            mapcomp_telemetry::metrics::SIZE_BOUNDS,
        ),
    )
}

/// Index a log suffix by relation, or `None` when the suffix is empty.
fn slice_index(log: &[(String, Tuple)], from: usize) -> Option<TupleIndex> {
    if from >= log.len() {
        return None;
    }
    let mut rows: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for (rel, tuple) in &log[from..] {
        rows.entry(rel.clone()).or_default().push(tuple.clone());
    }
    Some(TupleIndex::from_rows(rows))
}

/// The tuples required by one rule firing: head variables take the premise
/// tuple's values, other body variables take fresh labelled nulls. Only
/// target relations are populated.
fn fire(
    rule: &ChaseRule,
    premise_tuple: &Tuple,
    target_sig: &Signature,
    nulls_created: &mut usize,
) -> Vec<(String, Tuple)> {
    let mut binding: BTreeMap<usize, Value> = BTreeMap::new();
    for (term, value) in rule.conclusion.head.iter().zip(premise_tuple) {
        if let Term::Var(var) = term {
            binding.insert(*var, value.clone());
        }
    }
    for (var, constant) in &rule.conclusion.const_of {
        binding.entry(*var).or_insert_with(|| constant.clone());
    }
    // Fresh labelled nulls for the remaining (existential) variables.
    let body_vars: BTreeSet<usize> = rule.conclusion.body_vars();
    for var in body_vars {
        binding.entry(var).or_insert_with(|| {
            *nulls_created += 1;
            Value::Str(format!("_null{}", *nulls_created))
        });
    }
    let mut out = Vec::new();
    for atom in &rule.conclusion.atoms {
        if !target_sig.contains(&atom.rel) {
            // Atoms over source relations in the conclusion cannot be chased
            // into; they act as additional conditions and are ignored here
            // (the premise check keeps the result sound for s-t constraints).
            continue;
        }
        let tuple: Tuple =
            atom.args.iter().map(|var| binding.get(var).cloned().unwrap_or(Value::Null)).collect();
        out.push((atom.rel.clone(), tuple));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, tuple, ConstraintSet};

    fn registry() -> Registry {
        Registry::standard()
    }

    /// Run a scenario under both strategies, assert they agree exactly, and
    /// return the semi-naive result.
    fn exchange_both(
        constraints: &[Constraint],
        full: &Signature,
        target: &Signature,
        source: &Instance,
        config: &ExchangeConfig,
    ) -> ExchangeResult {
        let naive = exchange(
            constraints,
            full,
            target,
            source,
            &registry(),
            &config.clone().with_strategy(ChaseStrategy::Naive),
        );
        let semi = exchange(
            constraints,
            full,
            target,
            source,
            &registry(),
            &config.clone().with_strategy(ChaseStrategy::SemiNaive),
        );
        assert_eq!(naive.target, semi.target, "strategies disagree on the target");
        assert_eq!(naive.nulls_created, semi.nulls_created);
        assert_eq!(naive.rounds, semi.rounds);
        assert_eq!(naive.converged, semi.converged);
        assert_eq!(naive.skipped.len(), semi.skipped.len());
        semi
    }

    #[test]
    fn example_1_migration_populates_names_and_years() {
        // The composed Example 1 mapping migrates five-star movies into the
        // evolved schema.
        let full = Signature::from_arities([("Movies", 4), ("Names", 2), ("Years", 2)]);
        let target = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let constraints = parse_constraints(
            "project[0,1](select[#3 = 5](Movies)) <= Names; \
             project[0,2](select[#3 = 5](Movies)) <= Years",
        )
        .unwrap()
        .into_vec();
        let mut source = Instance::new();
        source.insert("Movies", tuple([1i64, 100, 1999, 5]));
        source.insert("Movies", tuple([2i64, 200, 2001, 3]));
        source.insert("Movies", tuple([3i64, 300, 2003, 5]));

        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.converged);
        assert!(result.skipped.is_empty());
        assert_eq!(result.nulls_created, 0);
        assert_eq!(result.target.get("Names").len(), 2);
        assert!(result.target.get("Names").contains(&tuple([1i64, 100])));
        assert!(result.target.get("Years").contains(&tuple([3i64, 2003])));
        assert!(!result.target.get("Names").contains(&tuple([2i64, 200])));

        // The produced instance satisfies the mapping.
        let merged = source.merge(&result.target);
        let set = ConstraintSet::from_constraints(constraints);
        assert!(set.satisfied_by(&full, registry().operators(), &merged).unwrap());
    }

    #[test]
    fn existential_columns_get_labelled_nulls() {
        // R(x) → ∃y S(x, y): the second column of S is invented.
        let full = Signature::from_arities([("R", 1), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("R <= project[0](S)").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([7i64]));
        source.insert("R", tuple([8i64]));

        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.converged);
        assert_eq!(result.target.get("S").len(), 2);
        assert_eq!(result.nulls_created, 2);
        let merged = source.merge(&result.target);
        let set = ConstraintSet::from_constraints(constraints);
        assert!(set.satisfied_by(&full, registry().operators(), &merged).unwrap());
    }

    #[test]
    fn join_conclusions_populate_both_relations() {
        // Movies(m,n,y) → Names(m,n) ⋈ Years(m,y) written as a single
        // conclusion over a join expression.
        let full = Signature::from_arities([("Movies", 3), ("Names", 2), ("Years", 2)]);
        let target = Signature::from_arities([("Names", 2), ("Years", 2)]);
        let conclusion = Expr::rel("Names").join_on(Expr::rel("Years"), &[(0, 0)], 2, 2);
        let constraints =
            vec![Constraint::containment(Expr::rel("Movies").project(vec![0, 1, 2]), conclusion)];
        let mut source = Instance::new();
        source.insert("Movies", tuple([1i64, 10, 1990]));

        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.converged);
        assert!(result.target.get("Names").contains(&tuple([1i64, 10])));
        assert!(result.target.get("Years").contains(&tuple([1i64, 1990])));
    }

    #[test]
    fn target_to_target_constraints_chase_to_fixpoint() {
        // Source copies into S, and an inclusion constraint on the target
        // side requires every S key to appear in T as well.
        let full = Signature::from_arities([("R", 2), ("S", 2), ("T", 1)]);
        let target = Signature::from_arities([("S", 2), ("T", 1)]);
        let constraints = parse_constraints("R <= S; project[0](S) <= T").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([4i64, 40]));

        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.converged);
        assert!(result.rounds >= 2);
        assert!(result.target.get("S").contains(&tuple([4i64, 40])));
        assert!(result.target.get("T").contains(&tuple([4i64])));
    }

    #[test]
    fn already_satisfied_premises_do_not_fire() {
        let full = Signature::from_arities([("R", 1), ("S", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let constraints = parse_constraints("R <= S").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([1i64]));
        let first =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        // Chasing again over source ∪ previously-computed target changes
        // nothing: idempotence.
        let merged_source = source.merge(&first.target);
        let second =
            exchange_both(&constraints, &full, &target, &merged_source, &ExchangeConfig::default());
        assert!(second.target.get("S").is_subset(&first.target.get("S")));
        assert_eq!(second.nulls_created, 0);
    }

    #[test]
    fn unsupported_conclusions_are_reported() {
        // A union on the right cannot be chased; the constraint is reported
        // in `skipped` rather than silently ignored.
        let full = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let target = Signature::from_arities([("S", 1), ("T", 1)]);
        let constraints = parse_constraints("R <= S + T").unwrap().into_vec();
        let source = {
            let mut inst = Instance::new();
            inst.insert("R", tuple([1i64]));
            inst
        };
        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert_eq!(result.skipped.len(), 1);
        assert!(result.target.get("S").is_empty() && result.target.get("T").is_empty());
    }

    #[test]
    fn equalities_contribute_their_forward_direction() {
        let full = Signature::from_arities([("R", 2), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("S = R").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("R", tuple([5i64, 6]));
        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.target.get("S").contains(&tuple([5i64, 6])));
    }

    #[test]
    fn non_conjunctive_premises_fall_back_and_still_agree() {
        // A difference premise is outside the plannable fragment (and
        // non-monotone); the semi-naive engine must fall back to full
        // evaluation and still match the naive result.
        let full = Signature::from_arities([("A", 1), ("B", 1), ("S", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let constraints = parse_constraints("A - B <= S").unwrap().into_vec();
        let mut source = Instance::new();
        source.insert("A", tuple([1i64]));
        source.insert("A", tuple([2i64]));
        source.insert("B", tuple([2i64]));
        let result =
            exchange_both(&constraints, &full, &target, &source, &ExchangeConfig::default());
        assert!(result.converged);
        assert_eq!(result.target.get("S"), Relation::from_tuples([tuple([1i64])]));
    }

    #[test]
    fn source_atom_conclusions_refire_identically() {
        // Conclusion joins a target atom with a source atom the chase cannot
        // populate: the premise tuple stays unsatisfied forever and both
        // strategies must refire it every round until max_rounds.
        let full = Signature::from_arities([("R", 1), ("S", 1), ("Aux", 1)]);
        let target = Signature::from_arities([("S", 1)]);
        let conclusion = Expr::rel("S").intersect(Expr::rel("Aux"));
        let constraints = vec![Constraint::containment(Expr::rel("R"), conclusion)];
        let mut source = Instance::new();
        source.insert("R", tuple([1i64]));
        let config = ExchangeConfig { max_rounds: 5, ..ExchangeConfig::default() };
        let result = exchange_both(&constraints, &full, &target, &source, &config);
        assert!(!result.converged);
        assert_eq!(result.rounds, 5);
        assert!(result.target.get("S").contains(&tuple([1i64])));
    }

    #[test]
    fn max_nulls_truncates_both_strategies_alike() {
        let full = Signature::from_arities([("R", 1), ("S", 2)]);
        let target = Signature::from_arities([("S", 2)]);
        let constraints = parse_constraints("R <= project[0](S)").unwrap().into_vec();
        let mut source = Instance::new();
        for i in 0..10i64 {
            source.insert("R", tuple([i]));
        }
        let config = ExchangeConfig { max_nulls: 4, ..ExchangeConfig::default() };
        let result = exchange_both(&constraints, &full, &target, &source, &config);
        assert!(!result.converged);
        assert_eq!(result.nulls_created, 4);
    }
}
