//! The ELIMINATE procedure (paper §3.1).
//!
//! ELIMINATE takes a set of constraints Σ over a schema σ containing the
//! relation symbol S and produces an equivalent set of constraints over
//! σ − {S}, or reports failure. It tries, in order: view unfolding (§3.2),
//! left compose (§3.4) and right compose (§3.5); the first step to succeed
//! wins.

use mapcomp_algebra::{Constraint, Signature};

use crate::compose::ComposeConfig;
use crate::left::left_compose;
use crate::outcome::{EliminateFailure, EliminateStep, EliminateSuccess, FailureReason};
use crate::registry::Registry;
use crate::right::right_compose;
use crate::view_unfold::view_unfold;

/// Attempt to eliminate `sym` from `constraints`.
///
/// The configuration's ablation switches (used by the experiments of paper
/// §4.2) can disable individual steps; a disabled step reports
/// [`FailureReason::Disabled`].
pub fn eliminate(
    constraints: &[Constraint],
    sym: &str,
    sig: &Signature,
    registry: &Registry,
    config: &ComposeConfig,
) -> Result<EliminateSuccess, EliminateFailure> {
    let view_unfolding = if config.enable_view_unfolding {
        match view_unfold(constraints, sym) {
            Ok(result) => {
                return Ok(finish(result, EliminateStep::ViewUnfolding, sym));
            }
            Err(reason) => reason,
        }
    } else {
        FailureReason::Disabled
    };

    let left = if config.enable_left_compose {
        match left_compose(constraints, sym, sig, registry) {
            Ok(result) => {
                return Ok(finish(result, EliminateStep::LeftCompose, sym));
            }
            Err(reason) => reason,
        }
    } else {
        FailureReason::Disabled
    };

    let right = if config.enable_right_compose {
        match right_compose(constraints, sym, sig, registry) {
            Ok(result) => {
                return Ok(finish(result, EliminateStep::RightCompose, sym));
            }
            Err(reason) => reason,
        }
    } else {
        FailureReason::Disabled
    };

    Err(EliminateFailure { view_unfolding, left_compose: left, right_compose: right })
}

/// Post-condition guard: the successful step must have removed every
/// occurrence of the symbol (the individual steps already guarantee this;
/// the debug assertion documents the invariant).
fn finish(constraints: Vec<Constraint>, step: EliminateStep, sym: &str) -> EliminateSuccess {
    debug_assert!(
        constraints.iter().all(|c| !c.mentions(sym)),
        "{step} left occurrences of {sym} behind"
    );
    EliminateSuccess { constraints, step }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    fn sig() -> Signature {
        Signature::from_arities([("R", 1), ("S", 1), ("T", 1), ("U", 1), ("V", 1)])
    }

    fn config() -> ComposeConfig {
        ComposeConfig::default()
    }

    #[test]
    fn unfolding_preferred_over_composition() {
        // S = R would also be eliminable by left or right compose, but view
        // unfolding (step 1) must win.
        let constraints = parse_constraints("S = R; S <= T").unwrap().into_vec();
        let result =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config()).unwrap();
        assert_eq!(result.step, EliminateStep::ViewUnfolding);
        assert!(result.constraints.iter().all(|c| !c.mentions("S")));
    }

    #[test]
    fn example_3_containment_chain() {
        // R ⊆ S, S ⊆ T composes to R ⊆ T (paper Example 3) via left or right
        // compose.
        let constraints = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        let result =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config()).unwrap();
        assert_eq!(result.constraints, parse_constraints("R <= T").unwrap().into_vec());
    }

    #[test]
    fn disabled_steps_report_disabled() {
        let constraints = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        let config = ComposeConfig {
            enable_view_unfolding: false,
            enable_left_compose: false,
            enable_right_compose: false,
            ..ComposeConfig::default()
        };
        let failure =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config).unwrap_err();
        assert_eq!(failure.view_unfolding, FailureReason::Disabled);
        assert_eq!(failure.left_compose, FailureReason::Disabled);
        assert_eq!(failure.right_compose, FailureReason::Disabled);
    }

    #[test]
    fn left_compose_rescues_cases_right_compose_cannot() {
        // Example 10: R ⊆ S ∪ T with π(S) ⊆ U — right compose fails because
        // R − ... wait, here the blocking constraint for right compose is the
        // anti-monotone occurrence in R − S below; left compose succeeds.
        let constraints = parse_constraints("R - S <= T; project[0](S) <= U").unwrap().into_vec();
        let result =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config()).unwrap();
        assert_eq!(result.step, EliminateStep::LeftCompose);
    }

    #[test]
    fn transitive_closure_example_cannot_be_eliminated() {
        // Paper §1.3: R ⊆ S, S = tc(S), S ⊆ T — S cannot be eliminated.
        let constraints = parse_constraints("R <= S; S = tc(S); S <= T").unwrap().into_vec();
        let failure =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config()).unwrap_err();
        // View unfolding is blocked because the defining equality mentions S
        // on both sides; left and right compose are blocked by the same
        // constraint.
        assert_eq!(failure.view_unfolding, FailureReason::NoDefiningEquality);
        assert_eq!(failure.left_compose, FailureReason::SymbolOnBothSides);
        assert_eq!(failure.right_compose, FailureReason::SymbolOnBothSides);
    }

    #[test]
    fn right_compose_used_when_left_fails() {
        // S ∩ T ⊆ U has no left-normalization rule for ∩, so left compose
        // fails; right compose substitutes the lower bound V for S.
        let constraints = parse_constraints("S & T <= U; V <= S").unwrap().into_vec();
        let failure_free =
            eliminate(&constraints, "S", &sig(), &Registry::standard(), &config()).unwrap();
        assert_eq!(failure_free.step, EliminateStep::RightCompose);
        assert!(failure_free.constraints.iter().all(|c| !c.mentions("S")));
        assert!(failure_free
            .constraints
            .contains(&parse_constraints("V & T <= U").unwrap().into_vec()[0]));
    }
}
