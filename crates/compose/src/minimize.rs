//! Output-mapping simplification.
//!
//! Paper §4: "We found that the output constraints produced by our algorithm
//! are often more verbose than the ones derived manually, so simplification
//! of output mappings is essential. An example of such simplification is
//! detecting and removing implied constraints. Mapping simplification appears
//! to be a problem of independent interest and is out of scope of this
//! paper."
//!
//! This module provides that missing post-processing pass as an extension:
//! *sound* algebraic expression rewrites (identity projections, collapsed
//! projections and selections, idempotent set operations) plus *sound*
//! syntactic removal of implied constraints (duplicates, containments implied
//! by an equality, transitive containment chains, trivially satisfied
//! constraints). Every rewrite preserves constraint-set equivalence exactly,
//! so minimization can always be applied to `COMPOSE` output.

use std::collections::BTreeSet;

use mapcomp_algebra::{Constraint, ConstraintKind, Expr, Pred, Signature};

use crate::registry::Registry;
use crate::simplify::{is_trivial, simplify_expr};

/// Simplify one expression with equivalence-preserving rewrites. In addition
/// to the domain/empty identities of [`crate::simplify`], this collapses:
///
/// * identity projections `π_{0..r-1}(E)` (when `E`'s arity is known from the
///   signature),
/// * stacked projections `π_I(π_J(E))`,
/// * stacked selections `σ_c1(σ_c2(E))`,
/// * selections with a `true` predicate,
/// * idempotent set operations `E ∪ E`, `E ∩ E` and the self-difference
///   `E − E`.
pub fn minimize_expr(expr: &Expr, sig: &Signature, registry: &Registry) -> Expr {
    let mut current = simplify_expr(expr, registry);
    loop {
        let next = simplify_expr(&rewrite(&current, sig, registry), registry);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn rewrite(expr: &Expr, sig: &Signature, registry: &Registry) -> Expr {
    let rebuilt = match expr {
        Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => expr.clone(),
        Expr::Union(a, b) => rewrite(a, sig, registry).union(rewrite(b, sig, registry)),
        Expr::Intersect(a, b) => rewrite(a, sig, registry).intersect(rewrite(b, sig, registry)),
        Expr::Product(a, b) => rewrite(a, sig, registry).product(rewrite(b, sig, registry)),
        Expr::Difference(a, b) => rewrite(a, sig, registry).difference(rewrite(b, sig, registry)),
        Expr::Project(cols, inner) => rewrite(inner, sig, registry).project(cols.clone()),
        Expr::Select(pred, inner) => rewrite(inner, sig, registry).select(pred.clone()),
        Expr::Skolem(f, inner) => rewrite(inner, sig, registry).skolem(f.clone()),
        Expr::Apply(name, args) => {
            Expr::Apply(name.clone(), args.iter().map(|arg| rewrite(arg, sig, registry)).collect())
        }
    };
    rewrite_node(&rebuilt, sig, registry)
}

fn rewrite_node(expr: &Expr, sig: &Signature, registry: &Registry) -> Expr {
    match expr {
        Expr::Project(cols, inner) => {
            // π_I(π_J(E)) = π_{J∘I}(E).
            if let Expr::Project(inner_cols, innermost) = inner.as_ref() {
                let composed: Option<Vec<usize>> =
                    cols.iter().map(|&c| inner_cols.get(c).copied()).collect();
                if let Some(composed) = composed {
                    return Expr::Project(composed, innermost.clone());
                }
            }
            // Identity projection.
            let identity: Vec<usize> = (0..cols.len()).collect();
            if *cols == identity {
                if let Ok(arity) = inner.arity(sig, registry.operators()) {
                    if arity == cols.len() {
                        return inner.as_ref().clone();
                    }
                }
            }
            expr.clone()
        }
        Expr::Select(pred, inner) => {
            if *pred == Pred::True {
                return inner.as_ref().clone();
            }
            // σ_c1(σ_c2(E)) = σ_{c1 ∧ c2}(E).
            if let Expr::Select(inner_pred, innermost) = inner.as_ref() {
                return Expr::Select(inner_pred.clone().and(pred.clone()), innermost.clone());
            }
            expr.clone()
        }
        Expr::Union(a, b) | Expr::Intersect(a, b) if a == b => a.as_ref().clone(),
        Expr::Difference(a, b) if a == b => match a.arity(sig, registry.operators()) {
            Ok(arity) => Expr::empty(arity),
            Err(_) => expr.clone(),
        },
        _ => expr.clone(),
    }
}

/// Is `candidate` implied by the other constraints for purely syntactic,
/// equivalence-preserving reasons?
fn implied_by(candidate: &Constraint, others: &[&Constraint]) -> bool {
    if is_trivial(candidate) {
        return true;
    }
    match candidate.kind {
        ConstraintKind::Containment => {
            // Implied by an equality of the two sides (either orientation).
            let by_equality = others.iter().any(|other| {
                other.kind == ConstraintKind::Equality
                    && ((other.lhs == candidate.lhs && other.rhs == candidate.rhs)
                        || (other.lhs == candidate.rhs && other.rhs == candidate.lhs))
            });
            if by_equality {
                return true;
            }
            // Implied by a transitive chain lhs ⊆ X, X ⊆ rhs (one step).
            others.iter().any(|first| {
                first.lhs == candidate.lhs
                    && others.iter().any(|second| {
                        second.lhs == first.rhs
                            && second.rhs == candidate.rhs
                            && !std::ptr::eq(*first, candidate)
                    })
            })
        }
        ConstraintKind::Equality => false,
    }
}

/// Remove constraints implied by the remaining ones (sound syntactic checks
/// only) and exact duplicates, preserving the original order of survivors.
pub fn remove_implied(constraints: Vec<Constraint>) -> Vec<Constraint> {
    let mut kept: Vec<Constraint> = Vec::new();
    let mut seen: BTreeSet<Constraint> = BTreeSet::new();
    // A containment is also a duplicate of an equality over the same sides.
    for constraint in &constraints {
        // Skip exact duplicates up front.
        if seen.contains(constraint) {
            continue;
        }
        seen.insert(constraint.clone());
        kept.push(constraint.clone());
    }
    // Then drop constraints implied by the rest, one at a time (checking
    // against the current survivor set so that two constraints cannot justify
    // deleting each other).
    let mut index = 0;
    while index < kept.len() {
        let candidate = kept[index].clone();
        let others: Vec<&Constraint> =
            kept.iter().enumerate().filter(|(i, _)| *i != index).map(|(_, c)| c).collect();
        if implied_by(&candidate, &others) {
            kept.remove(index);
        } else {
            index += 1;
        }
    }
    kept
}

/// Minimize a whole mapping: simplify every expression, then remove implied
/// constraints. The result is equivalent to the input constraint set over the
/// same signature.
pub fn minimize_mapping(
    constraints: Vec<Constraint>,
    sig: &Signature,
    registry: &Registry,
) -> Vec<Constraint> {
    let simplified: Vec<Constraint> = constraints
        .into_iter()
        .map(|constraint| Constraint {
            lhs: minimize_expr(&constraint.lhs, sig, registry),
            rhs: minimize_expr(&constraint.rhs, sig, registry),
            kind: constraint.kind,
        })
        .collect();
    remove_implied(simplified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, parse_expr, Signature};

    fn sig() -> Signature {
        Signature::from_arities([("R", 2), ("S", 2), ("T", 2), ("U", 1)])
    }

    fn reg() -> Registry {
        Registry::standard()
    }

    fn minimized(source: &str) -> Expr {
        minimize_expr(&parse_expr(source).unwrap(), &sig(), &reg())
    }

    #[test]
    fn identity_projection_is_removed() {
        assert_eq!(minimized("project[0,1](R)"), Expr::rel("R"));
        // Not the identity: a permutation must stay.
        assert_eq!(minimized("project[1,0](R)"), parse_expr("project[1,0](R)").unwrap());
        // Not the identity: narrowing must stay.
        assert_eq!(minimized("project[0](R)"), parse_expr("project[0](R)").unwrap());
    }

    #[test]
    fn stacked_projections_collapse() {
        assert_eq!(minimized("project[0](project[1,0](R))"), parse_expr("project[1](R)").unwrap());
        // Collapsing composes with identity elimination.
        assert_eq!(minimized("project[0,1](project[0,1](R))"), Expr::rel("R"));
    }

    #[test]
    fn stacked_selections_collapse() {
        let out = minimized("select[#0 = 1](select[#1 = 2](R))");
        match out {
            Expr::Select(pred, inner) => {
                assert_eq!(*inner, Expr::rel("R"));
                assert_eq!(pred.conjuncts().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(minimized("select[true](R)"), Expr::rel("R"));
    }

    #[test]
    fn idempotent_set_operations() {
        assert_eq!(minimized("R + R"), Expr::rel("R"));
        assert_eq!(minimized("R & R"), Expr::rel("R"));
        assert_eq!(minimized("R - R"), Expr::empty(2));
        // Different operands are untouched.
        assert_eq!(minimized("R + S"), parse_expr("R + S").unwrap());
    }

    #[test]
    fn nested_rewrites_reach_fixpoint() {
        // π identity over a collapsed selection over a self-union.
        assert_eq!(minimized("project[0,1](select[true](R + R))"), Expr::rel("R"));
        // Interaction with the domain/empty identities of the base simplifier.
        assert_eq!(minimized("project[0,1]((R - R) + S)"), Expr::rel("S"));
    }

    #[test]
    fn implied_containment_from_equality_is_removed() {
        let constraints = parse_constraints("R = S; R <= S; S <= R; R <= T").unwrap().into_vec();
        let out = remove_implied(constraints);
        assert_eq!(out, parse_constraints("R = S; R <= T").unwrap().into_vec());
    }

    #[test]
    fn transitive_chain_is_removed() {
        let constraints = parse_constraints("R <= S; S <= T; R <= T").unwrap().into_vec();
        let out = remove_implied(constraints);
        assert_eq!(out, parse_constraints("R <= S; S <= T").unwrap().into_vec());
    }

    #[test]
    fn duplicates_and_trivia_are_removed() {
        let constraints =
            parse_constraints("R <= S; R <= S; R <= R; empty^2 <= T; R <= D^2").unwrap().into_vec();
        let out = remove_implied(constraints);
        assert_eq!(out, parse_constraints("R <= S").unwrap().into_vec());
    }

    #[test]
    fn non_implied_constraints_survive() {
        let constraints = parse_constraints("R <= S; S <= R; T <= S").unwrap().into_vec();
        let out = remove_implied(constraints.clone());
        assert_eq!(out, constraints);
    }

    #[test]
    fn minimize_mapping_combines_both_passes() {
        let constraints =
            parse_constraints("project[0,1](R) <= select[true](S); R = S; project[0](U * U) <= U")
                .unwrap()
                .into_vec();
        let out = minimize_mapping(constraints, &sig(), &reg());
        // The first constraint simplifies to R <= S, which the equality
        // implies, so only the equality and the (simplified) third remain.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&parse_constraints("R = S").unwrap().into_vec()[0]));
        assert!(out.iter().all(|c| !c.to_string().contains("true")));
    }

    #[test]
    fn minimization_shrinks_compose_output_for_example_1() {
        // End-to-end: the verbose Example 1 output gets strictly smaller but
        // stays equivalent (spot-checked by the bounded-model checker).
        use crate::compose::{compose, ComposeConfig};
        use crate::verify::{check_equivalence, VerifyConfig};
        let doc = mapcomp_algebra::parse_document(
            r"
            schema sigma1 { Movies/3; }
            schema sigma2 { Good/2; }
            schema sigma3 { Names/2; }
            mapping m12 : sigma1 -> sigma2 { project[0,1](Movies) <= Good; }
            mapping m23 : sigma2 -> sigma3 { project[0,1](Good) <= Names; }
            ",
        )
        .unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let registry = reg();
        let result = compose(&task, &registry, &ComposeConfig::default()).unwrap();
        let full = task.full_signature().unwrap();
        let before: usize = result.constraints.iter().map(Constraint::op_count).sum();
        let minimized = minimize_mapping(result.constraints.clone().into_vec(), &full, &registry);
        let after: usize = minimized.iter().map(Constraint::op_count).sum();
        assert!(after <= before, "minimization must not grow the mapping");

        let reduced_sig = Signature::from_arities([("Movies", 3), ("Names", 2)]);
        let report = check_equivalence(
            &result.constraints.clone().into_vec(),
            &full,
            &minimized,
            &reduced_sig,
            &registry,
            &VerifyConfig {
                soundness_samples: 40,
                completeness_samples: 5,
                ..VerifyConfig::default()
            },
        );
        report.assert_equivalent();
    }
}
