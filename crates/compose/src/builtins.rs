//! Extended operators shipped with the composition component.
//!
//! The paper stresses that the algorithm handles "outerjoin, set difference,
//! and anti-semijoin" through its monotonicity machinery and that it
//! "covers constraints expressed using arbitrary monotone relational
//! operators". This module registers four such operators as user-defined
//! operators, demonstrating the extensibility hooks:
//!
//! * `ljoin(R, S)` — left outer join on the first columns (`R.0 = S.0`);
//!   monotone in `R`, not in `S`; unmatched `R` tuples are padded with nulls.
//! * `semijoin(R, S)` — `R ⋉ S` on the first columns; monotone in both.
//! * `antijoin(R, S)` — anti-semijoin on the first columns; monotone in `R`,
//!   anti-monotone in `S`.
//! * `tc(R)` — transitive closure of a binary relation; monotone. This is the
//!   operator of the paper's recursive example (`R ⊆ S, S = tc(S), S ⊆ T`)
//!   showing a symbol that cannot be eliminated.

use std::sync::Arc;

use mapcomp_algebra::{Expr, OperatorDef, Relation, Value};

use crate::registry::{Monotonicity, OperatorRules, Registry};

/// Register every built-in extended operator into a registry.
pub fn register_all(registry: &mut Registry) {
    register_left_outer_join(registry);
    register_semijoin(registry);
    register_antijoin(registry);
    register_transitive_closure(registry);
}

fn join_on_first(rels: &[Relation]) -> Vec<(Vec<Value>, Vec<Vec<Value>>)> {
    // Group of (left tuple, matching right tuples) pairs.
    let left = &rels[0];
    let right = &rels[1];
    left.iter()
        .map(|lt| {
            let matches: Vec<Vec<Value>> = right
                .iter()
                .filter(|rt| !lt.is_empty() && !rt.is_empty() && lt[0] == rt[0])
                .cloned()
                .collect();
            (lt.clone(), matches)
        })
        .collect()
}

/// Register `ljoin`.
pub fn register_left_outer_join(registry: &mut Registry) {
    registry.register(
        OperatorDef::new("ljoin", 2, |arities| match arities {
            [left, right] if *left >= 1 && *right >= 1 => Some(left + right - 1),
            _ => None,
        })
        .with_eval(|rels, arities, sink| {
            let right_arity = arities[1];
            for (lt, matches) in join_on_first(rels) {
                if matches.is_empty() {
                    let mut padded = lt.clone();
                    padded.extend(std::iter::repeat_n(Value::Null, right_arity.saturating_sub(1)));
                    sink.push(padded)?;
                } else {
                    for rt in matches {
                        let mut joined = lt.clone();
                        joined.extend(rt.into_iter().skip(1));
                        sink.push(joined)?;
                    }
                }
            }
            Ok(())
        }),
    );
    registry.set_rules(
        "ljoin",
        OperatorRules {
            // Monotone in the first argument, unknown in the second (paper §1.3).
            monotonicity: Some(Arc::new(|args: &[Monotonicity]| {
                if args.get(1) == Some(&Monotonicity::Independent) {
                    args[0]
                } else {
                    Monotonicity::Unknown
                }
            })),
            simplify: Some(Arc::new(|args: &[Expr]| {
                // ljoin(∅, S) = ∅ of the output arity; the caller knows the
                // arity, so return an empty of arity 0 only when it can be
                // recomputed — here we simply propagate the left emptiness by
                // returning the empty expression unchanged in arity-free form.
                match args {
                    [Expr::Empty(_), _] => None, // arity of output unknown here; leave as-is
                    _ => None,
                }
            })),
            ..OperatorRules::default()
        },
    );
}

/// Register `semijoin`.
pub fn register_semijoin(registry: &mut Registry) {
    registry.register(
        OperatorDef::new("semijoin", 2, |arities| match arities {
            [left, right] if *left >= 1 && *right >= 1 => Some(*left),
            _ => None,
        })
        .with_eval(|rels, _, sink| {
            for (lt, matches) in join_on_first(rels) {
                if !matches.is_empty() {
                    sink.push(lt)?;
                }
            }
            Ok(())
        }),
    );
    registry.set_rules(
        "semijoin",
        OperatorRules {
            monotonicity: Some(Arc::new(|args: &[Monotonicity]| args[0].combine(args[1]))),
            simplify: Some(Arc::new(|args: &[Expr]| match args {
                [left, Expr::Empty(_)] => Some(Expr::empty(guess_arity(left)?)),
                [Expr::Empty(r), _] => Some(Expr::empty(*r)),
                [left, Expr::Domain(_)] => Some(left.clone()),
                _ => None,
            })),
            ..OperatorRules::default()
        },
    );
}

/// Register `antijoin`.
pub fn register_antijoin(registry: &mut Registry) {
    registry.register(
        OperatorDef::new("antijoin", 2, |arities| match arities {
            [left, right] if *left >= 1 && *right >= 1 => Some(*left),
            _ => None,
        })
        .with_eval(|rels, _, sink| {
            for (lt, matches) in join_on_first(rels) {
                if matches.is_empty() {
                    sink.push(lt)?;
                }
            }
            Ok(())
        }),
    );
    registry.set_rules(
        "antijoin",
        OperatorRules {
            monotonicity: Some(Arc::new(|args: &[Monotonicity]| args[0].combine(args[1].flip()))),
            simplify: Some(Arc::new(|args: &[Expr]| match args {
                [left, Expr::Empty(_)] => Some(left.clone()),
                [Expr::Empty(r), _] => Some(Expr::empty(*r)),
                [left, Expr::Domain(_)] => Some(Expr::empty(guess_arity(left)?)),
                _ => None,
            })),
            ..OperatorRules::default()
        },
    );
}

/// Register `tc` (transitive closure of a binary relation).
pub fn register_transitive_closure(registry: &mut Registry) {
    registry.register(
        OperatorDef::new("tc", 1, |arities| (arities == [2]).then_some(2)).with_eval(
            |rels, _, sink| {
                // Emit through the sink from the start so the (potentially
                // quadratic) closure is charged against the tuple budget row
                // by row rather than after full materialisation.
                for edge in rels[0].iter() {
                    sink.push(edge.clone())?;
                }
                loop {
                    let mut additions = Vec::new();
                    let closure = sink.relation();
                    for a in closure.iter() {
                        for b in closure.iter() {
                            if a.len() == 2 && b.len() == 2 && a[1] == b[0] {
                                let derived = vec![a[0].clone(), b[1].clone()];
                                if !closure.contains(&derived) {
                                    additions.push(derived);
                                }
                            }
                        }
                    }
                    let mut grew = false;
                    for derived in additions {
                        grew |= sink.push(derived)?;
                    }
                    if !grew {
                        return Ok(());
                    }
                }
            },
        ),
    );
    registry.set_rules(
        "tc",
        OperatorRules {
            monotonicity: Some(Arc::new(|args: &[Monotonicity]| args[0])),
            simplify: Some(Arc::new(|args: &[Expr]| match args {
                [Expr::Empty(r)] => Some(Expr::empty(*r)),
                _ => None,
            })),
            ..OperatorRules::default()
        },
    );
}

/// Best-effort syntactic arity guess used only by simplification rules, where
/// a wrong `None` merely skips an optional rewrite.
fn guess_arity(expr: &Expr) -> Option<usize> {
    match expr {
        Expr::Domain(r) | Expr::Empty(r) => Some(*r),
        Expr::Project(cols, _) => Some(cols.len()),
        Expr::Skolem(_, inner) => guess_arity(inner).map(|a| a + 1),
        Expr::Select(_, inner) => guess_arity(inner),
        Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Difference(a, b) => {
            guess_arity(a).or_else(|| guess_arity(b))
        }
        Expr::Product(a, b) => Some(guess_arity(a)? + guess_arity(b)?),
        Expr::Rel(_) | Expr::Apply(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{eval, tuple, Instance, Signature};

    fn setup() -> (Registry, Signature, Instance) {
        let registry = Registry::standard();
        let sig = Signature::from_arities([("R", 2), ("S", 2)]);
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64, 10]));
        inst.insert("R", tuple([2i64, 20]));
        inst.insert("R", tuple([3i64, 30]));
        inst.insert("S", tuple([1i64, 100]));
        inst.insert("S", tuple([2i64, 200]));
        inst.insert("S", tuple([2i64, 201]));
        (registry, sig, inst)
    }

    #[test]
    fn left_outer_join_pads_with_null() {
        let (registry, sig, inst) = setup();
        let e = Expr::apply("ljoin", vec![Expr::rel("R"), Expr::rel("S")]);
        let out = eval(&e, &sig, registry.operators(), &inst).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.contains(&tuple([1i64, 10, 100])));
        assert!(out.contains(&vec![Value::Int(3), Value::Int(30), Value::Null]));
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let (registry, sig, inst) = setup();
        let semi = eval(
            &Expr::apply("semijoin", vec![Expr::rel("R"), Expr::rel("S")]),
            &sig,
            registry.operators(),
            &inst,
        )
        .unwrap();
        let anti = eval(
            &Expr::apply("antijoin", vec![Expr::rel("R"), Expr::rel("S")]),
            &sig,
            registry.operators(),
            &inst,
        )
        .unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert!(anti.contains(&tuple([3i64, 30])));
        let all = semi.union(&anti);
        assert_eq!(all, inst.get("R"));
    }

    #[test]
    fn transitive_closure() {
        let registry = Registry::standard();
        let sig = Signature::from_arities([("E", 2)]);
        let mut inst = Instance::new();
        inst.insert("E", tuple([1i64, 2]));
        inst.insert("E", tuple([2i64, 3]));
        inst.insert("E", tuple([3i64, 4]));
        let out = eval(&Expr::apply("tc", vec![Expr::rel("E")]), &sig, registry.operators(), &inst)
            .unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.contains(&tuple([1i64, 4])));
    }

    #[test]
    fn arities_are_enforced() {
        let registry = Registry::standard();
        assert_eq!(registry.operators().arity("ljoin", &[2, 3]).unwrap(), 4);
        assert_eq!(registry.operators().arity("semijoin", &[2, 5]).unwrap(), 2);
        assert_eq!(registry.operators().arity("antijoin", &[3, 2]).unwrap(), 3);
        assert_eq!(registry.operators().arity("tc", &[2]).unwrap(), 2);
        assert!(registry.operators().arity("tc", &[3]).is_err());
        assert!(registry.operators().arity("ljoin", &[2]).is_err());
    }

    #[test]
    fn simplify_rules_fire() {
        let registry = Registry::standard();
        let rules = registry.rules("semijoin").unwrap();
        let simplify = rules.simplify.as_ref().unwrap();
        assert_eq!(
            simplify(&[Expr::rel("R").project(vec![0, 1]), Expr::empty(2)]),
            Some(Expr::empty(2))
        );
        assert_eq!(simplify(&[Expr::domain(2), Expr::domain(3)]), Some(Expr::domain(2)));
        let anti_rules = registry.rules("antijoin").unwrap();
        let anti_simplify = anti_rules.simplify.as_ref().unwrap();
        assert_eq!(anti_simplify(&[Expr::domain(2), Expr::empty(2)]), Some(Expr::domain(2)));
        let tc_rules = registry.rules("tc").unwrap();
        assert_eq!((tc_rules.simplify.as_ref().unwrap())(&[Expr::empty(2)]), Some(Expr::empty(2)));
    }

    #[test]
    fn guess_arity_helper() {
        assert_eq!(guess_arity(&Expr::domain(3)), Some(3));
        assert_eq!(guess_arity(&Expr::rel("R").project(vec![0])), Some(1));
        assert_eq!(guess_arity(&Expr::rel("R")), None);
        assert_eq!(guess_arity(&Expr::empty(1).product(Expr::domain(2))), Some(3));
    }
}
