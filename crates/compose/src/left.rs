//! Step 2 of ELIMINATE: left compose (paper §3.4).
//!
//! Left compose isolates the symbol `S` on the *left* of a single constraint
//! `S ⊆ E1` (left normalization, §3.4.1), then replaces `S` by `E1` inside
//! every right-hand side that is monotone in `S` (basic left compose,
//! §3.4.2), and finally eliminates the active-domain relation `D` that
//! normalization may have introduced (§3.4.3).

use mapcomp_algebra::{Constraint, Expr, Signature};

use crate::monotone::is_monotone;
use crate::outcome::FailureReason;
use crate::registry::Registry;
use crate::simplify::simplify_constraints;

/// Attempt to eliminate `sym` by left composition.
pub fn left_compose(
    constraints: &[Constraint],
    sym: &str,
    sig: &Signature,
    registry: &Registry,
) -> Result<Vec<Constraint>, FailureReason> {
    // "If S appears on both sides of some constraint in Σ1, we exit."
    if constraints.iter().any(|c| c.lhs.mentions(sym) && c.rhs.mentions(sym)) {
        return Err(FailureReason::SymbolOnBothSides);
    }

    // Convert every equality constraint that contains S into two containments.
    let mut work: Vec<Constraint> = Vec::new();
    for constraint in constraints {
        if constraint.mentions(sym) {
            work.extend(constraint.as_containments());
        } else {
            work.push(constraint.clone());
        }
    }

    // Check right-monotonicity in S: every expression in which S appears to
    // the right of a containment must be monotone in S.
    for constraint in &work {
        if constraint.rhs.mentions(sym) && !is_monotone(&constraint.rhs, sym, registry) {
            return Err(FailureReason::NotRightMonotone);
        }
    }

    // Left-normalize for S.
    let (definition, mut others) = left_normalize(work, sym, sig, registry)?;

    // Basic left compose: substitute the upper bound for S in right-hand sides.
    for constraint in &mut others {
        if constraint.lhs.mentions(sym) {
            // Normalization moved every lhs occurrence into the single
            // collapsed constraint, so this should not happen.
            return Err(FailureReason::SymbolRemains);
        }
        if constraint.rhs.mentions(sym) {
            if !is_monotone(&constraint.rhs, sym, registry) {
                return Err(FailureReason::NotRightMonotone);
            }
            constraint.rhs = constraint.rhs.substitute(sym, &definition);
        }
    }

    // Eliminate the domain relation to the extent possible and drop
    // constraints that have become trivial.
    Ok(simplify_constraints(others, registry))
}

/// Left normalization (§3.4.1): bring the constraints into a form where `sym`
/// appears on the left of exactly one constraint `S ⊆ E1`. Returns `E1` and
/// the remaining constraints.
pub fn left_normalize(
    mut work: Vec<Constraint>,
    sym: &str,
    sig: &Signature,
    registry: &Registry,
) -> Result<(Expr, Vec<Constraint>), FailureReason> {
    let sym_expr = Expr::Rel(sym.to_string());

    loop {
        // Find a constraint with S on the lhs inside a complex expression.
        let position = work.iter().position(|c| c.lhs.mentions(sym) && c.lhs != sym_expr);
        let Some(index) = position else { break };
        let constraint = work.remove(index);
        let rewritten = left_rewrite_step(&constraint, sym, sig, registry)?;
        work.extend(rewritten);
    }

    // Collapse every `S ⊆ E_i` into a single `S ⊆ E_1 ∩ ... ∩ E_n`.
    let mut bounds: Vec<Expr> = Vec::new();
    let mut others: Vec<Constraint> = Vec::new();
    for constraint in work {
        if constraint.lhs == sym_expr {
            bounds.push(constraint.rhs);
        } else {
            others.push(constraint);
        }
    }
    let definition = match bounds.len() {
        0 => {
            // "If S does not appear on the lhs of any expression, we add the
            // constraint S ⊆ D^r where r is the arity of S."
            let arity = sig.arity(sym).map_err(|_| {
                FailureReason::LeftNormalizeFailed(format!("unknown arity of {sym}"))
            })?;
            Expr::domain(arity)
        }
        _ => {
            let mut iter = bounds.into_iter();
            let first = iter.next().expect("non-empty");
            iter.fold(first, mapcomp_algebra::Expr::intersect)
        }
    };
    Ok((definition, others))
}

/// One left-normalization rewriting step for a constraint whose lhs contains
/// `sym` in a complex expression. Implements the identities of §3.4.1:
///
/// ```text
/// ∪ : E1 ∪ E2 ⊆ E3  ↔  E1 ⊆ E3,  E2 ⊆ E3
/// − : E1 − E2 ⊆ E3  ↔  E1 ⊆ E2 ∪ E3
/// π : π_I(E1) ⊆ E2  ↔  E1 ⊆ π_ρ(E2 × D^k)
/// σ : σ_c(E1) ⊆ E2  ↔  E1 ⊆ E2 ∪ (D^r − σ_c(D^r))
/// ```
///
/// There is no identity for ∩ or × on the left (paper Example 6 shows the
/// obvious candidate for × is unsound), so those cases fail.
fn left_rewrite_step(
    constraint: &Constraint,
    sym: &str,
    sig: &Signature,
    registry: &Registry,
) -> Result<Vec<Constraint>, FailureReason> {
    let rhs = constraint.rhs.clone();
    match &constraint.lhs {
        Expr::Union(a, b) => Ok(vec![
            Constraint::containment(a.as_ref().clone(), rhs.clone()),
            Constraint::containment(b.as_ref().clone(), rhs),
        ]),
        Expr::Difference(a, b) => {
            Ok(vec![Constraint::containment(a.as_ref().clone(), b.as_ref().clone().union(rhs))])
        }
        Expr::Project(cols, inner) => {
            let inner_arity = inner.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::LeftNormalizeFailed(format!("cannot type projection operand: {e}"))
            })?;
            let mut seen = std::collections::BTreeSet::new();
            if !cols.iter().all(|c| seen.insert(*c)) {
                return Err(FailureReason::LeftNormalizeFailed(
                    "projection with duplicate columns".into(),
                ));
            }
            // π_I(E1) ⊆ E2  becomes  E1 ⊆ π_ρ(E2 × D^k): position j of E1 maps
            // to the matching E2 column when j ∈ I, and to a fresh D column
            // otherwise.
            let k = inner_arity - cols.len();
            let padded = if k == 0 { rhs } else { rhs.product(Expr::domain(k)) };
            let mut permutation = Vec::with_capacity(inner_arity);
            let mut next_pad = cols.len();
            for j in 0..inner_arity {
                if let Some(i) = cols.iter().position(|&c| c == j) {
                    permutation.push(i);
                } else {
                    permutation.push(next_pad);
                    next_pad += 1;
                }
            }
            Ok(vec![Constraint::containment(inner.as_ref().clone(), padded.project(permutation))])
        }
        Expr::Select(pred, inner) => {
            let arity = inner.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::LeftNormalizeFailed(format!("cannot type selection operand: {e}"))
            })?;
            let complement =
                Expr::domain(arity).difference(Expr::domain(arity).select(pred.clone()));
            Ok(vec![Constraint::containment(inner.as_ref().clone(), rhs.union(complement))])
        }
        Expr::Apply(name, args) => {
            let rule =
                registry.rules(name).and_then(|r| r.left_normalize.as_ref()).ok_or_else(|| {
                    FailureReason::LeftNormalizeFailed(format!(
                        "no left-normalization rule for operator `{name}`"
                    ))
                })?;
            rule(args, &rhs).ok_or_else(|| {
                FailureReason::LeftNormalizeFailed(format!(
                    "left-normalization rule for `{name}` did not apply"
                ))
            })
        }
        Expr::Intersect(..) => {
            Err(FailureReason::LeftNormalizeFailed("no left rule for intersection".into()))
        }
        Expr::Product(..) => {
            Err(FailureReason::LeftNormalizeFailed("no left rule for cross product".into()))
        }
        Expr::Skolem(..) => {
            Err(FailureReason::LeftNormalizeFailed("Skolem function on the left".into()))
        }
        Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => Err(FailureReason::LeftNormalizeFailed(
            format!("unexpected simple lhs while normalizing {sym}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraint, parse_constraints};

    fn sig() -> Signature {
        Signature::from_arities([("R", 2), ("S", 2), ("T", 2), ("U", 2), ("V", 2)])
    }

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn example_7_left_normalization() {
        // R − S ⊆ T,  π(S) ⊆ U  with S to eliminate: normalization produces
        // R ⊆ S ∪ T and S ⊆ (U × D^k) permuted.
        let constraints = parse_constraints("R - S <= T; project[0,1](S) <= U").unwrap().into_vec();
        let (definition, others) = left_normalize(constraints, "S", &sig(), &reg()).unwrap();
        // S is binary and fully projected, so no padding is necessary and the
        // upper bound is a permutation of U.
        assert_eq!(definition, Expr::rel("U").project(vec![0, 1]));
        assert_eq!(others, vec![parse_constraint("R <= S + T").unwrap()]);
    }

    #[test]
    fn example_7_and_10_left_compose() {
        let constraints = parse_constraints("R - S <= T; project[0,1](S) <= U").unwrap().into_vec();
        let result = left_compose(&constraints, "S", &sig(), &reg()).unwrap();
        // Example 10 (modulo the harmless identity projection):
        // R ⊆ π(U) ∪ T.
        assert_eq!(result.len(), 1);
        assert_eq!(result[0], parse_constraint("R <= project[0,1](U) + T").unwrap());
        assert!(result.iter().all(|c| !c.mentions("S")));
    }

    #[test]
    fn example_8_fails_on_intersection() {
        let constraints = parse_constraints("R & S <= T; project[0,1](S) <= U").unwrap().into_vec();
        let err = left_compose(&constraints, "S", &sig(), &reg()).unwrap_err();
        assert!(matches!(err, FailureReason::LeftNormalizeFailed(_)));
    }

    #[test]
    fn examples_9_11_12_trivial_bound_and_domain_elimination() {
        // R ∩ T ⊆ S,  U ⊆ π(S): S never appears alone on the left, so the
        // trivial bound S ⊆ D^r is used, and afterwards both constraints
        // reduce to D-only right-hand sides and disappear (Example 12).
        let constraints = parse_constraints("R & T <= S; U <= project[0,1](S)").unwrap().into_vec();
        let result = left_compose(&constraints, "S", &sig(), &reg()).unwrap();
        assert!(result.is_empty(), "expected all constraints to be deleted, got {result:?}");
    }

    #[test]
    fn selection_rule_keeps_equivalence_shape() {
        // σ_c(S) ⊆ T: the rewrite moves S alone to the left.
        let constraints = parse_constraints("select[#0 = 5](S) <= T; R <= S").unwrap().into_vec();
        let (definition, others) = left_normalize(constraints, "S", &sig(), &reg()).unwrap();
        assert!(definition.mentions("T"));
        assert!(definition.mentions_domain());
        assert_eq!(others, vec![parse_constraint("R <= S").unwrap()]);
    }

    #[test]
    fn fails_when_symbol_on_both_sides() {
        let constraints = parse_constraints("S & R <= S * T").unwrap().into_vec();
        assert_eq!(
            left_compose(&constraints, "S", &sig(), &reg()),
            Err(FailureReason::SymbolOnBothSides)
        );
    }

    #[test]
    fn fails_when_rhs_not_monotone() {
        // T2 ⊆ T3 − σc(S): rhs anti-monotone in S.
        let constraints = parse_constraints("R <= T - S; S <= U").unwrap().into_vec();
        assert_eq!(
            left_compose(&constraints, "S", &sig(), &reg()),
            Err(FailureReason::NotRightMonotone)
        );
    }

    #[test]
    fn equalities_are_split_before_normalizing() {
        // S = U is an equality: both directions are used, S is eliminated and
        // the downstream constraint references U.
        let constraints = parse_constraints("S = U; R <= S + T").unwrap().into_vec();
        let result = left_compose(&constraints, "S", &sig(), &reg()).unwrap();
        assert!(result.iter().all(|c| !c.mentions("S")));
        assert!(result.contains(&parse_constraint("R <= U + T").unwrap()));
        // The other direction U ⊆ S collapses into the bound and disappears
        // as part of the definition; only non-S constraints remain.
        assert!(result.iter().all(|c| !c.mentions("S")));
    }

    #[test]
    fn union_on_the_left_splits() {
        let constraints = parse_constraints("S + R <= T; V <= S").unwrap().into_vec();
        let result = left_compose(&constraints, "S", &sig(), &reg()).unwrap();
        // S ⊆ T (from the split), R ⊆ T stays, V ⊆ S becomes V ⊆ T.
        assert!(result.contains(&parse_constraint("R <= T").unwrap()));
        assert!(result.contains(&parse_constraint("V <= T").unwrap()));
        assert!(result.iter().all(|c| !c.mentions("S")));
    }

    #[test]
    fn projection_with_duplicate_columns_fails() {
        let constraints = parse_constraints("project[0,0](S) <= R; T <= S").unwrap().into_vec();
        let err = left_compose(&constraints, "S", &sig(), &reg()).unwrap_err();
        assert!(matches!(err, FailureReason::LeftNormalizeFailed(_)));
    }

    #[test]
    fn partial_projection_pads_with_domain() {
        // π_0(S) ⊆ U' where U' is unary: S ⊆ π_ρ(U' × D).
        let sig = Signature::from_arities([("S", 2), ("W", 1), ("R", 2)]);
        let constraints = parse_constraints("project[0](S) <= W; R <= S").unwrap().into_vec();
        let (definition, _) = left_normalize(constraints, "S", &sig, &reg()).unwrap();
        assert_eq!(definition, Expr::rel("W").product(Expr::domain(1)).project(vec![0, 1]));
    }
}
