//! Bounded-model equivalence checking.
//!
//! The correctness contract of composition (paper §2) is that the output
//! constraints Σ' over the reduced signature σ' are *equivalent* to the input
//! constraints Σ over σ:
//!
//! * **soundness** — every database over σ satisfying Σ, restricted to σ',
//!   satisfies Σ';
//! * **completeness** — every database over σ' satisfying Σ' can be extended
//!   with relations for σ − σ' so that Σ holds.
//!
//! Proving this in general is undecidable, but it can be *spot-checked* over
//! small domains: this module samples small instances deterministically (a
//! seeded linear-congruential generator, so no external dependency and fully
//! reproducible failures) and reports counterexamples. The test suites of the
//! composition and evolution crates use it to validate every step of the
//! algorithm end to end.

use std::collections::BTreeSet;

use mapcomp_algebra::{Constraint, ConstraintSet, Instance, Relation, Signature, Tuple, Value};

use crate::registry::Registry;

/// Configuration of the bounded-model check.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Values used to populate random instances.
    pub domain: Vec<Value>,
    /// How many random instances to try for the soundness direction.
    pub soundness_samples: usize,
    /// How many random instances to try for the completeness direction.
    pub completeness_samples: usize,
    /// Maximum number of candidate extensions to enumerate per instance
    /// before giving up on that sample (the search is exponential).
    pub max_extensions: usize,
    /// Maximum tuples generated per relation.
    pub max_tuples_per_relation: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            domain: vec![Value::Int(1), Value::Int(2), Value::Int(5)],
            soundness_samples: 200,
            completeness_samples: 50,
            max_extensions: 4096,
            max_tuples_per_relation: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of a bounded-model equivalence check.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceReport {
    /// Instances satisfying the original constraints that were checked for
    /// soundness.
    pub soundness_checked: usize,
    /// Soundness counterexamples found.
    pub soundness_violations: Vec<Instance>,
    /// Instances satisfying the reduced constraints that were checked for
    /// completeness.
    pub completeness_checked: usize,
    /// Completeness counterexamples found (no extension within the budget).
    pub completeness_violations: Vec<Instance>,
    /// Completeness samples skipped because the extension space exceeded the
    /// budget.
    pub completeness_skipped: usize,
}

impl EquivalenceReport {
    /// No violations were found in either direction.
    pub fn is_equivalent(&self) -> bool {
        self.soundness_violations.is_empty() && self.completeness_violations.is_empty()
    }

    /// Panic with a readable message if a violation was found. Intended for
    /// use inside tests.
    pub fn assert_equivalent(&self) {
        if let Some(witness) = self.soundness_violations.first() {
            panic!("soundness violated by instance:\n{witness}");
        }
        if let Some(witness) = self.completeness_violations.first() {
            panic!("completeness violated by instance:\n{witness}");
        }
    }
}

/// Deterministic linear-congruential generator (Numerical Recipes constants);
/// good enough for sampling test instances and dependency-free.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.state ^ (self.state >> 31)
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Check equivalence of `original` (over `original_sig`) and `reduced` (over
/// the sub-signature `reduced_sig`) on randomly sampled bounded models.
pub fn check_equivalence(
    original: &[Constraint],
    original_sig: &Signature,
    reduced: &[Constraint],
    reduced_sig: &Signature,
    registry: &Registry,
    config: &VerifyConfig,
) -> EquivalenceReport {
    let ops = registry.operators();
    let original_set = ConstraintSet::from_constraints(original.to_vec());
    let reduced_set = ConstraintSet::from_constraints(reduced.to_vec());
    let mut rng = Lcg::new(config.seed);
    let mut report = EquivalenceReport::default();

    // Soundness direction.
    let mut attempts = 0usize;
    while report.soundness_checked < config.soundness_samples
        && attempts < config.soundness_samples * 20
    {
        attempts += 1;
        let instance = random_instance(original_sig, config, &mut rng);
        let satisfies_original =
            original_set.satisfied_by(original_sig, ops, &instance).unwrap_or(false);
        if !satisfies_original {
            continue;
        }
        report.soundness_checked += 1;
        let restricted = instance.restrict(reduced_sig);
        let satisfies_reduced =
            reduced_set.satisfied_by(original_sig, ops, &restricted).unwrap_or(false);
        if !satisfies_reduced {
            report.soundness_violations.push(instance);
        }
    }

    // Completeness direction.
    let removed: Vec<String> =
        original_sig.names().into_iter().filter(|name| !reduced_sig.contains(name)).collect();
    let mut attempts = 0usize;
    while report.completeness_checked < config.completeness_samples
        && attempts < config.completeness_samples * 20
    {
        attempts += 1;
        let instance = random_instance(reduced_sig, config, &mut rng);
        let satisfies_reduced =
            reduced_set.satisfied_by(original_sig, ops, &instance).unwrap_or(false);
        if !satisfies_reduced {
            continue;
        }
        report.completeness_checked += 1;
        match find_extension(&instance, &removed, original_sig, &original_set, registry, config) {
            Some(true) => {}
            Some(false) => report.completeness_violations.push(instance),
            None => {
                report.completeness_skipped += 1;
                report.completeness_checked -= 1;
            }
        }
    }

    report
}

/// Sample a random instance of a signature.
fn random_instance(sig: &Signature, config: &VerifyConfig, rng: &mut Lcg) -> Instance {
    let mut instance = Instance::new();
    for (name, info) in sig.iter() {
        let count = rng.below(config.max_tuples_per_relation + 1);
        let mut relation = Relation::new();
        for _ in 0..count {
            let tuple: Tuple = (0..info.arity)
                .map(|_| config.domain[rng.below(config.domain.len().max(1))].clone())
                .collect();
            relation.insert(tuple);
        }
        instance.set(name.to_string(), relation);
    }
    instance
}

/// Search for an extension of `instance` over the removed symbols satisfying
/// the original constraints. Returns `Some(true)` if one was found,
/// `Some(false)` if the whole space was searched without success, and `None`
/// if the space exceeded the configured budget.
fn find_extension(
    instance: &Instance,
    removed: &[String],
    original_sig: &Signature,
    original: &ConstraintSet,
    registry: &Registry,
    config: &VerifyConfig,
) -> Option<bool> {
    // "by adding new relations in σ − σ′ (not limited to the domain of A′)":
    // a complete search over an unbounded domain is impossible, so the check
    // uses the instance's active domain plus the generator domain. This keeps
    // the check sound for refutation on the sampled models in practice.
    let mut domain: BTreeSet<Value> = instance.active_domain();
    domain.extend(config.domain.iter().cloned());
    let domain: Vec<Value> = domain.into_iter().collect();

    // Enumerate the candidate tuple space for each removed relation.
    let mut spaces: Vec<(String, Vec<Tuple>)> = Vec::new();
    let mut total: u128 = 1;
    for name in removed {
        let arity = original_sig.arity(name).ok()?;
        let tuples = all_tuples(&domain, arity);
        total = total.saturating_mul(1u128 << tuples.len().min(100));
        spaces.push((name.clone(), tuples));
    }
    if total > config.max_extensions as u128 {
        return None;
    }

    let ops = registry.operators();
    let mut assignment: Vec<u64> = vec![0; spaces.len()];
    loop {
        // Materialize the candidate extension.
        let mut extended = instance.clone();
        for ((name, tuples), mask) in spaces.iter().zip(&assignment) {
            let mut relation = Relation::new();
            for (i, tuple) in tuples.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    relation.insert(tuple.clone());
                }
            }
            extended.set(name.clone(), relation);
        }
        if original.satisfied_by(original_sig, ops, &extended).unwrap_or(false) {
            return Some(true);
        }
        // Advance the multi-radix counter over subsets.
        let mut carry = true;
        for ((_, tuples), slot) in spaces.iter().zip(assignment.iter_mut()) {
            if !carry {
                break;
            }
            *slot += 1;
            if *slot == 1 << tuples.len() {
                *slot = 0;
            } else {
                carry = false;
            }
        }
        if carry {
            return Some(false);
        }
    }
}

/// All tuples of the given arity over a domain.
fn all_tuples(domain: &[Value], arity: usize) -> Vec<Tuple> {
    let mut tuples: Vec<Tuple> = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::new();
        for t in &tuples {
            for v in domain {
                let mut extended = t.clone();
                extended.push(v.clone());
                next.push(extended);
            }
        }
        tuples = next;
    }
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    fn small_config() -> VerifyConfig {
        VerifyConfig {
            domain: vec![Value::Int(1), Value::Int(2)],
            soundness_samples: 60,
            completeness_samples: 20,
            max_extensions: 1 << 16,
            max_tuples_per_relation: 2,
            seed: 7,
        }
    }

    #[test]
    fn example_3_is_equivalent() {
        // {R ⊆ S, S ⊆ T} over {R,S,T} is equivalent to {R ⊆ T} over {R,T}.
        let original_sig = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let reduced_sig = Signature::from_arities([("R", 1), ("T", 1)]);
        let original = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        let reduced = parse_constraints("R <= T").unwrap().into_vec();
        let report = check_equivalence(
            &original,
            &original_sig,
            &reduced,
            &reduced_sig,
            &Registry::standard(),
            &small_config(),
        );
        assert!(report.soundness_checked > 0);
        assert!(report.completeness_checked > 0);
        report.assert_equivalent();
    }

    #[test]
    fn wrong_reduction_is_detected_as_unsound() {
        // Claiming T ⊆ R is not implied by {R ⊆ S, S ⊆ T}.
        let original_sig = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let reduced_sig = Signature::from_arities([("R", 1), ("T", 1)]);
        let original = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        let wrong = parse_constraints("T <= R").unwrap().into_vec();
        let report = check_equivalence(
            &original,
            &original_sig,
            &wrong,
            &reduced_sig,
            &Registry::standard(),
            &small_config(),
        );
        assert!(!report.soundness_violations.is_empty());
        assert!(!report.is_equivalent());
    }

    #[test]
    fn dropping_constraints_is_detected_as_incomplete() {
        // The original forces R = ∅ (R ⊆ S and S ⊆ ∅ via S ⊆ T, T = ∅ is not
        // expressible here, so instead): original {R ⊆ S, S ⊆ empty} reduced
        // to the empty set over {R}: every R should be extendable, but R ⊆ S
        // ⊆ ∅ forces R = ∅, so completeness fails for nonempty R.
        let original_sig = Signature::from_arities([("R", 1), ("S", 1)]);
        let reduced_sig = Signature::from_arities([("R", 1)]);
        let original = parse_constraints("R <= S; S <= empty^1").unwrap().into_vec();
        let reduced: Vec<Constraint> = Vec::new();
        let report = check_equivalence(
            &original,
            &original_sig,
            &reduced,
            &reduced_sig,
            &Registry::standard(),
            &small_config(),
        );
        assert!(!report.completeness_violations.is_empty());
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..100 {
            assert!(c.below(7) < 7);
        }
    }

    #[test]
    fn all_tuples_enumerates_the_cube() {
        let domain = vec![Value::Int(0), Value::Int(1)];
        assert_eq!(all_tuples(&domain, 0).len(), 1);
        assert_eq!(all_tuples(&domain, 1).len(), 2);
        assert_eq!(all_tuples(&domain, 3).len(), 8);
    }

    #[test]
    fn random_instance_respects_signature() {
        let sig = Signature::from_arities([("R", 2), ("S", 1)]);
        let config = small_config();
        let mut rng = Lcg::new(1);
        for _ in 0..20 {
            let instance = random_instance(&sig, &config, &mut rng);
            for tuple in instance.get("R").iter() {
                assert_eq!(tuple.len(), 2);
            }
            for tuple in instance.get("S").iter() {
                assert_eq!(tuple.len(), 1);
            }
            assert!(instance.get("R").len() <= config.max_tuples_per_relation);
        }
    }
}
