//! Conjunctive (tuple-generating-dependency style) intermediate form.
//!
//! The deskolemization procedure of paper §3.5.3 reasons about constraints
//! whose left-hand sides are select-project-join expressions extended with
//! Skolem functions — the shape `π σ f g … σ (R1 × R2 × … × Rk)` that step 3
//! of the procedure aims for. This module converts such expressions into an
//! explicit conjunctive form (body atoms over variables, constant bindings,
//! head terms that may contain Skolem function applications) and back. The
//! conversion fails on non-conjunctive operators (∪, −, user-defined), which
//! makes the enclosing deskolemization fail — the behaviour the paper
//! prescribes for expressions it cannot handle.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mapcomp_algebra::{CmpOp, Expr, Operand, Pred, Signature, Value};

/// A term appearing in the head of a conjunctive form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A body variable.
    Var(usize),
    /// A constant value.
    Const(Value),
    /// A Skolem function applied to terms.
    Func(String, Vec<Term>),
}

impl Term {
    /// Does the term contain any Skolem function application?
    pub fn has_func(&self) -> bool {
        match self {
            Term::Var(_) | Term::Const(_) => false,
            Term::Func(..) => true,
        }
    }

    /// Variables occurring in the term.
    pub fn vars(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<usize>) {
        match self {
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::Const(_) => {}
            Term::Func(_, args) => args.iter().for_each(|a| a.collect_vars(out)),
        }
    }

    /// Is this a function application whose arguments are themselves function
    /// applications (nested Skolem functions)?
    pub fn has_nested_func(&self) -> bool {
        match self {
            Term::Func(_, args) => args.iter().any(|a| a.has_func() || a.has_nested_func()),
            _ => false,
        }
    }

    fn rename(&self, map: &BTreeMap<usize, usize>) -> Term {
        match self {
            Term::Var(v) => Term::Var(*map.get(v).unwrap_or(v)),
            Term::Const(c) => Term::Const(c.clone()),
            Term::Func(name, args) => {
                Term::Func(name.clone(), args.iter().map(|a| a.rename(map)).collect())
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "x{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A body atom: a base relation applied to variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Atom {
    /// Relation symbol.
    pub rel: String,
    /// Argument variables (one per column).
    pub args: Vec<usize>,
}

/// A conjunctive form: `head(t̄) :- atoms, constants`, where head terms may
/// contain Skolem function applications and `func_eqs` records equalities
/// that involve function terms (the "restricting atoms" of §3.5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunctive {
    /// Body atoms over base relations.
    pub atoms: Vec<Atom>,
    /// Variables bound to constants by selections.
    pub const_of: BTreeMap<usize, Value>,
    /// Output terms, one per column of the original expression.
    pub head: Vec<Term>,
    /// Equalities involving Skolem function terms.
    pub func_eqs: Vec<(Term, Term)>,
    /// Number of variables allocated.
    pub var_count: usize,
}

impl Conjunctive {
    /// Variables appearing in body atoms.
    pub fn body_vars(&self) -> BTreeSet<usize> {
        self.atoms.iter().flat_map(|a| a.args.iter().copied()).collect()
    }

    /// Variables appearing (outside function terms) in the head.
    pub fn head_universal_vars(&self) -> BTreeSet<usize> {
        self.head
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Distinct Skolem function applications in the head, in first-appearance
    /// order.
    pub fn func_terms(&self) -> Vec<Term> {
        let mut out = Vec::new();
        for term in &self.head {
            if term.has_func() && !out.contains(term) {
                out.push(term.clone());
            }
        }
        out
    }

    /// Names of Skolem functions used.
    pub fn func_names(&self) -> BTreeSet<String> {
        self.head
            .iter()
            .chain(self.func_eqs.iter().flat_map(|(a, b)| [a, b]))
            .filter_map(|t| match t {
                Term::Func(name, _) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    /// Does the head contain any Skolem function application?
    pub fn has_func(&self) -> bool {
        self.head.iter().any(Term::has_func) || !self.func_eqs.is_empty()
    }

    /// The body (atoms, constants, variables *not* in the head included) as a
    /// pair of (algebra expression, variable → column map). Head variables
    /// that appear in no atom are given fresh `D` columns.
    pub fn body_expr(&self) -> Result<(Expr, BTreeMap<usize, usize>), String> {
        let mut column_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut preds: Vec<Pred> = Vec::new();
        let mut expr: Option<Expr> = None;
        let mut width = 0usize;

        for atom in &self.atoms {
            let rel = Expr::rel(atom.rel.clone());
            expr = Some(match expr {
                None => rel,
                Some(prev) => prev.product(rel),
            });
            for (offset, var) in atom.args.iter().enumerate() {
                let column = width + offset;
                match column_of.get(var) {
                    None => {
                        column_of.insert(*var, column);
                    }
                    Some(first) => preds.push(Pred::eq_cols(*first, column)),
                }
            }
            width += atom.args.len();
        }

        // Head variables with no atom occurrence range over the active domain.
        for term in &self.head {
            for var in term.vars() {
                if let std::collections::btree_map::Entry::Vacant(entry) = column_of.entry(var) {
                    let rel = Expr::domain(1);
                    expr = Some(match expr {
                        None => rel,
                        Some(prev) => prev.product(rel),
                    });
                    entry.insert(width);
                    width += 1;
                }
            }
        }

        for (var, value) in &self.const_of {
            if let Some(column) = column_of.get(var) {
                preds.push(Pred::Cmp(
                    Operand::Col(*column),
                    CmpOp::Eq,
                    Operand::Const(value.clone()),
                ));
            }
        }

        let base = expr.ok_or_else(|| "conjunctive form with empty body".to_string())?;
        let combined = if preds.is_empty() { base } else { base.select(Pred::and_all(preds)) };
        Ok((combined, column_of))
    }

    /// The head as an algebra expression: the body expression projected onto
    /// the head columns. Fails if any head term is a function application.
    pub fn to_expr(&self) -> Result<Expr, String> {
        if self.head.iter().any(Term::has_func) {
            return Err("head contains Skolem function terms".into());
        }
        let (body, column_of) = self.body_expr()?;
        let mut columns = Vec::with_capacity(self.head.len());
        for term in &self.head {
            match term {
                Term::Var(v) => columns
                    .push(*column_of.get(v).ok_or_else(|| format!("unbound head variable x{v}"))?),
                Term::Const(_) => return Err("constant head term".into()),
                Term::Func(..) => unreachable!("checked above"),
            }
        }
        Ok(body.project(columns))
    }

    /// Renumber variables by first appearance (atoms first, head second) so
    /// that structurally identical bodies compare equal.
    fn canonicalize(&mut self) {
        let mut map: BTreeMap<usize, usize> = BTreeMap::new();
        let mut next = 0usize;
        let visit = |v: usize, map: &mut BTreeMap<usize, usize>, next: &mut usize| {
            map.entry(v).or_insert_with(|| {
                let id = *next;
                *next += 1;
                id
            });
        };
        for atom in &self.atoms {
            for &v in &atom.args {
                visit(v, &mut map, &mut next);
            }
        }
        for term in &self.head {
            for v in term.vars() {
                visit(v, &mut map, &mut next);
            }
        }
        for (a, b) in &self.func_eqs {
            for v in a.vars().into_iter().chain(b.vars()) {
                visit(v, &mut map, &mut next);
            }
        }
        for atom in &mut self.atoms {
            for v in &mut atom.args {
                *v = map[v];
            }
        }
        self.head = self.head.iter().map(|t| t.rename(&map)).collect();
        self.func_eqs =
            self.func_eqs.iter().map(|(a, b)| (a.rename(&map), b.rename(&map))).collect();
        self.const_of = self
            .const_of
            .iter()
            .filter_map(|(v, c)| map.get(v).map(|nv| (*nv, c.clone())))
            .collect();
        self.var_count = next;
    }

    /// Two conjunctive forms have the same body if their atoms and constant
    /// bindings coincide (after canonicalization).
    pub fn same_body(&self, other: &Conjunctive) -> bool {
        self.atoms == other.atoms && self.const_of == other.const_of
    }
}

/// Check well-formedness of a signature lookup for a conjunctive form: every
/// atom's arity must match the signature. Used by tests and debug assertions.
pub fn check_arities(cq: &Conjunctive, sig: &Signature) -> Result<(), String> {
    for atom in &cq.atoms {
        let declared = sig.arity(&atom.rel).map_err(|e| e.to_string())?;
        if declared != atom.args.len() {
            return Err(format!(
                "atom {} has {} arguments but arity {declared}",
                atom.rel,
                atom.args.len()
            ));
        }
    }
    Ok(())
}

#[derive(Default)]
struct Builder {
    atoms: Vec<Atom>,
    next_var: usize,
    /// Pending equalities gathered from σ and ∩.
    equalities: Vec<(Term, Term)>,
    const_of: BTreeMap<usize, Value>,
    func_eqs: Vec<(Term, Term)>,
    /// Union-find parent table for variable merging.
    parent: Vec<usize>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        let v = self.next_var;
        self.next_var += 1;
        self.parent.push(v);
        v
    }

    fn find(&mut self, v: usize) -> usize {
        if self.parent[v] != v {
            let root = self.find(self.parent[v]);
            self.parent[v] = root;
        }
        self.parent[v]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb.max(ra)] = rb.min(ra);
        }
    }

    fn resolve(&mut self) -> Result<(), String> {
        let equalities = std::mem::take(&mut self.equalities);
        for (a, b) in equalities {
            let a = self.resolve_term(&a);
            let b = self.resolve_term(&b);
            match (a, b) {
                (Term::Var(x), Term::Var(y)) => self.union(x, y),
                (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                    let root = self.find(x);
                    match self.const_of.get(&root) {
                        Some(existing) if *existing != c => {
                            return Err("conflicting constant bindings".into())
                        }
                        _ => {
                            self.const_of.insert(root, c);
                        }
                    }
                }
                (Term::Const(c1), Term::Const(c2)) => {
                    if c1 != c2 {
                        return Err("contradictory constant equality".into());
                    }
                }
                (x, y) => self.func_eqs.push((x, y)),
            }
        }
        // Re-point atoms and constants at union-find roots.
        let atoms = std::mem::take(&mut self.atoms);
        self.atoms = atoms
            .into_iter()
            .map(|atom| Atom {
                rel: atom.rel,
                args: atom.args.into_iter().map(|v| self.find(v)).collect(),
            })
            .collect();
        let const_of = std::mem::take(&mut self.const_of);
        let mut rebuilt = BTreeMap::new();
        for (v, c) in const_of {
            let root = self.find(v);
            if let Some(existing) = rebuilt.get(&root) {
                if *existing != c {
                    return Err("conflicting constant bindings".into());
                }
            }
            rebuilt.insert(root, c);
        }
        self.const_of = rebuilt;
        let func_eqs = std::mem::take(&mut self.func_eqs);
        self.func_eqs = func_eqs
            .into_iter()
            .map(|(a, b)| (self.resolve_term(&a), self.resolve_term(&b)))
            .collect();
        Ok(())
    }

    fn resolve_term(&mut self, term: &Term) -> Term {
        match term {
            Term::Var(v) => {
                let root = self.find(*v);
                Term::Var(root)
            }
            Term::Const(c) => Term::Const(c.clone()),
            Term::Func(name, args) => {
                Term::Func(name.clone(), args.iter().map(|a| self.resolve_term(a)).collect())
            }
        }
    }
}

/// Convert an expression to conjunctive form using a signature for base
/// relation arities.
pub fn expr_to_conjunctive(expr: &Expr, sig: &Signature) -> Result<Conjunctive, String> {
    let mut builder = Builder::default();
    let head = convert_with_sig(&mut builder, expr, sig)?;
    builder.resolve()?;
    let head = head.iter().map(|t| builder.resolve_term(t)).collect();
    let mut cq = Conjunctive {
        atoms: builder.atoms,
        const_of: builder.const_of,
        head,
        func_eqs: builder.func_eqs,
        var_count: builder.next_var,
    };
    cq.canonicalize();
    Ok(cq)
}

fn convert_with_sig(
    builder: &mut Builder,
    expr: &Expr,
    sig: &Signature,
) -> Result<Vec<Term>, String> {
    match expr {
        Expr::Rel(name) => {
            let arity = sig.arity(name).map_err(|e| e.to_string())?;
            let vars: Vec<usize> = (0..arity).map(|_| builder.fresh()).collect();
            builder.atoms.push(Atom { rel: name.clone(), args: vars.clone() });
            Ok(vars.into_iter().map(Term::Var).collect())
        }
        Expr::Domain(r) => Ok((0..*r).map(|_| Term::Var(builder.fresh())).collect()),
        Expr::Empty(_) => Err("empty relation is not conjunctive".into()),
        Expr::Product(a, b) => {
            let mut head = convert_with_sig(builder, a, sig)?;
            head.extend(convert_with_sig(builder, b, sig)?);
            Ok(head)
        }
        Expr::Intersect(a, b) => {
            let left = convert_with_sig(builder, a, sig)?;
            let right = convert_with_sig(builder, b, sig)?;
            if left.len() != right.len() {
                return Err("intersection operands of different arity".into());
            }
            for (l, r) in left.iter().zip(right.iter()) {
                builder.equalities.push((l.clone(), r.clone()));
            }
            Ok(left)
        }
        Expr::Project(cols, inner) => {
            let head = convert_with_sig(builder, inner, sig)?;
            cols.iter()
                .map(|&c| head.get(c).cloned().ok_or_else(|| "projection out of range".to_string()))
                .collect()
        }
        Expr::Select(pred, inner) => {
            let head = convert_with_sig(builder, inner, sig)?;
            for conjunct in pred.conjuncts() {
                match conjunct {
                    Pred::True => {}
                    Pred::Cmp(left, CmpOp::Eq, right) => {
                        let to_term = |operand: &Operand, head: &[Term]| -> Result<Term, String> {
                            match operand {
                                Operand::Col(i) => head
                                    .get(*i)
                                    .cloned()
                                    .ok_or_else(|| "selection column out of range".to_string()),
                                Operand::Const(v) => Ok(Term::Const(v.clone())),
                            }
                        };
                        let l = to_term(left, &head)?;
                        let r = to_term(right, &head)?;
                        builder.equalities.push((l, r));
                    }
                    other => return Err(format!("non-equality selection `{other}`")),
                }
            }
            Ok(head)
        }
        Expr::Skolem(f, inner) => {
            let head = convert_with_sig(builder, inner, sig)?;
            let args: Result<Vec<Term>, String> = f
                .deps
                .iter()
                .map(|&d| {
                    head.get(d).cloned().ok_or_else(|| "Skolem dependency out of range".to_string())
                })
                .collect();
            let mut head = head;
            head.push(Term::Func(f.name.clone(), args?));
            Ok(head)
        }
        Expr::Union(..) => Err("union is not conjunctive".into()),
        Expr::Difference(..) => Err("difference is not conjunctive".into()),
        Expr::Apply(name, _) => Err(format!("user-defined operator `{name}` is not conjunctive")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_expr, Signature};

    fn sig() -> Signature {
        Signature::from_arities([("R", 1), ("S", 2), ("T", 2), ("E", 2), ("C", 2)])
    }

    #[test]
    fn base_relation_and_product() {
        let cq = expr_to_conjunctive(&parse_expr("S * R").unwrap(), &sig()).unwrap();
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(cq.head.len(), 3);
        assert_eq!(cq.head, vec![Term::Var(0), Term::Var(1), Term::Var(2)]);
        assert!(!cq.has_func());
    }

    #[test]
    fn selection_merges_variables_and_constants() {
        let cq =
            expr_to_conjunctive(&parse_expr("select[#0 = #2 and #1 = 5](S * R)").unwrap(), &sig())
                .unwrap();
        // #0 and #2 merge: the S and R atoms share a variable.
        assert_eq!(cq.atoms[0].args[0], cq.atoms[1].args[0]);
        // #1 is bound to 5.
        let bound: Vec<_> = cq.const_of.values().collect();
        assert_eq!(bound, vec![&Value::Int(5)]);
    }

    #[test]
    fn projection_selects_head_terms() {
        let cq = expr_to_conjunctive(&parse_expr("project[1](S)").unwrap(), &sig()).unwrap();
        assert_eq!(cq.head.len(), 1);
        assert_eq!(cq.atoms.len(), 1);
        // The head variable is the second column of the S atom.
        assert_eq!(cq.head[0], Term::Var(cq.atoms[0].args[1]));
    }

    #[test]
    fn skolem_becomes_function_term() {
        let cq = expr_to_conjunctive(&parse_expr("skolem:f[0](R)").unwrap(), &sig()).unwrap();
        assert_eq!(cq.head.len(), 2);
        assert!(cq.has_func());
        assert_eq!(cq.func_terms().len(), 1);
        assert_eq!(cq.func_names().into_iter().collect::<Vec<_>>(), vec!["f".to_string()]);
        match &cq.head[1] {
            Term::Func(name, args) => {
                assert_eq!(name, "f");
                assert_eq!(args, &vec![cq.head[0].clone()]);
            }
            other => panic!("expected function term, got {other:?}"),
        }
    }

    #[test]
    fn intersection_equates_heads() {
        let cq = expr_to_conjunctive(&parse_expr("S & T").unwrap(), &sig()).unwrap();
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(cq.atoms[0].args, cq.atoms[1].args);
    }

    #[test]
    fn unsupported_operators_fail() {
        assert!(expr_to_conjunctive(&parse_expr("S + T").unwrap(), &sig()).is_err());
        assert!(expr_to_conjunctive(&parse_expr("S - T").unwrap(), &sig()).is_err());
        assert!(expr_to_conjunctive(&parse_expr("tc(S)").unwrap(), &sig()).is_err());
        assert!(expr_to_conjunctive(&parse_expr("select[#0 < 3](S)").unwrap(), &sig()).is_err());
        assert!(expr_to_conjunctive(&parse_expr("empty^2").unwrap(), &sig()).is_err());
    }

    #[test]
    fn domain_columns_are_unconstrained_variables() {
        let cq = expr_to_conjunctive(&parse_expr("R * D^2").unwrap(), &sig()).unwrap();
        assert_eq!(cq.atoms.len(), 1);
        assert_eq!(cq.head.len(), 3);
        assert_eq!(cq.body_vars().len(), 1);
        assert_eq!(cq.head_universal_vars().len(), 3);
    }

    #[test]
    fn round_trip_through_body_expr() {
        let original = parse_expr("project[0,2](select[#1 = 5](S * R))").unwrap();
        let cq = expr_to_conjunctive(&original, &sig()).unwrap();
        let rebuilt = cq.to_expr().unwrap();
        // The rebuilt expression is a project-select-product over the same
        // relations.
        assert_eq!(rebuilt.relations(), original.relations());
        check_arities(&cq, &sig()).unwrap();
    }

    #[test]
    fn canonical_bodies_compare_equal() {
        let a = expr_to_conjunctive(&parse_expr("project[0](S * R)").unwrap(), &sig()).unwrap();
        let b = expr_to_conjunctive(&parse_expr("project[2](S * R)").unwrap(), &sig()).unwrap();
        assert!(a.same_body(&b));
        let c = expr_to_conjunctive(&parse_expr("project[0](T * R)").unwrap(), &sig()).unwrap();
        assert!(!a.same_body(&c));
    }

    #[test]
    fn contradictory_constants_fail() {
        let expr = parse_expr("select[#0 = 1 and #0 = 2](R)").unwrap();
        assert!(expr_to_conjunctive(&expr, &sig()).is_err());
    }

    #[test]
    fn func_restrictions_are_recorded() {
        // A selection comparing a Skolem output against a constant becomes a
        // restricting equality rather than a constant binding.
        let expr = parse_expr("select[#1 = 7](skolem:f[0](R))").unwrap();
        let cq = expr_to_conjunctive(&expr, &sig()).unwrap();
        assert_eq!(cq.func_eqs.len(), 1);
        assert!(cq.has_func());
    }

    #[test]
    fn nested_function_detection() {
        let expr = parse_expr("skolem:g[1](skolem:f[0](R))").unwrap();
        let cq = expr_to_conjunctive(&expr, &sig()).unwrap();
        let nested = cq.head.iter().any(Term::has_nested_func);
        assert!(nested);
    }
}
