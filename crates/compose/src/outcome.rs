//! Outcome types shared by the elimination steps and the COMPOSE driver.

use std::fmt;

use mapcomp_algebra::Constraint;

/// Which of the three ELIMINATE sub-procedures succeeded (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EliminateStep {
    /// Step 1: view unfolding (§3.2).
    ViewUnfolding,
    /// Step 2: left compose (§3.4).
    LeftCompose,
    /// Step 3: right compose (§3.5).
    RightCompose,
}

impl fmt::Display for EliminateStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EliminateStep::ViewUnfolding => write!(f, "view unfolding"),
            EliminateStep::LeftCompose => write!(f, "left compose"),
            EliminateStep::RightCompose => write!(f, "right compose"),
        }
    }
}

/// Why an elimination sub-procedure failed for a particular symbol. These
/// reasons drive the statistics reported by the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureReason {
    /// The step was disabled by the configuration (ablation experiments).
    Disabled,
    /// View unfolding found no constraint of the form `S = E` with `E` free
    /// of `S`.
    NoDefiningEquality,
    /// Some constraint mentions the symbol on both sides of a containment.
    SymbolOnBothSides,
    /// An expression containing the symbol on the right of a containment is
    /// not monotone in the symbol (blocks left compose).
    NotRightMonotone,
    /// An expression containing the symbol on the left of a containment is
    /// not monotone in the symbol (blocks right compose).
    NotLeftMonotone,
    /// Left normalization could not isolate the symbol (no rewriting rule for
    /// some operator, duplicate projection columns, ...).
    LeftNormalizeFailed(String),
    /// Right normalization could not isolate the symbol.
    RightNormalizeFailed(String),
    /// De-Skolemization failed (paper §3.5.3 lists several failure points).
    DeskolemizeFailed(String),
    /// The result exceeded the output/input size budget (paper §4.2 aborts at
    /// a 100× operator-count blow-up).
    Blowup {
        /// Operator count after the step.
        output_ops: usize,
        /// Operator-count budget that was exceeded.
        budget: usize,
    },
    /// The constraints still mention the symbol after the step (internal
    /// guard; should not normally occur).
    SymbolRemains,
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Disabled => write!(f, "step disabled by configuration"),
            FailureReason::NoDefiningEquality => write!(f, "no defining equality"),
            FailureReason::SymbolOnBothSides => {
                write!(f, "symbol occurs on both sides of a constraint")
            }
            FailureReason::NotRightMonotone => {
                write!(f, "a right-hand side is not monotone in the symbol")
            }
            FailureReason::NotLeftMonotone => {
                write!(f, "a left-hand side is not monotone in the symbol")
            }
            FailureReason::LeftNormalizeFailed(msg) => {
                write!(f, "left normalization failed: {msg}")
            }
            FailureReason::RightNormalizeFailed(msg) => {
                write!(f, "right normalization failed: {msg}")
            }
            FailureReason::DeskolemizeFailed(msg) => write!(f, "deskolemization failed: {msg}"),
            FailureReason::Blowup { output_ops, budget } => {
                write!(f, "size blow-up: {output_ops} operators exceeds budget {budget}")
            }
            FailureReason::SymbolRemains => write!(f, "symbol still present after elimination"),
        }
    }
}

/// Successful elimination of one symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminateSuccess {
    /// The resulting constraints, free of the eliminated symbol.
    pub constraints: Vec<Constraint>,
    /// Which sub-procedure succeeded.
    pub step: EliminateStep,
}

/// Failed elimination of one symbol: the reasons each sub-procedure gave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminateFailure {
    /// Why view unfolding failed.
    pub view_unfolding: FailureReason,
    /// Why left compose failed.
    pub left_compose: FailureReason,
    /// Why right compose failed.
    pub right_compose: FailureReason,
}

impl fmt::Display for EliminateFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view unfolding: {}; left compose: {}; right compose: {}",
            self.view_unfolding, self.left_compose, self.right_compose
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(EliminateStep::ViewUnfolding.to_string(), "view unfolding");
        assert_eq!(EliminateStep::LeftCompose.to_string(), "left compose");
        assert_eq!(EliminateStep::RightCompose.to_string(), "right compose");
        let failure = EliminateFailure {
            view_unfolding: FailureReason::NoDefiningEquality,
            left_compose: FailureReason::NotRightMonotone,
            right_compose: FailureReason::DeskolemizeFailed("cycle".into()),
        };
        let text = failure.to_string();
        assert!(text.contains("no defining equality"));
        assert!(text.contains("not monotone"));
        assert!(text.contains("cycle"));
        let blowup = FailureReason::Blowup { output_ops: 1000, budget: 100 };
        assert!(blowup.to_string().contains("1000"));
    }
}
