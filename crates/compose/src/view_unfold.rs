//! Step 1 of ELIMINATE: view unfolding (paper §3.2).
//!
//! "We look for a constraint ξ of the form S = E1 in Σ0 where E1 is an
//! arbitrary expression that does not contain S. If there is no such
//! constraint ... report failure. Otherwise, to obtain Σ1 we remove ξ and
//! replace every occurrence of S in every other constraint in Σ0 with E1."
//!
//! Because ξ is an *equality*, the substitution is valid even inside
//! expressions that are not monotone in S or that contain operators about
//! which nothing is known — which is exactly the extra power demonstrated by
//! the paper's Example 5.

use mapcomp_algebra::{Constraint, ConstraintKind, Expr};

use crate::outcome::FailureReason;

/// Find a defining equality for `sym`: a constraint `S = E` or `E = S` where
/// `E` does not mention `S`. Returns the index and the defining expression.
pub fn find_defining_equality(constraints: &[Constraint], sym: &str) -> Option<(usize, Expr)> {
    constraints.iter().enumerate().find_map(|(i, c)| {
        if c.kind != ConstraintKind::Equality {
            return None;
        }
        let s = Expr::Rel(sym.to_string());
        if c.lhs == s && !c.rhs.mentions(sym) {
            return Some((i, c.rhs.clone()));
        }
        if c.rhs == s && !c.lhs.mentions(sym) {
            return Some((i, c.lhs.clone()));
        }
        None
    })
}

/// Attempt to eliminate `sym` by view unfolding. On success the returned
/// constraints are equivalent to the input and free of `sym`.
pub fn view_unfold(
    constraints: &[Constraint],
    sym: &str,
) -> Result<Vec<Constraint>, FailureReason> {
    let (index, definition) =
        find_defining_equality(constraints, sym).ok_or(FailureReason::NoDefiningEquality)?;
    let mut out = Vec::with_capacity(constraints.len().saturating_sub(1));
    for (i, constraint) in constraints.iter().enumerate() {
        if i == index {
            continue;
        }
        out.push(constraint.substitute(sym, &definition));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraint, parse_constraints};

    #[test]
    fn paper_example_5() {
        // S = R1 × R2,  π(R3 − S) ⊆ T1,  T2 ⊆ T3 − σc(S)
        let constraints = parse_constraints(
            "S = R1 * R2; project[0](diff(R3, S)) <= T1; T2 <= T3 - select[#0 = 1](S)",
        )
        .unwrap()
        .into_vec();
        let result = view_unfold(&constraints, "S").unwrap();
        assert_eq!(result.len(), 2);
        let expected_first = parse_constraint("project[0](diff(R3, R1 * R2)) <= T1").unwrap();
        let expected_second = parse_constraint("T2 <= T3 - select[#0 = 1](R1 * R2)").unwrap();
        assert_eq!(result[0], expected_first);
        assert_eq!(result[1], expected_second);
        assert!(result.iter().all(|c| !c.mentions("S")));
    }

    #[test]
    fn defining_equality_may_be_on_either_side() {
        let constraints = parse_constraints("R1 * R2 = S; S <= T").unwrap().into_vec();
        let result = view_unfold(&constraints, "S").unwrap();
        assert_eq!(result, vec![parse_constraint("R1 * R2 <= T").unwrap()]);
    }

    #[test]
    fn fails_without_defining_equality() {
        // Only containments: no unfolding possible.
        let constraints = parse_constraints("S <= R; R <= S").unwrap().into_vec();
        assert_eq!(view_unfold(&constraints, "S"), Err(FailureReason::NoDefiningEquality));
    }

    #[test]
    fn fails_when_definition_mentions_symbol() {
        // S = S ∪ R defines S recursively; not usable.
        let constraints = parse_constraints("S = S + R; S <= T").unwrap().into_vec();
        assert_eq!(view_unfold(&constraints, "S"), Err(FailureReason::NoDefiningEquality));
    }

    #[test]
    fn unfolds_into_equalities_too() {
        let constraints = parse_constraints("S = R; T = S * S").unwrap().into_vec();
        let result = view_unfold(&constraints, "S").unwrap();
        assert_eq!(result, vec![parse_constraint("T = R * R").unwrap()]);
    }

    #[test]
    fn only_first_defining_equality_is_used() {
        let constraints = parse_constraints("S = R1; S = R2; S <= T").unwrap().into_vec();
        let result = view_unfold(&constraints, "S").unwrap();
        // The remaining definition becomes an ordinary constraint R1 = R2
        // after substitution... more precisely S = R2 becomes R1 = R2.
        assert_eq!(result.len(), 2);
        assert_eq!(result[0], parse_constraint("R1 = R2").unwrap());
        assert_eq!(result[1], parse_constraint("R1 <= T").unwrap());
    }
}
