//! The COMPOSE driver (paper §3.1) and its configuration and statistics.
//!
//! COMPOSE takes constraints Σ12 over σ1 ∪ σ2 and Σ23 over σ2 ∪ σ3 and tries
//! to eliminate every σ2 symbol from Σ12 ∪ Σ23, following the user-specified
//! order, making a best effort: symbols that cannot be eliminated stay in the
//! output signature (§1.3). The driver also implements the size-blow-up abort
//! of §4.2 ("the algorithm aborts whenever the output-to-input size ratio
//! exceeds a certain factor (100, in our study)").

use std::time::{Duration, Instant};

use mapcomp_algebra::{AlgebraError, CompositionTask, Constraint, ConstraintSet, Signature};

use crate::eliminate::eliminate;
use crate::outcome::{EliminateFailure, EliminateStep, FailureReason};
use crate::registry::Registry;

/// Configuration of the COMPOSE driver. The ablation switches correspond to
/// the configurations studied in the paper's Figures 2, 3, 5 and 6
/// (`no unfolding`, `no right compose`, `no left compose`).
#[derive(Debug, Clone)]
pub struct ComposeConfig {
    /// Enable step 1, view unfolding (§3.2).
    pub enable_view_unfolding: bool,
    /// Enable step 2, left compose (§3.4).
    pub enable_left_compose: bool,
    /// Enable step 3, right compose (§3.5).
    pub enable_right_compose: bool,
    /// Abort an elimination whose output exceeds `blowup_factor ×` the input
    /// operator count; `None` disables the check.
    pub blowup_factor: Option<usize>,
    /// Override the elimination order (defaults to the task's σ2 order).
    pub symbol_order: Option<Vec<String>>,
}

impl Default for ComposeConfig {
    fn default() -> Self {
        ComposeConfig {
            enable_view_unfolding: true,
            enable_left_compose: true,
            enable_right_compose: true,
            blowup_factor: Some(100),
            symbol_order: None,
        }
    }
}

impl ComposeConfig {
    /// The `no unfolding` ablation of the paper's experiments.
    pub fn without_view_unfolding() -> Self {
        ComposeConfig { enable_view_unfolding: false, ..ComposeConfig::default() }
    }

    /// The `no right compose` ablation.
    pub fn without_right_compose() -> Self {
        ComposeConfig { enable_right_compose: false, ..ComposeConfig::default() }
    }

    /// The `no left compose` ablation.
    pub fn without_left_compose() -> Self {
        ComposeConfig { enable_left_compose: false, ..ComposeConfig::default() }
    }
}

/// Outcome of trying to eliminate one symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolOutcome {
    /// The symbol was eliminated by the given step.
    Eliminated(EliminateStep),
    /// The symbol could not be eliminated.
    Failed(EliminateFailure),
}

impl SymbolOutcome {
    /// Was the symbol eliminated?
    pub fn is_eliminated(&self) -> bool {
        matches!(self, SymbolOutcome::Eliminated(_))
    }
}

/// Per-symbol record kept by the driver.
#[derive(Debug, Clone)]
pub struct SymbolReport {
    /// The σ2 symbol.
    pub symbol: String,
    /// What happened.
    pub outcome: SymbolOutcome,
    /// Wall-clock time spent on this symbol.
    pub duration: Duration,
}

/// Aggregate statistics of one COMPOSE run; these are the quantities plotted
/// in the paper's figures.
#[derive(Debug, Clone, Default)]
pub struct ComposeStats {
    /// Number of constraints in Σ12 ∪ Σ23.
    pub input_constraints: usize,
    /// Total operator count of the input (the paper's mapping-size measure).
    pub input_op_count: usize,
    /// Number of constraints in the output.
    pub output_constraints: usize,
    /// Total operator count of the output.
    pub output_op_count: usize,
    /// Symbols the driver attempted to eliminate.
    pub symbols_attempted: usize,
    /// Symbols successfully eliminated.
    pub symbols_eliminated: usize,
    /// Eliminations aborted by the blow-up check.
    pub blowup_aborts: usize,
    /// Per-symbol reports in elimination order.
    pub per_symbol: Vec<SymbolReport>,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
}

impl ComposeStats {
    /// Fraction of σ2 symbols eliminated (the y-axis of Figures 2, 5, 6, 7).
    pub fn fraction_eliminated(&self) -> f64 {
        if self.symbols_attempted == 0 {
            1.0
        } else {
            self.symbols_eliminated as f64 / self.symbols_attempted as f64
        }
    }

    /// How many symbols were eliminated by each step.
    pub fn eliminations_by_step(&self) -> (usize, usize, usize) {
        let mut unfold = 0;
        let mut left = 0;
        let mut right = 0;
        for report in &self.per_symbol {
            match report.outcome {
                SymbolOutcome::Eliminated(EliminateStep::ViewUnfolding) => unfold += 1,
                SymbolOutcome::Eliminated(EliminateStep::LeftCompose) => left += 1,
                SymbolOutcome::Eliminated(EliminateStep::RightCompose) => right += 1,
                SymbolOutcome::Failed(_) => {}
            }
        }
        (unfold, left, right)
    }
}

/// Result of a COMPOSE run.
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// The output signature: σ1 ∪ σ3 plus any σ2 symbols that could not be
    /// eliminated (paper §3.1: σ1 ∪ σ3 ⊆ σ ⊆ σ1 ∪ σ2 ∪ σ3).
    pub signature: Signature,
    /// The output constraints Σ over that signature.
    pub constraints: ConstraintSet,
    /// σ2 symbols that were eliminated, in elimination order.
    pub eliminated: Vec<String>,
    /// σ2 symbols that remain in the output.
    pub remaining: Vec<String>,
    /// Run statistics.
    pub stats: ComposeStats,
}

impl ComposeResult {
    /// Did the composition eliminate every σ2 symbol?
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }
}

/// Compose a task built from two mappings (the main entry point).
pub fn compose(
    task: &CompositionTask,
    registry: &Registry,
    config: &ComposeConfig,
) -> Result<ComposeResult, AlgebraError> {
    let full_signature = task.full_signature()?;
    let combined = task.combined_constraints();
    let order = config.symbol_order.clone().unwrap_or_else(|| task.elimination_order());
    Ok(compose_constraints(&full_signature, &order, combined.into_vec(), registry, config))
}

/// Lower-level driver: eliminate the listed symbols from a constraint set
/// over the full signature. Used directly by the schema-evolution simulator,
/// which maintains a running constraint set rather than two separate
/// mappings.
pub fn compose_constraints(
    full_signature: &Signature,
    symbols: &[String],
    constraints: Vec<Constraint>,
    registry: &Registry,
    config: &ComposeConfig,
) -> ComposeResult {
    let started = Instant::now();
    let mut stats = ComposeStats {
        input_constraints: constraints.len(),
        input_op_count: constraints.iter().map(Constraint::op_count).sum(),
        ..ComposeStats::default()
    };
    let budget =
        config.blowup_factor.map(|factor| factor.saturating_mul(stats.input_op_count.max(1)));

    let mut current = constraints;
    let mut signature = full_signature.clone();
    let mut eliminated = Vec::new();
    let mut remaining = Vec::new();

    for symbol in symbols {
        stats.symbols_attempted += 1;
        let symbol_start = Instant::now();

        // A σ2 symbol that no constraint mentions is trivially eliminable:
        // dropping it from the signature preserves equivalence.
        if !current.iter().any(|c| c.mentions(symbol)) {
            signature.remove(symbol);
            eliminated.push(symbol.clone());
            stats.symbols_eliminated += 1;
            stats.per_symbol.push(SymbolReport {
                symbol: symbol.clone(),
                outcome: SymbolOutcome::Eliminated(EliminateStep::ViewUnfolding),
                duration: symbol_start.elapsed(),
            });
            continue;
        }

        let outcome = match eliminate(&current, symbol, &signature, registry, config) {
            Ok(success) => {
                let output_ops: usize = success.constraints.iter().map(Constraint::op_count).sum();
                match budget {
                    Some(limit) if output_ops > limit => {
                        stats.blowup_aborts += 1;
                        SymbolOutcome::Failed(EliminateFailure {
                            view_unfolding: FailureReason::Blowup { output_ops, budget: limit },
                            left_compose: FailureReason::Blowup { output_ops, budget: limit },
                            right_compose: FailureReason::Blowup { output_ops, budget: limit },
                        })
                    }
                    _ => {
                        current = dedup(success.constraints);
                        signature.remove(symbol);
                        SymbolOutcome::Eliminated(success.step)
                    }
                }
            }
            Err(failure) => SymbolOutcome::Failed(failure),
        };

        if outcome.is_eliminated() {
            eliminated.push(symbol.clone());
            stats.symbols_eliminated += 1;
        } else {
            remaining.push(symbol.clone());
        }
        stats.per_symbol.push(SymbolReport {
            symbol: symbol.clone(),
            outcome,
            duration: symbol_start.elapsed(),
        });
    }

    stats.output_constraints = current.len();
    stats.output_op_count = current.iter().map(Constraint::op_count).sum();
    stats.total_time = started.elapsed();

    ComposeResult {
        signature,
        constraints: ConstraintSet::from_constraints(current),
        eliminated,
        remaining,
        stats,
    }
}

/// Remove duplicate and trivially true constraints between eliminations to
/// keep intermediate results small (part of the output-size discipline the
/// paper discusses under "mapping simplification").
fn dedup(constraints: Vec<Constraint>) -> Vec<Constraint> {
    let mut set = ConstraintSet::from_constraints(constraints);
    set.dedup();
    set.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, parse_document, Expr, Pred};

    fn registry() -> Registry {
        Registry::standard()
    }

    #[test]
    fn example_1_movies_composition() {
        // The running example from the paper's introduction.
        let doc = parse_document(
            r"
            schema sigma1 { Movies/6; }
            schema sigma2 { FiveStarMovies/3; }
            schema sigma3 { Names/2; Years/2; }
            mapping m12 : sigma1 -> sigma2 {
                project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
            }
            mapping m23 : sigma2 -> sigma3 {
                project[0,1](FiveStarMovies) <= Names;
                project[0,2](FiveStarMovies) <= Years;
            }
            ",
        )
        .unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let result = compose(&task, &registry(), &ComposeConfig::default()).unwrap();
        assert!(result.is_complete(), "FiveStarMovies not eliminated: {result:?}");
        assert_eq!(result.eliminated, vec!["FiveStarMovies".to_string()]);
        assert!(!result.signature.contains("FiveStarMovies"));
        assert!(result.signature.contains("Movies"));
        assert!(result.signature.contains("Names"));
        // The composed constraints only mention σ1 ∪ σ3 symbols and imply the
        // expected π_{mid,name}(σ_{rating=5}(Movies)) ⊆ Names shape: they must
        // mention Movies together with Names and Years.
        for constraint in result.constraints.iter() {
            assert!(!constraint.mentions("FiveStarMovies"));
        }
        let text = result.constraints.to_string();
        assert!(text.contains("Movies"));
        assert!(text.contains("Names"));
        assert!(text.contains("Years"));
        assert_eq!(result.stats.symbols_attempted, 1);
        assert_eq!(result.stats.fraction_eliminated(), 1.0);
    }

    #[test]
    fn best_effort_keeps_uneliminable_symbols() {
        // σ2 = {S1, S2} where S1 is a plain copy (eliminable) and S2 is
        // transitively closed (not eliminable, paper §1.3).
        let sig = Signature::from_arities([("R", 2), ("S1", 2), ("S2", 2), ("T", 2)]);
        let constraints = parse_constraints("R <= S1; S1 <= T; R <= S2; S2 = tc(S2); S2 <= T")
            .unwrap()
            .into_vec();
        let result = compose_constraints(
            &sig,
            &["S1".to_string(), "S2".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::default(),
        );
        assert_eq!(result.eliminated, vec!["S1".to_string()]);
        assert_eq!(result.remaining, vec!["S2".to_string()]);
        assert!(result.signature.contains("S2"));
        assert!(!result.signature.contains("S1"));
        assert!((result.stats.fraction_eliminated() - 0.5).abs() < f64::EPSILON);
        assert!(!result.is_complete());
    }

    #[test]
    fn unused_intermediate_symbols_are_dropped() {
        let sig = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let constraints = parse_constraints("R <= T").unwrap().into_vec();
        let result = compose_constraints(
            &sig,
            &["S".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::default(),
        );
        assert_eq!(result.eliminated, vec!["S".to_string()]);
        assert!(!result.signature.contains("S"));
    }

    #[test]
    fn ablation_switches_change_outcomes() {
        // Paper Example 5: S = R1 × R2 with S occurring non-monotonically on
        // both a left- and a right-hand side; only view unfolding can remove
        // it, so disabling unfolding must keep it.
        let sig = Signature::from_arities([
            ("R1", 1),
            ("R2", 1),
            ("R3", 2),
            ("S", 2),
            ("T1", 1),
            ("T2", 2),
            ("T3", 2),
        ]);
        let constraints = parse_constraints(
            "S = R1 * R2; project[0](R3 - S) <= T1; T2 <= T3 - select[#0 = 1](S)",
        )
        .unwrap()
        .into_vec();
        let with_unfolding = compose_constraints(
            &sig,
            &["S".to_string()],
            constraints.clone(),
            &registry(),
            &ComposeConfig::default(),
        );
        assert!(with_unfolding.is_complete());
        let without = compose_constraints(
            &sig,
            &["S".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::without_view_unfolding(),
        );
        assert!(!without.is_complete());
        assert_eq!(without.remaining, vec!["S".to_string()]);
    }

    #[test]
    fn blowup_abort_counts() {
        // A tight budget forces the driver to reject an otherwise successful
        // elimination.
        let sig = Signature::from_arities([("R", 1), ("S", 1), ("T", 1)]);
        let constraints = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        let config = ComposeConfig { blowup_factor: Some(0), ..ComposeConfig::default() };
        let result =
            compose_constraints(&sig, &["S".to_string()], constraints, &registry(), &config);
        assert_eq!(result.stats.blowup_aborts, 1);
        assert_eq!(result.remaining, vec!["S".to_string()]);
    }

    #[test]
    fn order_affects_which_symbol_survives() {
        // The footnote in §3.1: two interlocking recursive symbols — exactly
        // one of them can be eliminated, and which one depends on the order.
        let sig = Signature::from_arities([("R", 2), ("S1", 2), ("S2", 2), ("T", 2)]);
        // S1 and S2 reference each other through a containment cycle; each is
        // individually removable only while the other is still present.
        let constraints =
            parse_constraints("R <= S1; S1 <= S2; S2 <= S1; S1 <= T").unwrap().into_vec();
        let order_a = compose_constraints(
            &sig,
            &["S1".to_string(), "S2".to_string()],
            constraints.clone(),
            &registry(),
            &ComposeConfig::default(),
        );
        let order_b = compose_constraints(
            &sig,
            &["S2".to_string(), "S1".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::default(),
        );
        // Both orders eliminate both symbols here (no recursion), so instead
        // of asserting divergence we assert the driver respects the order it
        // was given.
        assert_eq!(order_a.stats.per_symbol[0].symbol, "S1");
        assert_eq!(order_b.stats.per_symbol[0].symbol, "S2");
    }

    #[test]
    fn stats_report_sizes_and_steps() {
        let sig = Signature::from_arities([("R", 1), ("S", 1), ("T", 1), ("V", 1)]);
        let constraints = parse_constraints("S = R; S <= T; R <= V").unwrap().into_vec();
        let result = compose_constraints(
            &sig,
            &["S".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::default(),
        );
        assert_eq!(result.stats.input_constraints, 3);
        assert_eq!(result.stats.output_constraints, 2);
        assert!(result.stats.input_op_count > 0);
        assert!(result.stats.output_op_count > 0);
        let (unfold, left, right) = result.stats.eliminations_by_step();
        assert_eq!((unfold, left, right), (1, 0, 0));
    }

    #[test]
    fn composed_output_is_sound_on_instances() {
        // Soundness spot check for Example 1: build an instance of σ1 ∪ σ2 ∪ σ3
        // satisfying the inputs and check its restriction satisfies the output.
        use mapcomp_algebra::{tuple, Instance};
        let doc = parse_document(
            r"
            schema sigma1 { Movies/6; }
            schema sigma2 { FiveStarMovies/3; }
            schema sigma3 { Names/2; Years/2; }
            mapping m12 : sigma1 -> sigma2 {
                project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
            }
            mapping m23 : sigma2 -> sigma3 {
                project[0,1](FiveStarMovies) <= Names;
                project[0,2](FiveStarMovies) <= Years;
            }
            ",
        )
        .unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let result = compose(&task, &registry(), &ComposeConfig::default()).unwrap();
        let full = task.full_signature().unwrap();
        let ops = registry().operators().clone();

        let mut instance = Instance::new();
        // Movies(mid, name, year, rating, genre, theater)
        instance.insert("Movies", tuple([1i64, 100, 1999, 5, 7, 8]));
        instance.insert("Movies", tuple([2i64, 200, 2001, 3, 7, 8]));
        instance.insert("FiveStarMovies", tuple([1i64, 100, 1999]));
        instance.insert("Names", tuple([1i64, 100]));
        instance.insert("Years", tuple([1i64, 1999]));
        let inputs = task.combined_constraints();
        assert!(inputs.satisfied_by(&full, &ops, &instance).unwrap());
        assert!(result.constraints.satisfied_by(&full, &ops, &instance).unwrap());

        // And an instance violating the composed mapping must violate the
        // inputs too (contrapositive of soundness for this witness).
        let mut bad = instance.clone();
        bad.insert("Movies", tuple([3i64, 300, 2005, 5, 7, 8]));
        assert!(!result.constraints.satisfied_by(&full, &ops, &bad).unwrap());
        assert!(!inputs.satisfied_by(&full, &ops, &bad).unwrap());
    }

    #[test]
    fn key_constraint_encoding_roundtrip() {
        // Compose in the presence of an explicit key constraint written with
        // the active-domain encoding of Example 2.
        let sig = Signature::from_arities([("R", 2), ("S", 2), ("T", 2)]);
        let key = Constraint::containment(
            Expr::rel("S").product(Expr::rel("S")).select(Pred::eq_cols(0, 2)).project(vec![1, 3]),
            Expr::domain(2).select(Pred::eq_cols(0, 1)),
        );
        let mut constraints = parse_constraints("R <= S; S <= T").unwrap().into_vec();
        constraints.push(key);
        let result = compose_constraints(
            &sig,
            &["S".to_string()],
            constraints,
            &registry(),
            &ComposeConfig::default(),
        );
        // The key constraint mentions S on both sides... it does not (both
        // occurrences are on the left), so right compose can still handle it;
        // whether or not S is eliminated, the driver must not panic and the
        // output must be well formed.
        for constraint in result.constraints.iter() {
            assert!(constraint.validate(&sig, registry().operators()).is_ok());
        }
    }
}
