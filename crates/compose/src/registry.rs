//! Operator registry: extensibility point of the composition algorithm.
//!
//! Paper §1.3 ("Extensibility and modularity"): "Our algorithm is extensible
//! by allowing additional information to be added separately for each
//! operator in the form of information about monotonicity and rules for
//! normalization and denormalization. Many of the steps are rule-based and
//! implemented in such a way that it is easy to add rules or new operators."
//!
//! A [`Registry`] wraps the algebra crate's [`OperatorSet`] (typing +
//! evaluation) and adds, per user-defined operator:
//!
//! * a **monotonicity rule** (§3.3) mapping argument monotonicities to the
//!   operator's monotonicity,
//! * an optional **right-normalization rule** (§3.5.1) for constraints of the
//!   form `E1 ⊆ op(...)`,
//! * an optional **left-normalization rule** (§3.4.1) for constraints of the
//!   form `op(...) ⊆ E2`,
//! * an optional **simplification rule** used by the eliminate-domain
//!   (§3.4.3) and eliminate-empty (§3.5.4) steps.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use mapcomp_algebra::{Constraint, Expr, OperatorDef, OperatorSet};

/// Result of the MONOTONE procedure (paper §3.3): how an expression responds
/// to adding tuples to one relation symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Monotonicity {
    /// Adding tuples to the symbol can only add output tuples (`'m'`).
    Monotone,
    /// Adding tuples to the symbol can only remove output tuples (`'a'`).
    AntiMonotone,
    /// The output does not depend on the symbol (`'i'`).
    Independent,
    /// Nothing is known (`'u'`).
    Unknown,
}

impl Monotonicity {
    /// The flipped polarity (used for the second argument of set difference
    /// and similar operators).
    pub fn flip(self) -> Monotonicity {
        match self {
            Monotonicity::Monotone => Monotonicity::AntiMonotone,
            Monotonicity::AntiMonotone => Monotonicity::Monotone,
            other => other,
        }
    }

    /// Combination rule shared by ∪, ∩ and × (paper §3.3: they "behave in the
    /// same way from the point of view of MONOTONE").
    pub fn combine(self, other: Monotonicity) -> Monotonicity {
        use Monotonicity::*;
        match (self, other) {
            (Independent, x) | (x, Independent) => x,
            (Monotone, Monotone) => Monotone,
            (AntiMonotone, AntiMonotone) => AntiMonotone,
            _ => Unknown,
        }
    }

    /// Is the expression usable where a monotone occurrence is required?
    /// Independent expressions are trivially monotone.
    pub fn is_monotone(self) -> bool {
        matches!(self, Monotonicity::Monotone | Monotonicity::Independent)
    }

    /// Single-letter code used in the paper and in debug output.
    pub fn code(self) -> char {
        match self {
            Monotonicity::Monotone => 'm',
            Monotonicity::AntiMonotone => 'a',
            Monotonicity::Independent => 'i',
            Monotonicity::Unknown => 'u',
        }
    }
}

impl fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Monotonicity rule for a user-defined operator: argument monotonicities in,
/// operator monotonicity out.
pub type MonotonicityRule = Arc<dyn Fn(&[Monotonicity]) -> Monotonicity + Send + Sync>;

/// Right-normalization rule: rewrite `lhs ⊆ op(args)` into an equivalent
/// list of constraints, or `None` if the rule does not apply.
pub type RightNormalizeRule = Arc<dyn Fn(&Expr, &[Expr]) -> Option<Vec<Constraint>> + Send + Sync>;

/// Left-normalization rule: rewrite `op(args) ⊆ rhs` into an equivalent list
/// of constraints, or `None` if the rule does not apply.
pub type LeftNormalizeRule = Arc<dyn Fn(&[Expr], &Expr) -> Option<Vec<Constraint>> + Send + Sync>;

/// Simplification rule used by the eliminate-domain and eliminate-empty
/// steps: given the operator's arguments (some of which are `D^r` or `∅`),
/// return a simpler equivalent expression, or `None`.
pub type SimplifyRule = Arc<dyn Fn(&[Expr]) -> Option<Expr> + Send + Sync>;

/// Composition-specific knowledge about one user-defined operator.
#[derive(Clone, Default)]
pub struct OperatorRules {
    /// Monotonicity rule (§3.3). Defaults to "unknown whenever any argument
    /// depends on the symbol".
    pub monotonicity: Option<MonotonicityRule>,
    /// Right-normalization rule (§3.5.1).
    pub right_normalize: Option<RightNormalizeRule>,
    /// Left-normalization rule (§3.4.1).
    pub left_normalize: Option<LeftNormalizeRule>,
    /// Domain / empty-relation simplification rule (§3.4.3, §3.5.4).
    pub simplify: Option<SimplifyRule>,
}

impl fmt::Debug for OperatorRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperatorRules")
            .field("has_monotonicity", &self.monotonicity.is_some())
            .field("has_right_normalize", &self.right_normalize.is_some())
            .field("has_left_normalize", &self.left_normalize.is_some())
            .field("has_simplify", &self.simplify.is_some())
            .finish()
    }
}

/// The registry: typing/evaluation definitions plus composition rules for
/// user-defined operators.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    ops: OperatorSet,
    rules: BTreeMap<String, OperatorRules>,
}

impl Registry {
    /// Registry with no user-defined operators (the six basic operators are
    /// always available).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registry pre-loaded with the extended operators shipped with this
    /// implementation: left outer join, semijoin, antijoin and transitive
    /// closure (see [`crate::builtins`]).
    pub fn standard() -> Self {
        let mut registry = Registry::new();
        crate::builtins::register_all(&mut registry);
        registry
    }

    /// Register an operator definition (typing + optional evaluation).
    pub fn register(&mut self, def: OperatorDef) -> &mut Self {
        self.ops.register(def);
        self
    }

    /// Register (or replace) composition rules for an operator.
    pub fn set_rules(&mut self, name: impl Into<String>, rules: OperatorRules) -> &mut Self {
        self.rules.insert(name.into(), rules);
        self
    }

    /// The underlying operator set (typing + evaluation).
    pub fn operators(&self) -> &OperatorSet {
        &self.ops
    }

    /// Composition rules for an operator, if registered.
    pub fn rules(&self, name: &str) -> Option<&OperatorRules> {
        self.rules.get(name)
    }

    /// Monotonicity of a user-defined operator given its arguments'
    /// monotonicities. Falls back to the conservative default: independent
    /// when no argument depends on the symbol, unknown otherwise.
    pub fn operator_monotonicity(&self, name: &str, args: &[Monotonicity]) -> Monotonicity {
        if let Some(rule) = self.rules.get(name).and_then(|r| r.monotonicity.as_ref()) {
            return rule(args);
        }
        if args.iter().all(|m| *m == Monotonicity::Independent) {
            Monotonicity::Independent
        } else {
            Monotonicity::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_matches_paper_table() {
        use Monotonicity::*;
        assert_eq!(Monotone.combine(Monotone), Monotone);
        assert_eq!(Monotone.combine(Independent), Monotone);
        assert_eq!(Independent.combine(AntiMonotone), AntiMonotone);
        assert_eq!(Monotone.combine(AntiMonotone), Unknown);
        assert_eq!(Unknown.combine(Independent), Unknown);
        assert_eq!(AntiMonotone.combine(AntiMonotone), AntiMonotone);
        assert_eq!(Independent.combine(Independent), Independent);
    }

    #[test]
    fn flip_swaps_polarity() {
        assert_eq!(Monotonicity::Monotone.flip(), Monotonicity::AntiMonotone);
        assert_eq!(Monotonicity::AntiMonotone.flip(), Monotonicity::Monotone);
        assert_eq!(Monotonicity::Independent.flip(), Monotonicity::Independent);
        assert_eq!(Monotonicity::Unknown.flip(), Monotonicity::Unknown);
    }

    #[test]
    fn codes_match_paper() {
        assert_eq!(Monotonicity::Monotone.code(), 'm');
        assert_eq!(Monotonicity::AntiMonotone.code(), 'a');
        assert_eq!(Monotonicity::Independent.code(), 'i');
        assert_eq!(Monotonicity::Unknown.code(), 'u');
        assert!(Monotonicity::Independent.is_monotone());
        assert!(!Monotonicity::Unknown.is_monotone());
    }

    #[test]
    fn default_operator_monotonicity_is_conservative() {
        let registry = Registry::new();
        assert_eq!(
            registry.operator_monotonicity("mystery", &[Monotonicity::Independent]),
            Monotonicity::Independent
        );
        assert_eq!(
            registry.operator_monotonicity("mystery", &[Monotonicity::Monotone]),
            Monotonicity::Unknown
        );
    }

    #[test]
    fn rules_can_be_registered_and_found() {
        let mut registry = Registry::new();
        registry.register(OperatorDef::new("widen", 1, |a| a.first().map(|x| x + 1)));
        registry.set_rules(
            "widen",
            OperatorRules {
                monotonicity: Some(Arc::new(|args: &[Monotonicity]| args[0])),
                ..OperatorRules::default()
            },
        );
        assert!(registry.rules("widen").is_some());
        assert!(registry.rules("other").is_none());
        assert_eq!(
            registry.operator_monotonicity("widen", &[Monotonicity::Monotone]),
            Monotonicity::Monotone
        );
        assert!(registry.operators().contains("widen"));
    }
}
