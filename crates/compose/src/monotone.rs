//! The MONOTONE procedure (paper §3.3).
//!
//! `MONOTONE` takes an expression and a relation symbol and reports whether
//! the expression is monotone (`m`), anti-monotone (`a`), independent (`i`)
//! or unknown (`u`) in that symbol. The procedure is *sound but incomplete*:
//! e.g. `σ_{c1}(S) − σ_{c2}(S)` reports `u` even though specific predicates
//! could make it monotone.

use mapcomp_algebra::Expr;

use crate::registry::{Monotonicity, Registry};

/// Compute the monotonicity of `expr` in the relation symbol `sym`.
///
/// The six basic operators use the table of paper §3.3: σ and π pass the
/// operand's value through, ∪/∩/× combine operands symmetrically, and −
/// combines its first operand with the *flipped* second operand. Skolem
/// pseudo-operators pass their operand through (adding a functionally
/// determined column preserves monotonicity). User-defined operators consult
/// the registry and default to `u` whenever any argument depends on `sym`.
///
/// The special relations `D^r` and `∅` are treated as independent of every
/// symbol, matching the paper's use of `D` in normalization rules.
pub fn monotonicity(expr: &Expr, sym: &str, registry: &Registry) -> Monotonicity {
    match expr {
        Expr::Rel(name) => {
            if name == sym {
                Monotonicity::Monotone
            } else {
                Monotonicity::Independent
            }
        }
        Expr::Domain(_) | Expr::Empty(_) => Monotonicity::Independent,
        Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Product(a, b) => {
            monotonicity(a, sym, registry).combine(monotonicity(b, sym, registry))
        }
        Expr::Difference(a, b) => {
            monotonicity(a, sym, registry).combine(monotonicity(b, sym, registry).flip())
        }
        Expr::Project(_, inner) | Expr::Select(_, inner) | Expr::Skolem(_, inner) => {
            monotonicity(inner, sym, registry)
        }
        Expr::Apply(name, args) => {
            let arg_monotonicity: Vec<Monotonicity> =
                args.iter().map(|arg| monotonicity(arg, sym, registry)).collect();
            registry.operator_monotonicity(name, &arg_monotonicity)
        }
    }
}

/// Is `expr` monotone (or independent) in `sym`?
pub fn is_monotone(expr: &Expr, sym: &str, registry: &Registry) -> bool {
    monotonicity(expr, sym, registry).is_monotone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{Pred, SkolemFn};

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn base_cases() {
        assert_eq!(monotonicity(&Expr::rel("S"), "S", &reg()), Monotonicity::Monotone);
        assert_eq!(monotonicity(&Expr::rel("T"), "S", &reg()), Monotonicity::Independent);
        assert_eq!(monotonicity(&Expr::domain(2), "S", &reg()), Monotonicity::Independent);
        assert_eq!(monotonicity(&Expr::empty(1), "S", &reg()), Monotonicity::Independent);
    }

    #[test]
    fn paper_examples() {
        // S × T is monotone in S.
        let e = Expr::rel("S").product(Expr::rel("T"));
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
        // σ_{c1}(S) − σ_{c2}(S) is unknown in S.
        let e = Expr::rel("S")
            .select(Pred::eq_const(0, 1))
            .difference(Expr::rel("S").select(Pred::eq_const(0, 2)));
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Unknown);
    }

    #[test]
    fn difference_polarity() {
        // R − S: monotone in R, anti-monotone in S (paper §1.3).
        let e = Expr::rel("R").difference(Expr::rel("S"));
        assert_eq!(monotonicity(&e, "R", &reg()), Monotonicity::Monotone);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::AntiMonotone);
        assert_eq!(monotonicity(&e, "T", &reg()), Monotonicity::Independent);
        // Double negation: R − (T − S) is monotone in S.
        let e = Expr::rel("R").difference(Expr::rel("T").difference(Expr::rel("S")));
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
    }

    #[test]
    fn select_project_and_skolem_pass_through() {
        let e = Expr::rel("S").select(Pred::eq_cols(0, 1)).project(vec![0]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
        let e = Expr::rel("T").difference(Expr::rel("S")).project(vec![0]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::AntiMonotone);
        let e = Expr::rel("S").skolem(SkolemFn::new("f", vec![0]));
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
    }

    #[test]
    fn mixed_polarity_is_unknown() {
        // S ∪ (T − S): m combined with a → u.
        let e = Expr::rel("S").union(Expr::rel("T").difference(Expr::rel("S")));
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Unknown);
    }

    #[test]
    fn registered_operators_have_rules() {
        // Left outer join: monotone in its first argument, unknown in its second.
        let e = Expr::apply("ljoin", vec![Expr::rel("S"), Expr::rel("T")]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
        let e = Expr::apply("ljoin", vec![Expr::rel("T"), Expr::rel("S")]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Unknown);
        // Transitive closure is monotone.
        let e = Expr::apply("tc", vec![Expr::rel("S")]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
        // Antijoin is anti-monotone in its second argument.
        let e = Expr::apply("antijoin", vec![Expr::rel("T"), Expr::rel("S")]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::AntiMonotone);
        // Semijoin is monotone in both arguments.
        let e = Expr::apply("semijoin", vec![Expr::rel("S"), Expr::rel("S")]);
        assert_eq!(monotonicity(&e, "S", &reg()), Monotonicity::Monotone);
    }

    #[test]
    fn unregistered_operator_is_conservative() {
        let registry = Registry::new();
        let e = Expr::apply("mystery", vec![Expr::rel("S")]);
        assert_eq!(monotonicity(&e, "S", &registry), Monotonicity::Unknown);
        let e = Expr::apply("mystery", vec![Expr::rel("T")]);
        assert_eq!(monotonicity(&e, "S", &registry), Monotonicity::Independent);
    }

    #[test]
    fn is_monotone_helper() {
        assert!(is_monotone(&Expr::rel("S"), "S", &reg()));
        assert!(is_monotone(&Expr::rel("T"), "S", &reg()));
        assert!(!is_monotone(&Expr::rel("T").difference(Expr::rel("S")), "S", &reg()));
    }
}
