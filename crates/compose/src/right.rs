//! Step 3 of ELIMINATE: right compose (paper §3.5).
//!
//! Right compose is dual to left compose: it isolates the symbol `S` on the
//! *right* of a single constraint `E1 ⊆ S` (right normalization, §3.5.1,
//! introducing Skolem functions to handle projection), replaces `S` by `E1`
//! inside every left-hand side that is monotone in `S` (basic right compose,
//! §3.5.2), removes the introduced Skolem functions (deskolemization,
//! §3.5.3), and finally eliminates the empty relation `∅` (§3.5.4).

use mapcomp_algebra::{Constraint, Expr, Signature, SkolemFn};

use crate::deskolem::deskolemize;
use crate::monotone::is_monotone;
use crate::outcome::FailureReason;
use crate::registry::Registry;
use crate::simplify::simplify_constraints;

/// Generates fresh Skolem function names, unique within one ELIMINATE call.
#[derive(Debug, Default)]
pub struct SkolemNamer {
    counter: usize,
}

impl SkolemNamer {
    /// Create a namer.
    pub fn new() -> Self {
        SkolemNamer::default()
    }

    /// Produce a fresh function name. The eliminated symbol is embedded for
    /// readability of intermediate output.
    pub fn fresh(&mut self, sym: &str) -> String {
        self.counter += 1;
        format!("f_{sym}_{}", self.counter)
    }
}

/// Attempt to eliminate `sym` by right composition.
pub fn right_compose(
    constraints: &[Constraint],
    sym: &str,
    sig: &Signature,
    registry: &Registry,
) -> Result<Vec<Constraint>, FailureReason> {
    if constraints.iter().any(|c| c.lhs.mentions(sym) && c.rhs.mentions(sym)) {
        return Err(FailureReason::SymbolOnBothSides);
    }

    // Convert equalities containing S into containments.
    let mut work: Vec<Constraint> = Vec::new();
    for constraint in constraints {
        if constraint.mentions(sym) {
            work.extend(constraint.as_containments());
        } else {
            work.push(constraint.clone());
        }
    }

    // Check left-monotonicity in S.
    for constraint in &work {
        if constraint.lhs.mentions(sym) && !is_monotone(&constraint.lhs, sym, registry) {
            return Err(FailureReason::NotLeftMonotone);
        }
    }

    // Right-normalize for S.
    let mut namer = SkolemNamer::new();
    let (lower_bound, mut others) = right_normalize(work, sym, sig, registry, &mut namer)?;

    // Basic right compose: substitute the lower bound for S in left-hand sides.
    for constraint in &mut others {
        if constraint.rhs.mentions(sym) {
            return Err(FailureReason::SymbolRemains);
        }
        if constraint.lhs.mentions(sym) {
            if !is_monotone(&constraint.lhs, sym, registry) {
                return Err(FailureReason::NotLeftMonotone);
            }
            constraint.lhs = constraint.lhs.substitute(sym, &lower_bound);
        }
    }

    // Deskolemize if normalization introduced Skolem functions.
    let deskolemized = if others.iter().any(Constraint::has_skolem) {
        deskolemize(others, sig, registry)?
    } else {
        others
    };

    // Eliminate the empty relation and drop trivial constraints.
    Ok(simplify_constraints(deskolemized, registry))
}

/// Right normalization (§3.5.1): bring the constraints into a form where
/// `sym` appears on the right of exactly one constraint `E1 ⊆ S`. Returns
/// `E1` and the remaining constraints.
pub fn right_normalize(
    mut work: Vec<Constraint>,
    sym: &str,
    sig: &Signature,
    registry: &Registry,
    namer: &mut SkolemNamer,
) -> Result<(Expr, Vec<Constraint>), FailureReason> {
    let sym_expr = Expr::Rel(sym.to_string());

    loop {
        let position = work.iter().position(|c| c.rhs.mentions(sym) && c.rhs != sym_expr);
        let Some(index) = position else { break };
        let constraint = work.remove(index);
        let rewritten = right_rewrite_step(&constraint, sym, sig, registry, namer)?;
        work.extend(rewritten);
    }

    // Collapse every `E_i ⊆ S` into a single `E_1 ∪ ... ∪ E_n ⊆ S`.
    let mut bounds: Vec<Expr> = Vec::new();
    let mut others: Vec<Constraint> = Vec::new();
    for constraint in work {
        if constraint.rhs == sym_expr {
            bounds.push(constraint.lhs);
        } else {
            others.push(constraint);
        }
    }
    let lower_bound = match bounds.len() {
        0 => {
            // "If S does not appear on the rhs of any expression, we add the
            // constraint ∅ ⊆ S."
            let arity = sig.arity(sym).map_err(|_| {
                FailureReason::RightNormalizeFailed(format!("unknown arity of {sym}"))
            })?;
            Expr::empty(arity)
        }
        _ => {
            let mut iter = bounds.into_iter();
            let first = iter.next().expect("non-empty");
            iter.fold(first, mapcomp_algebra::Expr::union)
        }
    };
    Ok((lower_bound, others))
}

/// One right-normalization rewriting step for a constraint whose rhs contains
/// `sym` in a complex expression. Implements the identities of §3.5.1:
///
/// ```text
/// ∪ : E1 ⊆ E2 ∪ E3  ↔  E1 − E3 ⊆ E2   (or E1 − E2 ⊆ E3)
/// ∩ : E1 ⊆ E2 ∩ E3  ↔  E1 ⊆ E2,  E1 ⊆ E3
/// × : E1 ⊆ E2 × E3  ↔  π_left(E1) ⊆ E2,  π_right(E1) ⊆ E3
/// − : E1 ⊆ E2 − E3  ↔  E1 ⊆ E2,  E1 ∩ E3 ⊆ ∅
/// π : E1 ⊆ π_I(E2)  ↔  π_ρ(f…(E1)) ⊆ E2      (Skolemization)
/// σ : E1 ⊆ σ_c(E2)  ↔  E1 ⊆ E2,  E1 ⊆ σ_c(D^r)
/// ```
fn right_rewrite_step(
    constraint: &Constraint,
    sym: &str,
    sig: &Signature,
    registry: &Registry,
    namer: &mut SkolemNamer,
) -> Result<Vec<Constraint>, FailureReason> {
    let lhs = constraint.lhs.clone();
    match &constraint.rhs {
        Expr::Union(a, b) => {
            // Move towards the operand that contains S.
            if a.mentions(sym) {
                Ok(vec![Constraint::containment(
                    lhs.difference(b.as_ref().clone()),
                    a.as_ref().clone(),
                )])
            } else {
                Ok(vec![Constraint::containment(
                    lhs.difference(a.as_ref().clone()),
                    b.as_ref().clone(),
                )])
            }
        }
        Expr::Intersect(a, b) => Ok(vec![
            Constraint::containment(lhs.clone(), a.as_ref().clone()),
            Constraint::containment(lhs, b.as_ref().clone()),
        ]),
        Expr::Product(a, b) => {
            let left_arity = a.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::RightNormalizeFailed(format!("cannot type product operand: {e}"))
            })?;
            let right_arity = b.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::RightNormalizeFailed(format!("cannot type product operand: {e}"))
            })?;
            let left_cols: Vec<usize> = (0..left_arity).collect();
            let right_cols: Vec<usize> = (left_arity..left_arity + right_arity).collect();
            Ok(vec![
                Constraint::containment(lhs.clone().project(left_cols), a.as_ref().clone()),
                Constraint::containment(lhs.project(right_cols), b.as_ref().clone()),
            ])
        }
        Expr::Difference(a, b) => {
            let arity = a.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::RightNormalizeFailed(format!("cannot type difference operand: {e}"))
            })?;
            Ok(vec![
                Constraint::containment(lhs.clone(), a.as_ref().clone()),
                Constraint::containment(lhs.intersect(b.as_ref().clone()), Expr::empty(arity)),
            ])
        }
        Expr::Project(cols, inner) => {
            skolemize_projection(lhs, cols, inner, sym, sig, registry, namer)
        }
        Expr::Select(pred, inner) => {
            let arity = inner.arity(sig, registry.operators()).map_err(|e| {
                FailureReason::RightNormalizeFailed(format!("cannot type selection operand: {e}"))
            })?;
            Ok(vec![
                Constraint::containment(lhs.clone(), inner.as_ref().clone()),
                Constraint::containment(lhs, Expr::domain(arity).select(pred.clone())),
            ])
        }
        Expr::Apply(name, args) => {
            let rule =
                registry.rules(name).and_then(|r| r.right_normalize.as_ref()).ok_or_else(|| {
                    FailureReason::RightNormalizeFailed(format!(
                        "no right-normalization rule for operator `{name}`"
                    ))
                })?;
            rule(&lhs, args).ok_or_else(|| {
                FailureReason::RightNormalizeFailed(format!(
                    "right-normalization rule for `{name}` did not apply"
                ))
            })
        }
        Expr::Skolem(..) => {
            Err(FailureReason::RightNormalizeFailed("Skolem function on the right".into()))
        }
        Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => {
            Err(FailureReason::RightNormalizeFailed(format!(
                "unexpected simple rhs while normalizing {sym}"
            )))
        }
    }
}

/// Skolemization of a projection on the right (§3.5.1):
/// `E1 ⊆ π_I(E2)` becomes `π_ρ(f_1 … f_k(E1)) ⊆ E2`, where one fresh Skolem
/// function is introduced per projected-away column of `E2` and `ρ` permutes
/// the columns of the Skolem-extended `E1` into `E2`'s column order.
///
/// When `E2` is a base relation whose declared key is contained in `I`, the
/// Skolem functions depend only on the key columns (this "increases our
/// chances of success in deskolemize").
fn skolemize_projection(
    lhs: Expr,
    cols: &[usize],
    inner: &Expr,
    sym: &str,
    sig: &Signature,
    registry: &Registry,
    namer: &mut SkolemNamer,
) -> Result<Vec<Constraint>, FailureReason> {
    let inner_arity = inner.arity(sig, registry.operators()).map_err(|e| {
        FailureReason::RightNormalizeFailed(format!("cannot type projection operand: {e}"))
    })?;
    let mut seen = std::collections::BTreeSet::new();
    if !cols.iter().all(|c| seen.insert(*c)) {
        return Err(FailureReason::RightNormalizeFailed(
            "projection with duplicate columns".into(),
        ));
    }
    let kept = cols.len();

    // Dependencies of the Skolem functions: all of E1's columns, or only the
    // key columns when the projection retains a declared key of a base
    // relation.
    let mut deps: Vec<usize> = (0..kept).collect();
    if let Expr::Rel(name) = inner {
        if let Some(key) = sig.key(name) {
            let key_positions: Option<Vec<usize>> =
                key.iter().map(|k| cols.iter().position(|c| c == k)).collect();
            if let Some(key_deps) = key_positions {
                if !key_deps.is_empty() {
                    deps = key_deps;
                }
            }
        }
    }

    // Append one Skolem column per projected-away position of E2.
    let missing: Vec<usize> = (0..inner_arity).filter(|p| !cols.contains(p)).collect();
    let mut extended = lhs;
    for _ in &missing {
        extended = extended.skolem(SkolemFn::new(namer.fresh(sym), deps.clone()));
    }

    // Permute into E2's column order: position p of E2 comes from column
    // `cols.position(p)` when kept, or from the Skolem column appended for it.
    let mut permutation = Vec::with_capacity(inner_arity);
    for p in 0..inner_arity {
        if let Some(i) = cols.iter().position(|&c| c == p) {
            permutation.push(i);
        } else {
            let j = missing.iter().position(|&m| m == p).expect("missing column");
            permutation.push(kept + j);
        }
    }
    Ok(vec![Constraint::containment(extended.project(permutation), inner.clone())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraint, parse_constraints};

    fn sig() -> Signature {
        Signature::from_arities([("R", 1), ("S", 2), ("T", 2), ("U", 2), ("V", 2), ("W", 4)])
    }

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn example_13_right_normalization() {
        // S × T ⊆ U',  T ⊆ σc(S) × π(R'): normalizing for S leaves the first
        // constraint alone and splits the second into three constraints.
        let sig = Signature::from_arities([("S", 1), ("T", 2), ("U", 3), ("R", 2)]);
        let constraints = parse_constraints("S * T <= U; T <= select[#0 = 5](S) * project[0](R)")
            .unwrap()
            .into_vec();
        let mut namer = SkolemNamer::new();
        let (bound, others) = right_normalize(constraints, "S", &sig, &reg(), &mut namer).unwrap();
        // π_0(T) ⊆ S is the only constraint with S alone on the right.
        assert_eq!(bound, Expr::rel("T").project(vec![0]));
        // The remaining constraints: the untouched S × T ⊆ U, the selection
        // residue π_0(T) ⊆ σc(D), and π_1(T) ⊆ π_0(R).
        assert_eq!(others.len(), 3);
        assert!(others.contains(&parse_constraint("S * T <= U").unwrap()));
        assert!(others.contains(&parse_constraint("project[0](T) <= select[#0 = 5](D^1)").unwrap()));
        assert!(others.contains(&parse_constraint("project[1](T) <= project[0](R)").unwrap()));
    }

    #[test]
    fn example_15_basic_right_compose() {
        let sig = Signature::from_arities([("S", 1), ("T", 2), ("U", 3), ("R", 2)]);
        let constraints = parse_constraints("S * T <= U; T <= select[#0 = 5](S) * project[0](R)")
            .unwrap()
            .into_vec();
        let result = right_compose(&constraints, "S", &sig, &reg()).unwrap();
        assert!(result.iter().all(|c| !c.mentions("S")));
        // Example 15: π(T) × T ⊆ U survives (plus the two residues).
        assert!(result.contains(&parse_constraint("project[0](T) * T <= U").unwrap()));
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn skolemization_of_projection() {
        // R ⊆ π_0(S) with R unary, S binary: f(R) ⊆ S.
        let constraints = parse_constraints("R <= project[0](S); S <= T").unwrap().into_vec();
        let mut namer = SkolemNamer::new();
        let (bound, others) =
            right_normalize(constraints, "S", &sig(), &reg(), &mut namer).unwrap();
        assert!(bound.has_skolem());
        assert_eq!(bound.skolem_names().len(), 1);
        assert_eq!(others, vec![parse_constraint("S <= T").unwrap()]);
    }

    #[test]
    fn full_right_compose_with_deskolemization() {
        // R ⊆ π_0(S), S ⊆ T: composing away S should give (up to trivial
        // projections) R ⊆ π_0(T).
        let constraints = parse_constraints("R <= project[0](S); S <= T").unwrap().into_vec();
        let result = right_compose(&constraints, "S", &sig(), &reg()).unwrap();
        assert!(result.iter().all(|c| !c.mentions("S")), "result still mentions S: {result:?}");
        assert!(!result.iter().any(Constraint::has_skolem));
        assert_eq!(result.len(), 1);
        let only = &result[0];
        // The surviving constraint must relate R and T.
        assert!(only.mentions("R") && only.mentions("T"));
    }

    #[test]
    fn empty_lower_bound_when_symbol_never_on_rhs() {
        // S only appears on left-hand sides: the lower bound is ∅ and the
        // constraints simplify away or lose S.
        let constraints = parse_constraints("S & T <= U; V <= T").unwrap().into_vec();
        let result = right_compose(&constraints, "S", &sig(), &reg()).unwrap();
        assert!(result.iter().all(|c| !c.mentions("S")));
        assert_eq!(result, vec![parse_constraint("V <= T").unwrap()]);
    }

    #[test]
    fn difference_and_union_rules() {
        // E1 ⊆ S − T and E2 ⊆ S ∪ T.
        let constraints = parse_constraints("U <= S - T; V <= S + T; S <= W2").unwrap().into_vec();
        let sig = Signature::from_arities([("S", 2), ("T", 2), ("U", 2), ("V", 2), ("W2", 2)]);
        let mut namer = SkolemNamer::new();
        let (bound, others) = right_normalize(constraints, "S", &sig, &reg(), &mut namer).unwrap();
        // Bound is U ∪ (V − T); residues are U ∩ T ⊆ ∅ and S ⊆ W2 untouched.
        assert_eq!(bound, Expr::rel("U").union(Expr::rel("V").difference(Expr::rel("T"))));
        assert!(others.contains(&parse_constraint("U & T <= empty^2").unwrap()));
        assert!(others.contains(&parse_constraint("S <= W2").unwrap()));
    }

    #[test]
    fn not_left_monotone_fails() {
        // (T − S) ⊆ U has S anti-monotone on the left.
        let constraints = parse_constraints("T - S <= U; V <= S").unwrap().into_vec();
        assert_eq!(
            right_compose(&constraints, "S", &sig(), &reg()),
            Err(FailureReason::NotLeftMonotone)
        );
    }

    #[test]
    fn symbol_on_both_sides_fails() {
        let constraints = parse_constraints("S & T <= S + U").unwrap().into_vec();
        assert_eq!(
            right_compose(&constraints, "S", &sig(), &reg()),
            Err(FailureReason::SymbolOnBothSides)
        );
    }

    #[test]
    fn key_minimizes_skolem_dependencies() {
        // S has key {0}; projecting columns 0,1 of a ternary S keeps the key,
        // so the Skolem function introduced for column 2 depends only on the
        // key column.
        let mut sig = Signature::new();
        sig.add_keyed("S", 3, vec![0]);
        sig.add_relation("R", 2);
        sig.add_relation("T", 3);
        let constraints = parse_constraints("R <= project[0,1](S); S <= T").unwrap().into_vec();
        let mut namer = SkolemNamer::new();
        let (bound, _) = right_normalize(constraints, "S", &sig, &reg(), &mut namer).unwrap();
        // Find the Skolem node and inspect its dependencies.
        fn find_skolem(expr: &Expr) -> Option<&SkolemFn> {
            match expr {
                Expr::Skolem(f, _) => Some(f),
                _ => expr.children().into_iter().find_map(find_skolem),
            }
        }
        let skolem = find_skolem(&bound).expect("skolem introduced");
        assert_eq!(skolem.deps, vec![0]);
    }

    #[test]
    fn selection_rule_splits() {
        let constraints = parse_constraints("U <= select[#0 = #1](S); S <= V").unwrap().into_vec();
        let result = right_compose(&constraints, "S", &sig(), &reg()).unwrap();
        assert!(result.iter().all(|c| !c.mentions("S")));
        assert!(result.contains(&parse_constraint("U <= V").unwrap()));
        assert!(result.contains(&parse_constraint("U <= select[#0 = #1](D^2)").unwrap()));
    }
}
