//! Simplification of the special relations `D^r` and `∅`.
//!
//! Left compose may introduce the active-domain relation `D` (paper §3.4.3)
//! and right compose may introduce the empty relation `∅` (paper §3.5.4).
//! This module implements the identities used to eliminate them "to the
//! extent that our knowledge of the operators allows", plus the final
//! cleanup that deletes constraints which have become trivially satisfied.

use mapcomp_algebra::{Constraint, ConstraintKind, Expr};

use crate::registry::Registry;

/// Apply the domain- and empty-relation identities bottom-up until no rule
/// applies, consulting user-supplied simplification rules for user-defined
/// operators.
pub fn simplify_expr(expr: &Expr, registry: &Registry) -> Expr {
    let mut current = expr.clone();
    loop {
        let next = rewrite_once(&current, registry);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn rewrite_once(expr: &Expr, registry: &Registry) -> Expr {
    // First rewrite children, then the node itself.
    let rebuilt = match expr {
        Expr::Rel(_) | Expr::Domain(_) | Expr::Empty(_) => expr.clone(),
        Expr::Union(a, b) => rewrite_once(a, registry).union(rewrite_once(b, registry)),
        Expr::Intersect(a, b) => rewrite_once(a, registry).intersect(rewrite_once(b, registry)),
        Expr::Product(a, b) => rewrite_once(a, registry).product(rewrite_once(b, registry)),
        Expr::Difference(a, b) => rewrite_once(a, registry).difference(rewrite_once(b, registry)),
        Expr::Project(cols, inner) => rewrite_once(inner, registry).project(cols.clone()),
        Expr::Select(pred, inner) => rewrite_once(inner, registry).select(pred.clone()),
        Expr::Skolem(f, inner) => rewrite_once(inner, registry).skolem(f.clone()),
        Expr::Apply(name, args) => {
            Expr::Apply(name.clone(), args.iter().map(|arg| rewrite_once(arg, registry)).collect())
        }
    };
    rewrite_node(&rebuilt, registry)
}

/// Single-node rewrite implementing the identities of §3.4.3 and §3.5.4.
fn rewrite_node(expr: &Expr, registry: &Registry) -> Expr {
    match expr {
        // -- active-domain identities (§3.4.3) -----------------------------
        // E ∪ D^r = D^r, E ∩ D^r = E, E − D^r = ∅, π_I(D^r) = D^|I|.
        Expr::Union(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Domain(r), _) | (_, Expr::Domain(r)) => Expr::domain(*r),
            // -- empty identities (§3.5.4): E ∪ ∅ = E ----------------------
            (Expr::Empty(_), other) => other.clone(),
            (other, Expr::Empty(_)) => other.clone(),
            _ => expr.clone(),
        },
        Expr::Intersect(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Domain(_), other) => other.clone(),
            (other, Expr::Domain(_)) => other.clone(),
            (Expr::Empty(r), _) | (_, Expr::Empty(r)) => Expr::empty(*r),
            _ => expr.clone(),
        },
        Expr::Difference(a, b) => match (a.as_ref(), b.as_ref()) {
            (_, Expr::Domain(r)) => Expr::empty(*r),
            (Expr::Empty(r), _) => Expr::empty(*r),
            (other, Expr::Empty(_)) => other.clone(),
            _ => expr.clone(),
        },
        Expr::Project(cols, inner) => match inner.as_ref() {
            Expr::Domain(_) => Expr::domain(cols.len()),
            Expr::Empty(_) => Expr::empty(cols.len()),
            _ => expr.clone(),
        },
        Expr::Select(_, inner) => match inner.as_ref() {
            // σ_c(∅) = ∅. (No identity for σ over D: the selection actually
            // constrains the tuples, §3.4.3.)
            Expr::Empty(r) => Expr::empty(*r),
            _ => expr.clone(),
        },
        Expr::Product(a, b) => match (a.as_ref(), b.as_ref()) {
            // D^r × D^s = D^(r+s); products with ∅ are empty whenever the
            // other operand's arity is syntactically known.
            (Expr::Domain(r), Expr::Domain(s)) => Expr::domain(r + s),
            (Expr::Empty(r), Expr::Domain(s)) | (Expr::Domain(s), Expr::Empty(r)) => {
                Expr::empty(r + s)
            }
            (Expr::Empty(r), Expr::Empty(s)) => Expr::empty(r + s),
            _ => expr.clone(),
        },
        Expr::Apply(name, args) => {
            let touches_special =
                args.iter().any(|arg| matches!(arg, Expr::Domain(_) | Expr::Empty(_)));
            if touches_special {
                if let Some(rule) = registry.rules(name).and_then(|r| r.simplify.as_ref()) {
                    if let Some(simplified) = rule(args) {
                        return simplified;
                    }
                }
            }
            expr.clone()
        }
        _ => expr.clone(),
    }
}

/// Is a constraint trivially satisfied by every instance, so that it can be
/// deleted? Covers `E ⊆ D^r` (§3.4.3), `∅ ⊆ E` (§3.5.4) and `E ⊆ E`.
pub fn is_trivial(constraint: &Constraint) -> bool {
    if constraint.lhs == constraint.rhs {
        return true;
    }
    match constraint.kind {
        ConstraintKind::Containment => {
            matches!(constraint.rhs, Expr::Domain(_)) || matches!(constraint.lhs, Expr::Empty(_))
        }
        ConstraintKind::Equality => false,
    }
}

/// Simplify both sides of every constraint and drop the ones that have become
/// trivially satisfied.
pub fn simplify_constraints(constraints: Vec<Constraint>, registry: &Registry) -> Vec<Constraint> {
    constraints
        .into_iter()
        .map(|c| Constraint {
            lhs: simplify_expr(&c.lhs, registry),
            rhs: simplify_expr(&c.rhs, registry),
            kind: c.kind,
        })
        .filter(|c| !is_trivial(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::Pred;

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn domain_identities() {
        let r = Expr::rel("R");
        assert_eq!(simplify_expr(&r.clone().union(Expr::domain(2)), &reg()), Expr::domain(2));
        assert_eq!(simplify_expr(&Expr::domain(2).union(r.clone()), &reg()), Expr::domain(2));
        assert_eq!(simplify_expr(&r.clone().intersect(Expr::domain(2)), &reg()), r.clone());
        assert_eq!(simplify_expr(&r.clone().difference(Expr::domain(2)), &reg()), Expr::empty(2));
        assert_eq!(simplify_expr(&Expr::domain(3).project(vec![0, 2]), &reg()), Expr::domain(2));
    }

    #[test]
    fn empty_identities() {
        let r = Expr::rel("R");
        assert_eq!(simplify_expr(&r.clone().union(Expr::empty(2)), &reg()), r.clone());
        assert_eq!(simplify_expr(&r.clone().intersect(Expr::empty(2)), &reg()), Expr::empty(2));
        assert_eq!(simplify_expr(&r.clone().difference(Expr::empty(2)), &reg()), r.clone());
        assert_eq!(simplify_expr(&Expr::empty(2).difference(r.clone()), &reg()), Expr::empty(2));
        assert_eq!(
            simplify_expr(&Expr::empty(2).select(Pred::eq_cols(0, 1)), &reg()),
            Expr::empty(2)
        );
        assert_eq!(simplify_expr(&Expr::empty(3).project(vec![1]), &reg()), Expr::empty(1));
    }

    #[test]
    fn nested_simplification_reaches_fixpoint() {
        // ((R ∩ D²) ∪ ∅) − D² simplifies to ∅.
        let e = Expr::rel("R")
            .intersect(Expr::domain(2))
            .union(Expr::empty(2))
            .difference(Expr::domain(2));
        assert_eq!(simplify_expr(&e, &reg()), Expr::empty(2));
        // Example 10/12 shape: (U × D^r) stays, but π(D^r) collapses.
        let e = Expr::domain(4).project(vec![0, 1]).union(Expr::rel("U"));
        assert_eq!(simplify_expr(&e, &reg()), Expr::domain(2));
    }

    #[test]
    fn products_of_special_relations() {
        assert_eq!(
            simplify_expr(&Expr::domain(1).product(Expr::domain(2)), &reg()),
            Expr::domain(3)
        );
        assert_eq!(simplify_expr(&Expr::empty(1).product(Expr::domain(2)), &reg()), Expr::empty(3));
    }

    #[test]
    fn user_operator_simplification() {
        let e = Expr::apply("semijoin", vec![Expr::rel("R").project(vec![0, 1]), Expr::empty(2)]);
        assert_eq!(simplify_expr(&e, &reg()), Expr::empty(2));
        let e = Expr::apply("tc", vec![Expr::empty(2)]);
        assert_eq!(simplify_expr(&e, &reg()), Expr::empty(2));
        // Without a rule the expression is left alone.
        let e = Expr::apply("mystery", vec![Expr::empty(2)]);
        assert_eq!(simplify_expr(&e, &Registry::new()), e);
    }

    #[test]
    fn trivial_constraints_are_dropped() {
        let constraints = vec![
            Constraint::containment(Expr::rel("R").intersect(Expr::rel("T")), Expr::domain(2)),
            Constraint::containment(Expr::rel("U"), Expr::domain(4).project(vec![0])),
            Constraint::containment(Expr::empty(1), Expr::rel("R")),
            Constraint::containment(Expr::rel("R"), Expr::rel("S")),
            Constraint::containment(Expr::rel("R"), Expr::rel("R")),
        ];
        let out = simplify_constraints(constraints, &reg());
        // Example 12: both domain-rhs constraints disappear; the ∅ ⊆ R
        // constraint disappears; R ⊆ R disappears; only R ⊆ S survives.
        assert_eq!(out, vec![Constraint::containment(Expr::rel("R"), Expr::rel("S"))]);
    }

    #[test]
    fn equalities_with_domain_are_kept() {
        let c = Constraint::equality(Expr::rel("R"), Expr::domain(2));
        assert!(!is_trivial(&c));
        let out = simplify_constraints(vec![c.clone()], &reg());
        assert_eq!(out, vec![c]);
    }
}
