//! # mapcomp-compose
//!
//! The mapping-composition algorithm of *"Implementing Mapping Composition"*
//! (Bernstein, Green, Melnik, Nash; VLDB 2006): a best-effort, algebra-based,
//! extensible composition component.
//!
//! Given constraints Σ12 over σ1 ∪ σ2 and Σ23 over σ2 ∪ σ3, [`compose()`]
//! eliminates as many σ2 symbols as possible from Σ12 ∪ Σ23, producing an
//! equivalent constraint set over σ1 ∪ σ3 (plus any σ2 symbols that resisted
//! elimination). Per symbol, [`eliminate()`] tries:
//!
//! 1. **View unfolding** (§3.2) — substitute a defining equality `S = E`.
//! 2. **Left compose** (§3.4) — isolate `S ⊆ E1` and substitute into
//!    monotone right-hand sides; then eliminate the `D` relation.
//! 3. **Right compose** (§3.5) — isolate `E1 ⊆ S` (Skolemizing projections),
//!    substitute into monotone left-hand sides, deskolemize, and eliminate
//!    the `∅` relation.
//!
//! The algorithm is extensible: the [`Registry`] carries monotonicity rules,
//! normalization rules and simplification rules per user-defined operator
//! ([`builtins`] ships left outer join, semijoin, antijoin and transitive
//! closure). [`verify`] provides a bounded-model equivalence checker used by
//! the test suite.
//!
//! Downstream of composition, [`exchange()`] materialises target instances
//! (data migration, paper Example 1) with a chase engine that defaults to
//! semi-naive, delta-driven evaluation over indexed conjunctive premise
//! plans ([`plan`]); the textbook naive loop is kept behind
//! [`ExchangeConfig::strategy`] as the equivalence reference.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builtins;
pub mod compose;
pub mod cq;
pub mod deskolem;
pub mod differential;
pub mod eliminate;
pub mod exchange;
pub mod left;
pub mod minimize;
pub mod monotone;
pub mod outcome;
pub mod plan;
pub mod registry;
pub mod right;
pub mod simplify;
pub mod verify;
pub mod view_unfold;

pub use compose::{
    compose, compose_constraints, ComposeConfig, ComposeResult, ComposeStats, SymbolOutcome,
    SymbolReport,
};
pub use differential::{
    parse_update, parse_updates, render_instance, DeltaReport, DifferentialChase, Sign, Update,
};
pub use eliminate::eliminate;
pub use exchange::{exchange, ChaseStrategy, ExchangeConfig, ExchangeResult, TerminationVerdict};
pub use minimize::{minimize_expr, minimize_mapping, remove_implied};
pub use monotone::{is_monotone, monotonicity};
pub use outcome::{EliminateFailure, EliminateStep, EliminateSuccess, FailureReason};
pub use plan::JoinOrder;
pub use registry::{Monotonicity, OperatorRules, Registry};
pub use verify::{check_equivalence, EquivalenceReport, VerifyConfig};
