//! Deskolemization (paper §3.5.3).
//!
//! Right normalization introduces Skolem functions to handle projection; the
//! resulting constraints are second-order ("they hold iff there exist some
//! values for the Skolem functions which satisfy the constraints"). This
//! module removes the Skolem functions again, producing ordinary first-order
//! algebraic constraints, or fails — deskolemization "is complex and may fail
//! at several of the steps", in which case the enclosing right compose fails
//! for the symbol being eliminated.
//!
//! The 12 steps of the paper's procedure map onto this implementation as
//! follows:
//!
//! | paper step | here |
//! |---|---|
//! | 1. Unnest | conversion of each lhs to [`Conjunctive`] form |
//! | 2. Check for cycles | nested-function check |
//! | 3. Check for repeated function symbols | per-constraint repeated-symbol check |
//! | 4. Align variables | canonical bodies must coincide within a component |
//! | 5–7. Restricting atoms / restricted constraints | constraints with Skolem-restricting equalities are rejected |
//! | 8–9. Check / combine dependencies | all applications of the component's functions must share one argument list that determines the heads (declared keys are used here) |
//! | 10. Remove redundant constraints | exact duplicates are dropped |
//! | 11. Replace functions with ∃-variables | constraints sharing functions are merged into one containment whose right side joins their right sides and projects the function columns away |
//! | 12. Eliminate unnecessary ∃-variables | identity projections introduced by step 11 are simplified |

use std::collections::{BTreeMap, BTreeSet};

use mapcomp_algebra::{Constraint, ConstraintKind, Expr, Pred, Signature, Value};

use crate::cq::{expr_to_conjunctive, Atom, Conjunctive, Term};
use crate::outcome::FailureReason;
use crate::registry::Registry;

/// A constraint whose left-hand side has been converted to conjunctive form.
#[derive(Debug, Clone)]
struct SkolemConstraint {
    cq: Conjunctive,
    rhs: Expr,
}

/// Remove every Skolem function from the given constraints, or fail.
pub fn deskolemize(
    constraints: Vec<Constraint>,
    sig: &Signature,
    registry: &Registry,
) -> Result<Vec<Constraint>, FailureReason> {
    let mut passthrough: Vec<Constraint> = Vec::new();
    let mut skolemized: Vec<SkolemConstraint> = Vec::new();

    // Step 1 (unnest): convert every Skolem-bearing lhs to conjunctive form.
    for constraint in constraints {
        if !constraint.has_skolem() {
            passthrough.push(constraint);
            continue;
        }
        if constraint.kind != ConstraintKind::Containment || constraint.rhs.has_skolem() {
            return Err(FailureReason::DeskolemizeFailed(
                "Skolem functions outside the left side of a containment".into(),
            ));
        }
        let cq = expr_to_conjunctive(&constraint.lhs, sig)
            .map_err(|msg| FailureReason::DeskolemizeFailed(format!("cannot unnest: {msg}")))?;
        skolemized.push(SkolemConstraint { cq, rhs: constraint.rhs });
    }

    // Steps 2 and 3: cycles (via nesting) and repeated function symbols.
    for sc in &skolemized {
        check_nesting_and_repetition(&sc.cq)?;
    }

    // Steps 5–7: constraints that restrict Skolem values via selections
    // cannot be handled.
    if skolemized.iter().any(|sc| !sc.cq.func_eqs.is_empty()) {
        return Err(FailureReason::DeskolemizeFailed(
            "selection restricts a Skolem function value".into(),
        ));
    }

    // Constraints whose Skolem columns were projected away are first-order
    // already: convert them straight back to algebra.
    let mut remaining: Vec<SkolemConstraint> = Vec::new();
    for sc in skolemized {
        if sc.cq.has_func() {
            remaining.push(sc);
        } else {
            let lhs = sc.cq.to_expr().map_err(|msg| {
                FailureReason::DeskolemizeFailed(format!("rebuild failed: {msg}"))
            })?;
            passthrough.push(Constraint::containment(simplify_identity(lhs), sc.rhs));
        }
    }

    // Step 10: drop exact duplicates.
    let mut deduped: Vec<SkolemConstraint> = Vec::new();
    for sc in remaining {
        if !deduped.iter().any(|other| other.cq == sc.cq && other.rhs == sc.rhs) {
            deduped.push(sc);
        }
    }

    // Group constraints into components connected by shared function names.
    let components = group_components(&deduped);

    // Steps 4, 8, 9, 11 per component.
    for component in components {
        let members: Vec<&SkolemConstraint> = component.iter().map(|&i| &deduped[i]).collect();
        let combined = combine_component(&members, sig, registry)?;
        passthrough.push(combined);
    }

    Ok(passthrough)
}

/// Steps 2–3: reject nested Skolem functions and one function symbol applied
/// to different argument lists inside a single constraint.
fn check_nesting_and_repetition(cq: &Conjunctive) -> Result<(), FailureReason> {
    let mut seen: BTreeMap<String, Vec<Term>> = BTreeMap::new();
    for term in cq.head.iter().chain(cq.func_eqs.iter().flat_map(|(a, b)| [a, b])) {
        if term.has_nested_func() {
            return Err(FailureReason::DeskolemizeFailed("nested Skolem functions".into()));
        }
        if let Term::Func(name, args) = term {
            match seen.get(name) {
                Some(existing) if existing != args => {
                    return Err(FailureReason::DeskolemizeFailed(format!(
                        "function `{name}` applied to different arguments"
                    )))
                }
                _ => {
                    seen.insert(name.clone(), args.clone());
                }
            }
        }
    }
    Ok(())
}

/// Partition constraint indices into connected components linked by shared
/// Skolem function names.
fn group_components(constraints: &[SkolemConstraint]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..constraints.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut owner: BTreeMap<String, usize> = BTreeMap::new();
    for (i, sc) in constraints.iter().enumerate() {
        for name in sc.cq.func_names() {
            match owner.get(&name) {
                None => {
                    owner.insert(name, i);
                }
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..constraints.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Steps 4, 8, 9 and 11 for one component: check alignment and dependency
/// conditions, then merge the member constraints into a single first-order
/// containment.
fn combine_component(
    members: &[&SkolemConstraint],
    sig: &Signature,
    registry: &Registry,
) -> Result<Constraint, FailureReason> {
    let first = members.first().expect("non-empty component");

    // Step 4 (align variables): all bodies must coincide after
    // canonicalization. Because basic right compose substitutes the same
    // lower bound everywhere, this is the common case.
    for member in members.iter().skip(1) {
        if !member.cq.same_body(&first.cq) {
            return Err(FailureReason::DeskolemizeFailed(
                "constraints sharing a Skolem function have different bodies".into(),
            ));
        }
    }

    // Steps 8–9 (dependencies): every function application in the component
    // must use one common argument list consisting of variables.
    let mut common_args: Option<Vec<Term>> = None;
    for member in members {
        for term in member.cq.func_terms() {
            if let Term::Func(_, args) = &term {
                if args.iter().any(|a| !matches!(a, Term::Var(_))) {
                    return Err(FailureReason::DeskolemizeFailed(
                        "Skolem function applied to a non-variable argument".into(),
                    ));
                }
                match &common_args {
                    None => common_args = Some(args.clone()),
                    Some(existing) if existing == args => {}
                    Some(_) => {
                        return Err(FailureReason::DeskolemizeFailed(
                            "Skolem functions with differing argument lists".into(),
                        ))
                    }
                }
            }
        }
    }
    let arg_vars: BTreeSet<usize> = common_args
        .iter()
        .flatten()
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            _ => None,
        })
        .collect();

    // The replacement of functions by existential variables is equivalent
    // only if the function arguments determine every universal variable
    // exported by the heads — either directly (the variable is an argument)
    // or through a declared key (the variable sits in an atom whose key
    // columns are all function arguments).
    let determined = determined_vars(&first.cq.atoms, &arg_vars, sig);
    for member in members {
        for var in member.cq.head_universal_vars() {
            if !determined.contains(&var) {
                return Err(FailureReason::DeskolemizeFailed(
                    "Skolem arguments do not determine an exported variable".into(),
                ));
            }
        }
    }

    // Step 11: build the combined constraint.
    let all_head_vars: BTreeSet<usize> =
        members.iter().flat_map(|m| m.cq.head_universal_vars()).collect();
    let (body, column_of) = build_body(&first.cq.atoms, &first.cq.const_of, &all_head_vars)
        .map_err(FailureReason::DeskolemizeFailed)?;
    let uvars: Vec<usize> = all_head_vars.iter().copied().collect();
    let lhs_columns: Vec<usize> = uvars.iter().map(|v| column_of[v]).collect();
    let lhs = simplify_identity(body.project(lhs_columns));

    // Right side: join the member right-hand sides on shared terms and
    // project onto the universal variables in the same order as the lhs.
    let mut product: Option<Expr> = None;
    let mut width = 0usize;
    let mut first_column: BTreeMap<Term, usize> = BTreeMap::new();
    let mut preds: Vec<Pred> = Vec::new();
    let mut constants: Vec<(usize, Value)> = Vec::new();
    for member in members {
        product = Some(match product {
            None => member.rhs.clone(),
            Some(prev) => prev.product(member.rhs.clone()),
        });
        for (j, term) in member.cq.head.iter().enumerate() {
            let column = width + j;
            match first_column.get(term) {
                Some(&first_col) => preds.push(Pred::eq_cols(first_col, column)),
                None => {
                    first_column.insert(term.clone(), column);
                }
            }
            // A head variable bound to a constant must also be constrained on
            // the right side.
            if let Term::Var(v) = term {
                if let Some(value) = first.cq.const_of.get(v) {
                    constants.push((column, value.clone()));
                }
            }
        }
        width += member.cq.head.len();
    }
    for (column, value) in constants {
        preds.push(Pred::eq_const(column, value));
    }
    let mut rhs = product.expect("component has at least one member");
    if !preds.is_empty() {
        rhs = rhs.select(Pred::and_all(preds));
    }
    let rhs_columns: Vec<usize> = uvars
        .iter()
        .map(|v| {
            first_column.get(&Term::Var(*v)).copied().ok_or_else(|| {
                FailureReason::DeskolemizeFailed(
                    "exported variable missing from every right-hand side".into(),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let rhs = simplify_identity(rhs.project(rhs_columns));

    // The registry is not consulted here, but keeping the parameter makes the
    // signature uniform with the other steps and leaves room for
    // operator-specific denormalization extensions (paper §1.3).
    let _ = registry;
    Ok(Constraint::containment(lhs, rhs))
}

/// Variables determined by the Skolem argument variables: the arguments
/// themselves plus any variable co-occurring in an atom whose declared key
/// columns are all arguments (paper §3.5.1: key knowledge "increases our
/// chances of success in deskolemize").
fn determined_vars(atoms: &[Atom], arg_vars: &BTreeSet<usize>, sig: &Signature) -> BTreeSet<usize> {
    let mut determined = arg_vars.clone();
    // Iterate to a fixpoint: a key-determined atom determines all of its
    // columns, which may in turn be keys of other atoms.
    loop {
        let mut changed = false;
        for atom in atoms {
            let Some(key) = sig.key(&atom.rel) else { continue };
            let key_known =
                key.iter().all(|&k| atom.args.get(k).is_some_and(|v| determined.contains(v)));
            if key_known {
                for &v in &atom.args {
                    if determined.insert(v) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return determined;
        }
    }
}

/// Build an algebra expression whose columns cover all variables of the body
/// atoms plus the listed head variables (head variables without an atom
/// occurrence are given active-domain columns). Returns the expression and
/// the variable → column map.
fn build_body(
    atoms: &[Atom],
    const_of: &BTreeMap<usize, Value>,
    head_vars: &BTreeSet<usize>,
) -> Result<(Expr, BTreeMap<usize, usize>), String> {
    let mut column_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut preds: Vec<Pred> = Vec::new();
    let mut expr: Option<Expr> = None;
    let mut width = 0usize;

    for atom in atoms {
        let rel = Expr::rel(atom.rel.clone());
        expr = Some(match expr {
            None => rel,
            Some(prev) => prev.product(rel),
        });
        for (offset, var) in atom.args.iter().enumerate() {
            let column = width + offset;
            match column_of.get(var) {
                None => {
                    column_of.insert(*var, column);
                }
                Some(first) => preds.push(Pred::eq_cols(*first, column)),
            }
        }
        width += atom.args.len();
    }

    for var in head_vars {
        if !column_of.contains_key(var) {
            expr = Some(match expr {
                None => Expr::domain(1),
                Some(prev) => prev.product(Expr::domain(1)),
            });
            column_of.insert(*var, width);
            width += 1;
        }
    }

    for (var, value) in const_of {
        if let Some(column) = column_of.get(var) {
            preds.push(Pred::eq_const(*column, value.clone()));
        }
    }

    let base = expr.ok_or_else(|| "empty body".to_string())?;
    let combined = if preds.is_empty() { base } else { base.select(Pred::and_all(preds)) };
    Ok((combined, column_of))
}

/// Step 12 flavoured cleanup: remove projections that are the identity over
/// their operand's natural column order when the operand is a base relation
/// or a previously simplified expression of known width.
fn simplify_identity(expr: Expr) -> Expr {
    if let Expr::Project(cols, inner) = &expr {
        let natural: Vec<usize> = (0..cols.len()).collect();
        if *cols == natural {
            if let Some(width) = syntactic_arity(inner) {
                if width == cols.len() {
                    return (**inner).clone();
                }
            }
        }
    }
    expr
}

/// Arity of an expression when it is syntactically evident (no signature
/// lookup); `None` otherwise.
fn syntactic_arity(expr: &Expr) -> Option<usize> {
    match expr {
        Expr::Domain(r) | Expr::Empty(r) => Some(*r),
        Expr::Project(cols, _) => Some(cols.len()),
        Expr::Select(_, inner) => syntactic_arity(inner),
        Expr::Skolem(_, inner) => syntactic_arity(inner).map(|a| a + 1),
        Expr::Product(a, b) => Some(syntactic_arity(a)? + syntactic_arity(b)?),
        Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Difference(a, b) => {
            syntactic_arity(a).or_else(|| syntactic_arity(b))
        }
        Expr::Rel(_) | Expr::Apply(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{eval, parse_constraint, parse_expr, tuple, Instance, OperatorSet};

    fn sig() -> Signature {
        Signature::from_arities([
            ("R", 1),
            ("S", 2),
            ("T", 2),
            ("U", 2),
            ("W", 2),
            ("C", 2),
            ("E", 2),
            ("D2", 2),
        ])
    }

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn passthrough_without_skolems() {
        let constraints = vec![parse_constraint("R <= project[0](S)").unwrap()];
        let out = deskolemize(constraints.clone(), &sig(), &reg()).unwrap();
        assert_eq!(out, constraints);
    }

    #[test]
    fn single_function_single_constraint() {
        // π_{0,1}(f(R)) ⊆ W, i.e. ∀x R(x) → ∃y W(x,y), which in algebra is
        // (up to trivial projections) R ⊆ π_0(W).
        let constraint = parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap();
        let out = deskolemize(vec![constraint], &sig(), &reg()).unwrap();
        assert_eq!(out.len(), 1);
        let only = &out[0];
        assert!(!only.has_skolem());
        assert!(only.mentions("R") && only.mentions("W"));

        // Semantic check on a small instance: R = {1,2}, W = {(1,5),(2,6)}
        // satisfies it; R = {3}, W = {} does not.
        let ops = OperatorSet::new();
        let mut good = Instance::new();
        good.insert("R", tuple([1i64]));
        good.insert("R", tuple([2i64]));
        good.insert("W", tuple([1i64, 5]));
        good.insert("W", tuple([2i64, 6]));
        assert!(only.satisfied_by(&sig(), &ops, &good).unwrap());
        let mut bad = Instance::new();
        bad.insert("R", tuple([3i64]));
        bad.insert("W", tuple([1i64, 5]));
        assert!(!only.satisfied_by(&sig(), &ops, &bad).unwrap());
    }

    #[test]
    fn shared_function_joins_right_sides() {
        // f shared between two constraints: ∀x R(x) → ∃y (W(x,y) ∧ U(x,y)).
        let constraints = vec![
            parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap(),
            parse_constraint("project[0,1](skolem:f[0](R)) <= U").unwrap(),
        ];
        let out = deskolemize(constraints, &sig(), &reg()).unwrap();
        assert_eq!(out.len(), 1);
        let only = &out[0];
        assert!(only.mentions("W") && only.mentions("U"));

        // Semantics: witnesses must agree between W and U.
        let ops = OperatorSet::new();
        let mut agree = Instance::new();
        agree.insert("R", tuple([1i64]));
        agree.insert("W", tuple([1i64, 7]));
        agree.insert("U", tuple([1i64, 7]));
        assert!(only.satisfied_by(&sig(), &ops, &agree).unwrap());
        let mut disagree = Instance::new();
        disagree.insert("R", tuple([1i64]));
        disagree.insert("W", tuple([1i64, 7]));
        disagree.insert("U", tuple([1i64, 8]));
        assert!(!only.satisfied_by(&sig(), &ops, &disagree).unwrap());
    }

    #[test]
    fn distinct_functions_stay_separate() {
        let constraints = vec![
            parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap(),
            parse_constraint("project[0,1](skolem:g[0](R)) <= U").unwrap(),
        ];
        let out = deskolemize(constraints, &sig(), &reg()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| !c.has_skolem()));
    }

    #[test]
    fn projected_away_function_becomes_first_order() {
        // π_0(f(R)) ⊆ R: the Skolem column is dropped, so this is simply a
        // tautology-shaped first-order constraint.
        let constraint = parse_constraint("project[0](skolem:f[0](R)) <= R").unwrap();
        let out = deskolemize(vec![constraint], &sig(), &reg()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out[0].has_skolem());
    }

    #[test]
    fn example_17_repeated_function_fails() {
        // The f function applied to the same argument twice is fine, but the
        // same function applied to *different* arguments in one constraint
        // (the paper's Example 17 failure at step 3) is rejected.
        let expr =
            parse_expr("project[0,2,3](select[#1 = #2](product(skolem:f[0](R), skolem:f[1](S))))")
                .unwrap();
        let constraint = Constraint::containment(expr, Expr::rel("D2"));
        let err = deskolemize(vec![constraint], &sig(), &reg()).unwrap_err();
        assert!(matches!(err, FailureReason::DeskolemizeFailed(_)));
    }

    #[test]
    fn nested_functions_fail() {
        let constraint =
            parse_constraint("project[0,2](skolem:g[1](skolem:f[0](R))) <= W").unwrap();
        let err = deskolemize(vec![constraint], &sig(), &reg()).unwrap_err();
        match err {
            FailureReason::DeskolemizeFailed(msg) => assert!(msg.contains("nested")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn restricting_selection_fails() {
        let constraint =
            parse_constraint("project[0,1](select[#1 = 7](skolem:f[0](R))) <= W").unwrap();
        let err = deskolemize(vec![constraint], &sig(), &reg()).unwrap_err();
        match err {
            FailureReason::DeskolemizeFailed(msg) => assert!(msg.contains("restricts")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn misaligned_bodies_fail() {
        let constraints = vec![
            parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap(),
            parse_constraint("project[0,1](skolem:f[0](project[0](S))) <= U").unwrap(),
        ];
        let err = deskolemize(constraints, &sig(), &reg()).unwrap_err();
        assert!(matches!(err, FailureReason::DeskolemizeFailed(_)));
    }

    #[test]
    fn undetermined_exported_variable_fails() {
        // f depends only on column 0 of S, but column 1 of S (not determined
        // by the argument and not covered by a key) is exported.
        let constraint =
            parse_constraint("project[0,1,2](skolem:f[0](S)) <= product(S, D)").unwrap();
        let err = deskolemize(vec![constraint], &sig(), &reg()).unwrap_err();
        match err {
            FailureReason::DeskolemizeFailed(msg) => assert!(msg.contains("determine")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keys_rescue_undetermined_variables() {
        // Same as above, but S declares column 0 as its key, so column 1 is
        // functionally determined and the constraint deskolemizes.
        let mut sig = Signature::new();
        sig.add_keyed("S", 2, vec![0]);
        sig.add_relation("W", 3);
        sig.add_relation("R", 1);
        let constraint = parse_constraint("project[0,1,2](skolem:f[0](S)) <= W").unwrap();
        let out = deskolemize(vec![constraint], &sig, &reg()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out[0].has_skolem());
    }

    #[test]
    fn duplicates_are_removed() {
        let constraint = parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap();
        let out = deskolemize(vec![constraint.clone(), constraint], &sig(), &reg()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn deskolemized_output_matches_skolem_semantics_on_models() {
        // ∃f ∀x R(x) → W(x, f(x)) is equivalent to ∀x R(x) → ∃y W(x,y); check
        // the produced constraint agrees with the latter on several instances.
        let constraint = parse_constraint("project[0,1](skolem:f[0](R)) <= W").unwrap();
        let out = deskolemize(vec![constraint], &sig(), &reg()).unwrap();
        let ops = OperatorSet::new();
        let manual = parse_constraint("R <= project[0](W)").unwrap();
        for r_values in [vec![], vec![1i64], vec![1, 2], vec![4]] {
            for w_pairs in [vec![], vec![(1i64, 9i64)], vec![(1, 9), (2, 3)], vec![(4, 4)]] {
                let mut inst = Instance::new();
                for v in &r_values {
                    inst.insert("R", tuple([*v]));
                }
                for (a, b) in &w_pairs {
                    inst.insert("W", tuple([*a, *b]));
                }
                let expected = manual.satisfied_by(&sig(), &ops, &inst).unwrap();
                let got = out[0].satisfied_by(&sig(), &ops, &inst).unwrap();
                assert_eq!(expected, got, "mismatch on R={r_values:?} W={w_pairs:?}");
            }
        }
        // Also ensure the lhs/rhs evaluate without error on an empty instance.
        let empty = Instance::new();
        let _ = eval(&out[0].lhs, &sig(), &ops, &empty).unwrap();
    }
}
