//! Indexed conjunctive plans for the semi-naive chase engine.
//!
//! A chase rule's premise that converts to conjunctive form (a
//! select–project–join over base relations, the monotone fragment) is
//! compiled once into a [`PremisePlan`]: body atoms over variables, constant
//! bindings, and a head projection. The plan is then evaluated by joining
//! the atoms left to right with hash indexes on the already-bound columns
//! ([`TupleIndex`]), instead of materialising the premise expression's
//! product.
//!
//! Two evaluation modes support the semi-naive discipline of
//! [`crate::exchange()`]:
//!
//! * [`PremisePlan::eval_full`] — the classic join over the full frontier
//!   (used once, when a rule first evaluates);
//! * [`PremisePlan::eval_delta`] — the delta-restricted join: one atom at a
//!   time is bound to the rule's *delta* (tuples inserted since the rule last
//!   evaluated) while the remaining atoms range over the full frontier, so
//!   only premise tuples that are genuinely new can be produced.
//!
//! Work is bounded by a [`WorkBudget`] counting produced binding rows, the
//! same safety valve as the evaluator's tuple budget.
//!
//! Atom join order is chosen per evaluation by a [`JoinOrder`] policy:
//! the default greedy policy starts from the smallest relation and then
//! repeatedly picks the atom with the most already-bound columns (smallest
//! relation on ties), which keeps intermediate binding sets — and therefore
//! budget charges — small on wide premises. The historical source-order
//! policy is kept behind [`JoinOrder::SourceOrder`] so the equivalence suite
//! can pin the exact budget-charging sequence of earlier releases.

use std::cell::{Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use mapcomp_algebra::{AlgebraError, Instance, Signature, Tuple, Value};

use crate::cq::{expr_to_conjunctive, Atom, Conjunctive, Term};

/// A store of tuples with lazily built hash indexes on requested column
/// sets.
///
/// One `TupleIndex` holds the chase's live frontier (source ∪ target,
/// updated in place as the chase fires — see [`TupleIndex::insert_row`] /
/// [`TupleIndex::remove_row`]); small transient ones hold per-rule deltas.
/// Indexes are keyed by `(relation, columns)` and built on first use, so a
/// run that touches only a few rules indexes only what those rules join on.
pub struct TupleIndex {
    rows: BTreeMap<String, Vec<Tuple>>,
    indexes: RefCell<HashMap<(String, Vec<usize>), ColumnIndex>>,
    /// Row → position maps, built per relation on first mutation. Only
    /// mutated indexes pay for them; read-only snapshots (delta slices)
    /// never allocate one.
    positions: HashMap<String, HashMap<Tuple, usize>>,
}

/// Join-key values → positions of the rows carrying them.
type ColumnIndex = HashMap<Vec<Value>, Vec<usize>>;

impl TupleIndex {
    /// Snapshot the given relations from a stack of instances (later layers
    /// may duplicate earlier ones; duplicates are dropped).
    pub fn from_layers<'a>(
        layers: &[&Instance],
        relations: impl IntoIterator<Item = &'a String>,
    ) -> Self {
        let mut rows = BTreeMap::new();
        for name in relations {
            let mut seen: BTreeSet<&Tuple> = BTreeSet::new();
            let mut out: Vec<Tuple> = Vec::new();
            for layer in layers {
                if let Some(rel) = layer.get_ref(name) {
                    for tuple in rel.iter() {
                        if seen.insert(tuple) {
                            out.push(tuple.clone());
                        }
                    }
                }
            }
            rows.insert(name.clone(), out);
        }
        TupleIndex { rows, indexes: RefCell::new(HashMap::new()), positions: HashMap::new() }
    }

    /// Build from explicit per-relation rows (used for delta slices).
    pub fn from_rows(rows: BTreeMap<String, Vec<Tuple>>) -> Self {
        TupleIndex { rows, indexes: RefCell::new(HashMap::new()), positions: HashMap::new() }
    }

    /// Ensure the row → position map of `rel` exists and return it, along
    /// with the relation's rows (split borrows for the mutators below).
    fn rel_mut(&mut self, rel: &str) -> (&mut Vec<Tuple>, &mut HashMap<Tuple, usize>) {
        let rows = self.rows.entry(rel.to_string()).or_default();
        let positions = self.positions.entry(rel.to_string()).or_insert_with(|| {
            rows.iter().enumerate().map(|(position, row)| (row.clone(), position)).collect()
        });
        (rows, positions)
    }

    /// Membership test (builds the position map of `rel` on first use).
    pub fn contains_row(&mut self, rel: &str, row: &Tuple) -> bool {
        let (_, positions) = self.rel_mut(rel);
        positions.contains_key(row)
    }

    /// Insert a row in place, keeping every already-built hash index of the
    /// relation consistent. Returns `false` (and changes nothing) when the
    /// row is already present — the live chase frontier is a set.
    pub fn insert_row(&mut self, rel: &str, row: Tuple) -> bool {
        let (rows, positions) = self.rel_mut(rel);
        if positions.contains_key(&row) {
            return false;
        }
        let position = rows.len();
        rows.push(row.clone());
        positions.insert(row.clone(), position);
        for ((index_rel, cols), index) in self.indexes.borrow_mut().iter_mut() {
            if index_rel != rel || cols.iter().any(|&c| c >= row.len()) {
                continue;
            }
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            index.entry(key).or_default().push(position);
        }
        true
    }

    /// Remove a row in place (swap-remove; the displaced last row's position
    /// and index entries are patched). Returns `false` when the row was not
    /// present.
    pub fn remove_row(&mut self, rel: &str, row: &Tuple) -> bool {
        let (rows, positions) = self.rel_mut(rel);
        let Some(position) = positions.remove(row) else { return false };
        rows.swap_remove(position);
        let moved = (position < rows.len()).then(|| rows[position].clone());
        if let Some(moved_row) = &moved {
            positions.insert(moved_row.clone(), position);
        }
        let last = rows.len();
        for ((index_rel, cols), index) in self.indexes.borrow_mut().iter_mut() {
            if index_rel != rel {
                continue;
            }
            if !cols.iter().any(|&c| c >= row.len()) {
                let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
                if let Some(entry) = index.get_mut(&key) {
                    entry.retain(|&p| p != position);
                    if entry.is_empty() {
                        index.remove(&key);
                    }
                }
            }
            // The former last row now lives at `position`.
            if let Some(moved_row) = &moved {
                if cols.iter().any(|&c| c >= moved_row.len()) {
                    continue;
                }
                let key: Vec<Value> = cols.iter().map(|&c| moved_row[c].clone()).collect();
                if let Some(entry) = index.get_mut(&key) {
                    for p in entry.iter_mut() {
                        if *p == last {
                            *p = position;
                        }
                    }
                }
            }
        }
        true
    }

    /// Is there any row for `rel`?
    pub fn has_rows(&self, rel: &str) -> bool {
        self.rows.get(rel).is_some_and(|rows| !rows.is_empty())
    }

    /// Number of rows held for `rel` (the cardinality the greedy join order
    /// ranks atoms by).
    pub fn row_count(&self, rel: &str) -> usize {
        self.rows.get(rel).map_or(0, Vec::len)
    }

    /// All rows of one relation.
    fn scan(&self, rel: &str) -> &[Tuple] {
        self.rows.get(rel).map_or(&[], Vec::as_slice)
    }

    /// Borrow the hash index of `rel` keyed on `cols`, building it on first
    /// use. Resolved once per join stage (the probe columns are static per
    /// stage), then probed per binding row without further allocation.
    fn index(&self, rel: &str, cols: &[usize]) -> Ref<'_, ColumnIndex> {
        let index_key = (rel.to_string(), cols.to_vec());
        if !self.indexes.borrow().contains_key(&index_key) {
            let mut built: ColumnIndex = HashMap::new();
            for (position, tuple) in self.scan(rel).iter().enumerate() {
                // Rows shorter than the probed columns (ragged, out of
                // contract) can never match an atom of the declared arity;
                // leaving them unindexed mirrors the join loop's length
                // check.
                if cols.iter().any(|&c| c >= tuple.len()) {
                    continue;
                }
                let key: Vec<Value> = cols.iter().map(|&c| tuple[c].clone()).collect();
                built.entry(key).or_default().push(position);
            }
            self.indexes.borrow_mut().insert(index_key.clone(), built);
        }
        Ref::map(self.indexes.borrow(), |indexes| {
            indexes.get(&index_key).expect("index built above")
        })
    }

    fn row(&self, rel: &str, position: usize) -> &Tuple {
        &self.rows[rel][position]
    }
}

/// A budget on binding rows produced while evaluating plans.
pub struct WorkBudget {
    used: usize,
    budget: usize,
}

impl WorkBudget {
    /// A budget of `budget` rows.
    pub fn new(budget: usize) -> Self {
        WorkBudget { used: 0, budget }
    }

    /// Binding rows charged so far.
    pub fn used(&self) -> usize {
        self.used
    }

    fn charge(&mut self, amount: usize) -> Result<(), AlgebraError> {
        self.used = self.used.saturating_add(amount);
        if self.used > self.budget {
            return Err(AlgebraError::EvalBudgetExceeded { budget: self.budget });
        }
        Ok(())
    }
}

/// One atom's tuple supply during a join: the full frontier, optionally
/// extended by a delta slice (full ∪ delta covers the live instance).
#[derive(Clone, Copy)]
enum AtomSource<'a> {
    Full { full: &'a TupleIndex, topup: Option<&'a TupleIndex> },
    Delta(&'a TupleIndex),
}

impl AtomSource<'_> {
    fn parts(&self) -> Vec<&TupleIndex> {
        match self {
            AtomSource::Full { full, topup } => {
                let mut parts = vec![*full];
                parts.extend(*topup);
                parts
            }
            AtomSource::Delta(delta) => vec![*delta],
        }
    }
}

/// Atom join-order policy of a compiled premise plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinOrder {
    /// Join atoms left to right as written. Kept for exact budget-charging
    /// parity with earlier releases (and with the naive chase strategy's
    /// expression evaluation); the equivalence suite pins this policy.
    SourceOrder,
    /// Greedy smallest-relation-first: open with the smallest relation, then
    /// repeatedly take the atom with the most already-bound columns, breaking
    /// ties by relation cardinality and then by source position. Produces
    /// the same result set as any other order — only the number of
    /// intermediate binding rows (and hence budget consumption) changes.
    #[default]
    Greedy,
}

/// A compiled conjunctive premise: body atoms, constant bindings, and the
/// head projection (all head terms are atom-bound or constant-bound
/// variables).
pub struct PremisePlan {
    atoms: Vec<Atom>,
    const_of: BTreeMap<usize, Value>,
    head: Vec<usize>,
    var_count: usize,
    relations: BTreeSet<String>,
    order: JoinOrder,
}

impl PremisePlan {
    /// Compile a premise expression. Returns `None` when the expression is
    /// outside the plannable fragment (non-conjunctive operators, Skolem
    /// terms, head variables unconstrained by any atom — i.e. active-domain
    /// columns — or function-term restrictions); the chase falls back to full
    /// expression evaluation for those rules.
    pub fn compile(premise: &mapcomp_algebra::Expr, sig: &Signature) -> Option<PremisePlan> {
        let cq: Conjunctive = expr_to_conjunctive(premise, sig).ok()?;
        if cq.atoms.is_empty() || !cq.func_eqs.is_empty() {
            return None;
        }
        let body_vars = cq.body_vars();
        let mut head = Vec::with_capacity(cq.head.len());
        for term in &cq.head {
            match term {
                Term::Var(v) if body_vars.contains(v) || cq.const_of.contains_key(v) => {
                    head.push(*v);
                }
                _ => return None,
            }
        }
        let relations = cq.atoms.iter().map(|atom| atom.rel.clone()).collect();
        Some(PremisePlan {
            atoms: cq.atoms,
            const_of: cq.const_of,
            head,
            var_count: cq.var_count,
            relations,
            order: JoinOrder::default(),
        })
    }

    /// This plan with a different join-order policy.
    pub fn with_order(mut self, order: JoinOrder) -> Self {
        self.order = order;
        self
    }

    /// Relations the premise reads.
    pub fn relations(&self) -> &BTreeSet<String> {
        &self.relations
    }

    /// The atom join order a full evaluation over `full` (∪ `topup`) would
    /// use, as indices into the premise's atoms in source order. Exposed so
    /// tests can assert the greedy policy actually reordered a premise.
    pub fn join_order(&self, full: &TupleIndex, topup: Option<&TupleIndex>) -> Vec<usize> {
        self.ordered(None, &|rel| full.row_count(rel) + topup.map_or(0, |t| t.row_count(rel)))
    }

    /// Pick the atom visit order under the configured policy. `first` forces
    /// a leading atom (the delta-bound atom of [`PremisePlan::eval_delta`]);
    /// `sizes` reports per-relation cardinalities for the greedy ranking.
    fn ordered(&self, first: Option<usize>, sizes: &dyn Fn(&str) -> usize) -> Vec<usize> {
        let rest = |skip: Option<usize>| (0..self.atoms.len()).filter(move |i| Some(*i) != skip);
        match self.order {
            JoinOrder::SourceOrder => first.into_iter().chain(rest(first)).collect(),
            JoinOrder::Greedy => {
                let mut bound: BTreeSet<usize> = self.const_of.keys().copied().collect();
                let mut order: Vec<usize> = first.into_iter().collect();
                if let Some(lead) = first {
                    bound.extend(self.atoms[lead].args.iter().copied());
                }
                let mut remaining: Vec<usize> = rest(first).collect();
                while !remaining.is_empty() {
                    let best = remaining
                        .iter()
                        .copied()
                        .min_by_key(|&i| {
                            let atom = &self.atoms[i];
                            let joined = atom.args.iter().filter(|v| bound.contains(v)).count();
                            (std::cmp::Reverse(joined), sizes(&atom.rel), i)
                        })
                        .expect("non-empty remaining set");
                    remaining.retain(|&i| i != best);
                    bound.extend(self.atoms[best].args.iter().copied());
                    order.push(best);
                }
                order
            }
        }
    }

    /// Evaluate the premise over the full frontier.
    pub fn eval_full(
        &self,
        full: &TupleIndex,
        topup: Option<&TupleIndex>,
        work: &mut WorkBudget,
    ) -> Result<BTreeSet<Tuple>, AlgebraError> {
        let order = self.join_order(full, topup);
        let sources: Vec<AtomSource<'_>> =
            order.iter().map(|_| AtomSource::Full { full, topup }).collect();
        self.join(&order, &sources, work)
    }

    /// Evaluate the delta-restricted premise: the union, over every atom
    /// position `d` whose relation has delta rows, of the join with atom `d`
    /// bound to the delta and every other atom over the full live state.
    ///
    /// `delta` is the caller's change set (everything since it last
    /// evaluated) and drives the join; `topup` must hold exactly the rows
    /// missing from the `full` snapshot (insertions after it was taken), so
    /// non-delta atoms see the complete state without enumerating any row
    /// twice — an overlap would multiply duplicate binding rows (and budget
    /// charges) through every later stage.
    pub fn eval_delta(
        &self,
        full: &TupleIndex,
        topup: Option<&TupleIndex>,
        delta: &TupleIndex,
        work: &mut WorkBudget,
    ) -> Result<BTreeSet<Tuple>, AlgebraError> {
        let mut out = BTreeSet::new();
        for d in 0..self.atoms.len() {
            if !delta.has_rows(&self.atoms[d].rel) {
                continue;
            }
            // The delta atom is joined first so every binding is anchored in
            // a new tuple; the remaining atoms follow the configured policy.
            let order = self.ordered(Some(d), &|rel| {
                full.row_count(rel) + topup.map_or(0, |t| t.row_count(rel))
            });
            let sources: Vec<AtomSource<'_>> = order
                .iter()
                .map(|&i| {
                    if i == d {
                        AtomSource::Delta(delta)
                    } else {
                        AtomSource::Full { full, topup }
                    }
                })
                .collect();
            out.extend(self.join(&order, &sources, work)?);
        }
        Ok(out)
    }

    /// Is `head` (a previously fired premise tuple) derivable over `full`
    /// right now? Joins the atoms with the head variables pre-bound to the
    /// tuple's values, so every probe is as selective as the tuple itself —
    /// the rederivation check of the differential chase, sublinear in the
    /// instance wherever the head columns are indexed.
    pub fn supports(
        &self,
        full: &TupleIndex,
        head: &Tuple,
        work: &mut WorkBudget,
    ) -> Result<bool, AlgebraError> {
        if head.len() != self.head.len() {
            return Ok(false);
        }
        let mut seed: Vec<Option<Value>> = vec![None; self.var_count];
        let mut bound: BTreeSet<usize> = BTreeSet::new();
        for (&var, value) in &self.const_of {
            seed[var] = Some(value.clone());
            bound.insert(var);
        }
        for (&var, value) in self.head.iter().zip(head) {
            match &seed[var] {
                // A repeated head variable (or a constant-bound one) must
                // carry one consistent value; labelled nulls are ordinary
                // values here — the tuple either reproduces or it doesn't.
                Some(existing) if existing != value => return Ok(false),
                _ => {
                    seed[var] = Some(value.clone());
                    bound.insert(var);
                }
            }
        }
        let order = self.ordered(None, &|rel| full.row_count(rel));
        let sources: Vec<AtomSource<'_>> =
            order.iter().map(|_| AtomSource::Full { full, topup: None }).collect();
        let out = self.join_seeded(&order, &sources, seed, bound, work)?;
        Ok(!out.is_empty())
    }

    /// Join the atoms in `order`, each over its source, producing head
    /// tuples.
    fn join(
        &self,
        order: &[usize],
        sources: &[AtomSource<'_>],
        work: &mut WorkBudget,
    ) -> Result<BTreeSet<Tuple>, AlgebraError> {
        // Initial binding: constant-bound variables.
        let mut initial: Vec<Option<Value>> = vec![None; self.var_count];
        for (&var, value) in &self.const_of {
            initial[var] = Some(value.clone());
        }
        let bound: BTreeSet<usize> = self.const_of.keys().copied().collect();
        self.join_seeded(order, sources, initial, bound, work)
    }

    /// The join loop over an explicit initial binding (`seed`) and its bound
    /// variable set.
    fn join_seeded(
        &self,
        order: &[usize],
        sources: &[AtomSource<'_>],
        seed: Vec<Option<Value>>,
        mut bound: BTreeSet<usize>,
        work: &mut WorkBudget,
    ) -> Result<BTreeSet<Tuple>, AlgebraError> {
        let mut bindings: Vec<Vec<Option<Value>>> = vec![seed];
        // Which variables are bound is static per stage, so the probe columns
        // (and therefore the index) are shared by all rows of a stage.
        for (&atom_index, source) in order.iter().zip(sources) {
            let atom = &self.atoms[atom_index];
            let probe_cols: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|(_, var)| bound.contains(var))
                .map(|(col, _)| col)
                .collect();
            // Resolve each part's access path once for the whole stage: a
            // slice scan when no columns are bound, a borrowed hash index
            // otherwise (probed per row without allocating).
            let parts = source.parts();
            let indexes: Vec<Option<Ref<'_, ColumnIndex>>> = parts
                .iter()
                .map(|part| (!probe_cols.is_empty()).then(|| part.index(&atom.rel, &probe_cols)))
                .collect();
            let mut next: Vec<Vec<Option<Value>>> = Vec::new();
            for binding in &bindings {
                let key: Vec<Value> = probe_cols
                    .iter()
                    .map(|&col| binding[atom.args[col]].clone().expect("bound variable"))
                    .collect();
                for (part, index) in parts.iter().zip(&indexes) {
                    let candidates: Vec<&Tuple> = match index {
                        None => part.scan(&atom.rel).iter().collect(),
                        Some(index) => index
                            .get(&key)
                            .into_iter()
                            .flatten()
                            .map(|&position| part.row(&atom.rel, position))
                            .collect(),
                    };
                    'tuples: for tuple in candidates {
                        if tuple.len() != atom.args.len() {
                            continue;
                        }
                        let mut extended = binding.clone();
                        for (col, &var) in atom.args.iter().enumerate() {
                            match &extended[var] {
                                // Re-bound variables stand for `=` selections,
                                // whose null semantics reject `Null = Null`.
                                Some(existing)
                                    if existing.is_null()
                                        || tuple[col].is_null()
                                        || *existing != tuple[col] =>
                                {
                                    continue 'tuples
                                }
                                Some(_) => {}
                                None => extended[var] = Some(tuple[col].clone()),
                            }
                        }
                        work.charge(1)?;
                        next.push(extended);
                    }
                }
            }
            bound.extend(atom.args.iter().copied());
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        let mut out = BTreeSet::new();
        for binding in &bindings {
            let tuple: Tuple = self
                .head
                .iter()
                .map(|&var| binding[var].clone().expect("head variables are bound"))
                .collect();
            out.insert(tuple);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_expr, tuple, Expr, Pred};

    fn sig() -> Signature {
        Signature::from_arities([("R", 2), ("S", 2), ("T", 1)])
    }

    fn index_of(inst: &Instance, rels: &[&str]) -> TupleIndex {
        let names: Vec<String> = rels.iter().map(std::string::ToString::to_string).collect();
        TupleIndex::from_layers(&[inst], names.iter())
    }

    #[test]
    fn compile_rejects_unplannable_shapes() {
        let sig = sig();
        assert!(PremisePlan::compile(&parse_expr("R + S").unwrap(), &sig).is_none());
        assert!(PremisePlan::compile(&parse_expr("skolem:f[0](T)").unwrap(), &sig).is_none());
        // Head variable ranging over the active domain (no atom binds it).
        assert!(PremisePlan::compile(&parse_expr("T * D^1").unwrap(), &sig).is_none());
        assert!(PremisePlan::compile(&parse_expr("project[0](R)").unwrap(), &sig).is_some());
    }

    #[test]
    fn full_evaluation_matches_expression_semantics() {
        let sig = sig();
        let mut inst = Instance::new();
        inst.insert("R", tuple([1i64, 10]));
        inst.insert("R", tuple([2i64, 20]));
        inst.insert("S", tuple([10i64, 100]));
        let expr = parse_expr("project[0,3](select[#1 = #2](R * S))").unwrap();
        let plan = PremisePlan::compile(&expr, &sig).unwrap();
        assert_eq!(plan.relations(), &BTreeSet::from(["R".to_string(), "S".to_string()]));
        let full = index_of(&inst, &["R", "S"]);
        let out = plan.eval_full(&full, None, &mut WorkBudget::new(1000)).unwrap();
        assert_eq!(out, [tuple([1i64, 100])].into());
    }

    #[test]
    fn constants_and_repeated_variables_filter() {
        let sig = sig();
        let mut inst = Instance::new();
        inst.insert("R", tuple([5i64, 5]));
        inst.insert("R", tuple([5i64, 6]));
        inst.insert("R", tuple([7i64, 7]));
        let expr = parse_expr("project[0](select[#0 = #1 and #0 = 5](R))").unwrap();
        let plan = PremisePlan::compile(&expr, &sig).unwrap();
        let full = index_of(&inst, &["R"]);
        let out = plan.eval_full(&full, None, &mut WorkBudget::new(1000)).unwrap();
        assert_eq!(out, [tuple([5i64])].into());
    }

    #[test]
    fn delta_evaluation_finds_exactly_the_new_join_results() {
        let sig = sig();
        let mut old = Instance::new();
        old.insert("R", tuple([1i64, 10]));
        old.insert("S", tuple([10i64, 100]));
        let expr = parse_expr("project[0,3](select[#1 = #2](R * S))").unwrap();
        let plan = PremisePlan::compile(&expr, &sig).unwrap();
        let full = index_of(&old, &["R", "S"]);

        // New tuples: one R row joining the old S row, and one S row joining
        // the new R row (a two-new-tuples join must also be found).
        let mut fresh = Instance::new();
        fresh.insert("R", tuple([2i64, 20]));
        fresh.insert("S", tuple([20i64, 200]));
        let delta = index_of(&fresh, &["R", "S"]);
        let out = plan.eval_delta(&full, Some(&delta), &delta, &mut WorkBudget::new(1000)).unwrap();
        assert_eq!(out, [tuple([2i64, 200])].into());

        // No delta rows on premise relations: nothing new.
        let empty = TupleIndex::from_rows(BTreeMap::new());
        let out = plan.eval_delta(&full, None, &empty, &mut WorkBudget::new(1000)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn greedy_order_starts_with_the_smaller_relation() {
        let sig = sig();
        let mut inst = Instance::new();
        for i in 0..50i64 {
            inst.insert("R", tuple([i, i]));
        }
        inst.insert("S", tuple([0i64, 0]));
        // Source order lists R before S; greedy must flip them.
        let expr = parse_expr("project[0,3](select[#1 = #2](R * S))").unwrap();
        let plan = PremisePlan::compile(&expr, &sig).unwrap();
        let full = index_of(&inst, &["R", "S"]);
        assert_eq!(plan.join_order(&full, None), vec![1, 0], "greedy starts at the small S");
        let pinned = PremisePlan::compile(&expr, &sig).unwrap().with_order(JoinOrder::SourceOrder);
        assert_eq!(pinned.join_order(&full, None), vec![0, 1]);
        // Both orders produce the same result set.
        let greedy_out = plan.eval_full(&full, None, &mut WorkBudget::new(10_000)).unwrap();
        let source_out = pinned.eval_full(&full, None, &mut WorkBudget::new(10_000)).unwrap();
        assert_eq!(greedy_out, source_out);
        assert_eq!(greedy_out, [tuple([0i64, 0])].into());
    }

    #[test]
    fn greedy_order_charges_less_budget_on_skewed_joins() {
        let sig = sig();
        let mut inst = Instance::new();
        for i in 0..50i64 {
            inst.insert("R", tuple([i, i]));
        }
        inst.insert("S", tuple([0i64, 7]));
        let expr = parse_expr("project[0,3](select[#1 = #2](R * S))").unwrap();
        let full = index_of(&inst, &["R", "S"]);
        // Starting from the one-row S, the indexed probe into R touches one
        // binding row per stage; source order scans all of R first.
        let greedy = PremisePlan::compile(&expr, &sig).unwrap();
        assert!(greedy.eval_full(&full, None, &mut WorkBudget::new(4)).is_ok());
        let pinned = PremisePlan::compile(&expr, &sig).unwrap().with_order(JoinOrder::SourceOrder);
        assert!(matches!(
            pinned.eval_full(&full, None, &mut WorkBudget::new(4)),
            Err(AlgebraError::EvalBudgetExceeded { .. })
        ));
    }

    #[test]
    fn delta_evaluation_orders_agree_on_results() {
        let sig = sig();
        let mut old = Instance::new();
        for i in 0..20i64 {
            old.insert("R", tuple([i, i + 100]));
        }
        old.insert("S", tuple([100i64, 0]));
        let expr = parse_expr("project[0,3](select[#1 = #2](R * S))").unwrap();
        let full = index_of(&old, &["R", "S"]);
        let mut fresh = Instance::new();
        fresh.insert("S", tuple([101i64, 1]));
        let delta = index_of(&fresh, &["S"]);
        for order in [JoinOrder::Greedy, JoinOrder::SourceOrder] {
            let plan = PremisePlan::compile(&expr, &sig).unwrap().with_order(order);
            let out =
                plan.eval_delta(&full, Some(&delta), &delta, &mut WorkBudget::new(1000)).unwrap();
            assert_eq!(out, [tuple([1i64, 1])].into(), "order {order:?}");
        }
    }

    #[test]
    fn work_budget_bounds_join_rows() {
        let sig = sig();
        let mut inst = Instance::new();
        for i in 0..20i64 {
            inst.insert("R", tuple([i, i]));
            inst.insert("S", tuple([i, i]));
        }
        // Unconstrained product: 400 binding rows.
        let expr = Expr::rel("R").product(Expr::rel("S")).select(Pred::True);
        let plan = PremisePlan::compile(&expr, &sig).unwrap();
        let full = index_of(&inst, &["R", "S"]);
        let result = plan.eval_full(&full, None, &mut WorkBudget::new(100));
        assert!(matches!(result, Err(AlgebraError::EvalBudgetExceeded { budget: 100 })));
    }
}
