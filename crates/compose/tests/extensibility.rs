//! Integration test for the extensibility contract of paper §1.3: "all that
//! is needed is to add new rules" — a user-defined operator becomes fully
//! supported by registering its typing, evaluation, monotonicity,
//! normalization and simplification rules, without touching the algorithm.
//!
//! The operator under test is `merge(A, B)`, a user-spelled union.

use std::sync::Arc;

use mapcomp_algebra::{parse_constraints, Constraint, Expr, OperatorDef, Signature};
use mapcomp_compose::{
    compose_constraints, eliminate, monotonicity, ComposeConfig, Monotonicity, OperatorRules,
    Registry,
};

/// Registry with the custom `merge` operator and all of its rules.
fn registry_with_merge() -> Registry {
    let mut registry = Registry::standard();
    registry.register(
        OperatorDef::new("merge", 2, |arities| match arities {
            [a, b] if a == b => Some(*a),
            _ => None,
        })
        .with_simple_eval(|rels, _| rels[0].union(&rels[1])),
    );
    registry.set_rules(
        "merge",
        OperatorRules {
            // merge behaves like ∪: monotone in both arguments.
            monotonicity: Some(Arc::new(|args: &[Monotonicity]| args[0].combine(args[1]))),
            // Right normalization: E1 ⊆ merge(A, B)  ↔  E1 − B ⊆ A.
            right_normalize: Some(Arc::new(|lhs: &Expr, args: &[Expr]| {
                let [a, b] = args else { return None };
                Some(vec![Constraint::containment(lhs.clone().difference(b.clone()), a.clone())])
            })),
            // Left normalization: merge(A, B) ⊆ E  ↔  A ⊆ E, B ⊆ E.
            left_normalize: Some(Arc::new(|args: &[Expr], rhs: &Expr| {
                let [a, b] = args else { return None };
                Some(vec![
                    Constraint::containment(a.clone(), rhs.clone()),
                    Constraint::containment(b.clone(), rhs.clone()),
                ])
            })),
            // merge(E, ∅) = E.
            simplify: Some(Arc::new(|args: &[Expr]| match args {
                [other, Expr::Empty(_)] | [Expr::Empty(_), other] => Some(other.clone()),
                _ => None,
            })),
        },
    );
    registry
}

/// Registry that knows how to type `merge` but has no composition rules.
fn registry_without_rules() -> Registry {
    let mut registry = Registry::standard();
    registry.register(OperatorDef::new("merge", 2, |arities| match arities {
        [a, b] if a == b => Some(*a),
        _ => None,
    }));
    registry
}

fn sig() -> Signature {
    Signature::from_arities([("R", 2), ("S", 2), ("T", 2), ("U", 2), ("V", 2), ("W", 2)])
}

#[test]
fn monotonicity_rule_is_consulted() {
    let registry = registry_with_merge();
    let expr = Expr::apply("merge", vec![Expr::rel("S"), Expr::rel("W")]);
    assert_eq!(monotonicity(&expr, "S", &registry), Monotonicity::Monotone);
    // Without the rule the operator is opaque and the verdict conservative.
    assert_eq!(monotonicity(&expr, "S", &registry_without_rules()), Monotonicity::Unknown);
}

#[test]
fn left_normalization_rule_enables_left_compose() {
    // merge(S, W) ⊆ T with V ⊆ S: isolate left compose by disabling right
    // compose; elimination must succeed only when the rule is registered.
    let constraints = parse_constraints("merge(S, W) <= T; V <= S").unwrap().into_vec();
    let config = ComposeConfig::without_right_compose();

    let with_rules =
        eliminate(&constraints, "S", &sig(), &registry_with_merge(), &config).expect("eliminates");
    assert!(with_rules.constraints.iter().all(|c| !c.mentions("S")));
    assert!(with_rules.constraints.contains(&parse_constraints("V <= T").unwrap().into_vec()[0]));
    assert!(with_rules.constraints.contains(&parse_constraints("W <= T").unwrap().into_vec()[0]));

    let without_rules = eliminate(&constraints, "S", &sig(), &registry_without_rules(), &config);
    assert!(without_rules.is_err(), "the operator has no rules, left compose must fail");
}

#[test]
fn right_normalization_rule_enables_right_compose() {
    // R ⊆ merge(S, W) with S ⊆ U: isolate right compose by disabling left
    // compose.
    let constraints = parse_constraints("R <= merge(S, W); S <= U").unwrap().into_vec();
    let config = ComposeConfig::without_left_compose();

    let with_rules =
        eliminate(&constraints, "S", &sig(), &registry_with_merge(), &config).expect("eliminates");
    assert!(with_rules.constraints.iter().all(|c| !c.mentions("S")));
    // R − W ⊆ S composed with S ⊆ U gives R − W ⊆ U.
    assert!(with_rules
        .constraints
        .contains(&parse_constraints("R - W <= U").unwrap().into_vec()[0]));

    let without_rules = eliminate(&constraints, "S", &sig(), &registry_without_rules(), &config);
    assert!(without_rules.is_err());
}

#[test]
fn simplification_rule_is_used_during_empty_elimination() {
    // S never appears on a right-hand side, so right compose uses the empty
    // lower bound; the merge simplification rule must then collapse
    // merge(∅, W) so that the surviving constraint no longer mentions merge's
    // empty argument.
    let constraints = parse_constraints("merge(S, W) <= T").unwrap().into_vec();
    let config = ComposeConfig::without_left_compose();
    let result =
        eliminate(&constraints, "S", &sig(), &registry_with_merge(), &config).expect("eliminates");
    assert_eq!(result.constraints, parse_constraints("W <= T").unwrap().into_vec());
}

#[test]
fn full_driver_composes_through_the_custom_operator() {
    // End-to-end through COMPOSE: a two-step evolution where the intermediate
    // schema is defined with merge.
    let registry = registry_with_merge();
    let constraints =
        parse_constraints("S = merge(R, V); project[0,1](S) <= T; U <= S - W").unwrap().into_vec();
    let result = compose_constraints(
        &sig(),
        &["S".to_string()],
        constraints,
        &registry,
        &ComposeConfig::default(),
    );
    assert!(result.is_complete(), "remaining: {:?}", result.remaining);
    // View unfolding handles the defining equality even though one downstream
    // occurrence (S − W) is fine and the operator itself needs no knowledge.
    let text = result.constraints.to_string();
    assert!(text.contains("merge(R, V)"));
    assert!(!text.contains("S -") && !result.constraints.mentions("S"));
}
